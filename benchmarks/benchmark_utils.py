"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure of the paper on scaled-down
synthetic workloads (see DESIGN.md for the substitution rationale).  The
benchmarks print the regenerated rows/series and assert the *shape* of the
paper's findings (who wins, roughly by how much, where crossovers lie) rather
than absolute numbers.

All benchmarks use 2 simulated worker threads per node (the paper uses 4) and
the parallelism levels 1, 2, 4 and 8 nodes, matching the paper's x-axes.
"""

import argparse
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: Repository root (where the standalone benchmarks write their JSON reports).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Worker threads per simulated node used by all benchmarks.
WORKERS_PER_NODE = 2

#: Node counts swept by the figure benchmarks (the paper uses 1, 2, 4, 8).
PARALLELISM = (1, 2, 4, 8)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def make_arg_parser(description, default_out=None):
    """Shared CLI for the standalone (non-pytest) benchmark scripts.

    Every script gets the same five flags instead of hand-rolling them:

    * ``--seed`` — base random seed forwarded to the workload generators,
    * ``--out`` (alias ``--output``) — where to write the JSON report,
    * ``--smoke`` — CI-sized run: small workloads, full correctness checks,
    * ``--backend`` — execution backend for the end-to-end workloads:
      ``sim`` (discrete-event simulator, default) or ``real`` (actual worker
      processes with shared-memory parameter shards; matrix factorization on
      classic/classic_fast_local/lapse only),
    * ``--jobs`` — shard count for the parallel simulation engine
      (``repro.simnet.parallel``); ``1`` (default) keeps the sequential
      kernel, ``N > 1`` forks the simulated nodes across N processes with
      bit-identical results.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--seed", type=int, default=0, help="base random seed (default: 0)"
    )
    parser.add_argument(
        "--out",
        "--output",
        dest="out",
        default=default_out,
        help=f"where to write the JSON report (default: {default_out})",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: small workloads, fewer repeats, full correctness checks",
    )
    parser.add_argument(
        "--backend",
        choices=("sim", "real"),
        default="sim",
        help="execution backend for end-to-end workloads: the discrete-event "
        "simulator (default) or real worker processes (MF only)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard count for the parallel simulation engine (default: 1 = "
        "sequential kernel; N > 1 forks simulated nodes across N processes)",
    )
    return parser
