"""§4.6 ablation: location caches.

Paper: location caches change Lapse run times by at most a few percent on the
PAL workloads (the latency-hiding approach makes almost all accesses local, so
there is little remote routing to speed up), and they have no effect at all
when every access is local (matrix factorization).  Caches do help workloads
with many remote accesses to relocated keys — at the cost of sequential
consistency for asynchronous operations (Table 1).

Here: (a) the KGE workload with and without caches (run times must be within a
few percent of each other), and (b) a remote-access-heavy micro-workload where
caches visibly reduce message counts.
"""

from benchmark_utils import WORKERS_PER_NODE, run_once

from repro.config import ClusterConfig, ParameterServerConfig
from repro.experiments import KGEScale, format_table
from repro.experiments.runner import run_kge_experiment
from repro.ps import LapsePS

SCALE = KGEScale(
    num_entities=250, num_relations=8, num_triples=300, entity_dim=8,
    num_negatives=2, compute_time_per_triple=500e-6,
)


def run_kge(caches: bool):
    from dataclasses import replace

    from repro.config import CostModel

    # run_kge_experiment does not expose the cache flag directly, so build the
    # run manually through the same code path with a patched PS config.
    from repro.data import generate_knowledge_graph
    from repro.ml import KGEConfig, KGETrainer
    from repro.ml.kge import KGEKeySpace

    graph = generate_knowledge_graph(
        num_entities=SCALE.num_entities,
        num_relations=SCALE.num_relations,
        num_triples=SCALE.num_triples,
        seed=0,
    )
    config = KGEConfig(
        model="complex",
        entity_dim=SCALE.entity_dim,
        num_negatives=SCALE.num_negatives,
        compute_time_per_triple=SCALE.compute_time_per_triple,
    )
    keyspace = KGEKeySpace(graph, config)
    cluster = ClusterConfig(num_nodes=4, workers_per_node=WORKERS_PER_NODE, seed=0)
    ps = LapsePS(
        cluster,
        ParameterServerConfig(
            num_keys=keyspace.num_keys,
            value_length=config.value_length,
            location_caches=caches,
        ),
    )
    trainer = KGETrainer(ps, graph, config, seed=0)
    result = trainer.train(num_epochs=1, compute_loss=False)[0]
    return result.duration, ps.metrics()


def run_remote_heavy_microworkload(caches: bool):
    """Workers repeatedly pull keys that were relocated away from their home."""
    cluster = ClusterConfig(num_nodes=4, workers_per_node=1, seed=1)
    ps = LapsePS(
        cluster,
        ParameterServerConfig(num_keys=32, value_length=2, location_caches=caches),
    )

    def worker(client, worker_id):
        # Node 3 localizes the keys homed on node 0, so other nodes' accesses
        # must be routed (home node != owner).
        if client.node_id == 3:
            yield from client.localize(list(range(0, 8)))
        yield from client.barrier()
        if client.node_id in (1, 2):
            for _ in range(10):
                for key in range(0, 8):
                    yield from client.pull([key])
        return None

    ps.run_workers(worker)
    return ps.network.stats.remote_messages, ps.metrics()


def test_ablation_location_caches(benchmark):
    def run():
        kge_without = run_kge(caches=False)
        kge_with = run_kge(caches=True)
        micro_without = run_remote_heavy_microworkload(caches=False)
        micro_with = run_remote_heavy_microworkload(caches=True)
        return kge_without, kge_with, micro_without, micro_with

    kge_without, kge_with, micro_without, micro_with = run_once(benchmark, run)
    rows = [
        {"workload": "KGE (latency hiding)", "caches": "off",
         "epoch_time_s": kge_without[0], "cache_hits": kge_without[1].cache_hits},
        {"workload": "KGE (latency hiding)", "caches": "on",
         "epoch_time_s": kge_with[0], "cache_hits": kge_with[1].cache_hits},
        {"workload": "remote-heavy micro", "caches": "off",
         "remote_messages": micro_without[0], "cache_hits": micro_without[1].cache_hits},
        {"workload": "remote-heavy micro", "caches": "on",
         "remote_messages": micro_with[0], "cache_hits": micro_with[1].cache_hits},
    ]
    print()
    print(format_table(rows, title="Ablation: location caches"))

    # On the PAL workload, caches change the epoch time by only a few percent
    # (paper: max 3% faster / 2% slower).
    relative_change = abs(kge_with[0] - kge_without[0]) / kge_without[0]
    assert relative_change < 0.10
    # On the remote-access-heavy micro-workload, caches reduce message counts.
    assert micro_with[0] < micro_without[0]
    assert micro_with[1].cache_hits > 0
