"""§3.2: the relocation protocol — relocation time vs. blocking time.

Paper: a relocation sends at most three messages; in the absence of other
operations the relocation time is roughly the time of three network messages
while the blocking time (the period during which operations for the key are
queued rather than answered) is roughly the time of one message, because the
home node starts forwarding to the requester immediately and the old owner
keeps answering until the parameter leaves its store.

Here: relocations are driven between three distinct nodes and the measured
relocation and blocking times are compared against the network latency of the
cost model.  Operations issued mid-relocation are also measured to show that
queueing at the new owner adds no extra messages.
"""

from benchmark_utils import run_once

import numpy as np

from repro.config import ClusterConfig, CostModel, ParameterServerConfig
from repro.experiments import format_table
from repro.ps import LapsePS

LATENCY = 200e-6
COST_MODEL = CostModel(network_latency=LATENCY)


def measure_protocol(num_relocations=20):
    cluster = ClusterConfig(num_nodes=3, workers_per_node=1, seed=0, cost_model=COST_MODEL)
    ps = LapsePS(cluster, ParameterServerConfig(num_keys=8, value_length=4))
    # Key 7 is homed on node 2; ownership alternates between nodes 0 and 1, so
    # requester, home, and owner are pairwise distinct for every relocation.
    queued_access_values = []

    def worker(client, worker_id):
        if worker_id == 2:
            # The home node's worker only participates in the barriers.
            for _ in range(num_relocations):
                yield from client.barrier()
            return None
        for round_index in range(num_relocations):
            if round_index % 2 == worker_id:
                localize_handle = client.localize_async([7])
                # Access the key while it is still relocating: the pull is
                # queued at the new owner until the transfer arrives and is
                # then answered locally, in order.
                pull_handle = client.pull_async([7])
                yield from client.wait(pull_handle)
                yield from client.wait(localize_handle)
                queued_access_values.append(float(pull_handle.values()[0, 0]))
                yield from client.push([7], np.ones((1, 4)))
            yield from client.barrier()
        return None

    ps.run_workers(worker)
    metrics = ps.metrics()
    return ps, metrics, queued_access_values


def test_relocation_protocol(benchmark):
    ps, metrics, values = run_once(benchmark, measure_protocol)
    rows = [
        {
            "relocations": metrics.relocations,
            "mean_relocation_time_us": metrics.relocation_time.mean * 1e6,
            "max_relocation_time_us": metrics.relocation_time.maximum * 1e6,
            "mean_blocking_time_us": metrics.blocking_time.mean * 1e6,
            "network_latency_us": LATENCY * 1e6,
            "queued_ops": metrics.queued_ops,
        }
    ]
    print()
    print(format_table(rows, title="Relocation protocol: relocation vs blocking time"))

    assert metrics.relocations >= 19
    # Blocking time is about one message, relocation time about three (§3.2).
    assert metrics.blocking_time.mean < 2.0 * LATENCY
    assert metrics.blocking_time.mean < metrics.relocation_time.mean
    assert metrics.relocation_time.mean < 6.0 * LATENCY
    assert metrics.relocation_time.mean > 1.5 * LATENCY
    # Operations issued during relocations were queued, processed exactly once,
    # and observed monotonically growing values (no lost updates).
    assert metrics.queued_ops > 0
    assert values == sorted(values)
