"""Table 4: ML tasks, models, datasets, and parameter-access rates.

Paper: for each task, the number of model parameters, dataset size, and — as a
proxy for the communication-to-computation ratio — the number of key accesses
and megabytes of parameter values read per second by a single thread.  Matrix
factorization has the highest access rate (~414k keys/s), the large KGE models
and word vectors the lowest (~11-17k keys/s).

Here: the same statistics are measured on the scaled-down synthetic workloads
by running each task on a single simulated node with a single worker thread
and dividing the access counters by the simulated run time.
"""

from benchmark_utils import run_once

from repro.config import BYTES_PER_VALUE
from repro.experiments import KGEScale, MFScale, W2VScale, format_table
from repro.experiments.runner import (
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)

WORKLOADS = [
    ("Matrix Factorization", "mf", MFScale(), None),
    ("KGE ComplEx-Small", "kge", KGEScale(), "complex"),
    ("KGE ComplEx-Large", "kge",
     KGEScale(num_entities=300, num_relations=8, num_triples=400, entity_dim=16,
              compute_time_per_triple=1000e-6), "complex"),
    ("KGE RESCAL-Large", "kge",
     KGEScale(num_entities=250, num_relations=8, num_triples=400, entity_dim=8,
              compute_time_per_triple=800e-6), "rescal"),
    ("Word2Vec", "w2v", W2VScale(), None),
]


def run_single_thread(task, scale, model):
    if task == "mf":
        return run_mf_experiment("lapse", num_nodes=1, workers_per_node=1, scale=scale)
    if task == "kge":
        return run_kge_experiment(
            "lapse", num_nodes=1, workers_per_node=1, scale=scale, model=model
        )
    return run_w2v_experiment("lapse", num_nodes=1, workers_per_node=1, scale=scale)


def test_table4_workload_statistics(benchmark):
    def run():
        rows = []
        for label, task, scale, model in WORKLOADS:
            result = run_single_thread(task, scale, model)
            metrics = result.metrics
            duration = sum(e.duration for e in result.epochs)
            value_length = {
                "mf": scale.rank if task == "mf" else None,
            }
            # Bytes read per key access follow from the PS value length.
            if task == "mf":
                per_key_bytes = scale.rank * BYTES_PER_VALUE
            elif task == "kge":
                base = scale.entity_dim if model == "rescal" else 2 * scale.entity_dim
                per_key_bytes = 2 * base * BYTES_PER_VALUE
            else:
                per_key_bytes = scale.dim * BYTES_PER_VALUE
            key_accesses_per_s = metrics.key_accesses_total / duration
            mb_read_per_s = metrics.key_reads_total * per_key_bytes / duration / 1e6
            rows.append(
                {
                    "task": label,
                    "key accesses/s": key_accesses_per_s,
                    "MB read/s": mb_read_per_s,
                    "key accesses": metrics.key_accesses_total,
                    "sim time s": duration,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Table 4: single-thread parameter access rates (measured)"))

    rates = {row["task"]: row["key accesses/s"] for row in rows}
    # Shape of Table 4: matrix factorization and the small KGE model access the
    # PS far more frequently per second than the large KGE models.
    assert rates["Matrix Factorization"] > 2 * rates["KGE ComplEx-Large"]
    assert rates["KGE ComplEx-Small"] > 2 * rates["KGE ComplEx-Large"]
    assert rates["KGE ComplEx-Small"] > 2 * rates["KGE RESCAL-Large"]
