"""Wall-clock performance harness for the simulator's batch data path.

Unlike the figure/table benchmarks (which regenerate the paper's *simulated*
results), this suite measures how fast the simulator itself runs on the host,
so that speedups and regressions of the Python data path are visible over
time.  It records:

* **storage microbenchmarks** — batched ``get_many`` / ``add_many`` /
  ``set_many`` on :class:`DenseStorage` and :class:`SparseStorage` against a
  per-key baseline that mirrors the pre-batch implementation (single-key ops,
  ``vstack`` gather, reallocation-per-update sparse adds),
* **server data-path microbenchmarks** — ``NodeState.read_local_many`` /
  ``write_local_many`` (the code every server handler runs) against the
  per-key read/write loop they replaced,
* **kernel event throughput** — events processed per wall-clock second by the
  discrete-event kernel,
* **end-to-end workloads** — wall-clock seconds and steps per second for the
  paper's MF / KGE / W2V tasks across the classic, Lapse, stale, and replica
  parameter servers.

Results are written to ``BENCH_PERF.json`` at the repository root so the perf
trajectory is tracked in-repo.  Every run also asserts **parity**: the batch
path must produce bit-identical results to the per-key path (this is the
correctness guard CI runs via ``--smoke``; timings are recorded, never
asserted, because CI machines are noisy).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full run
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke    # CI-sized run
"""

import json
import os
import platform
import sys
import time

import numpy as np

from benchmark_utils import REPO_ROOT, make_arg_parser

from repro.config import ClusterConfig, ParameterServerConfig
from repro.experiments.runner import (
    KGEScale,
    MFScale,
    W2VScale,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)
from repro.ps.base import ParameterServer
from repro.ps.classic import ClassicSharedMemoryPS
from repro.ps.storage import DenseStorage, SparseStorage
from repro.simnet import Simulator

DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PERF.json")


def _best_of(fn, repeats):
    """Run ``fn`` ``repeats`` times and return (best_seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


# --------------------------------------------------------------------- parity
class ParityError(AssertionError):
    """Raised when the batch path diverges from the per-key path."""


def _require(condition, message):
    if not condition:
        raise ParityError(message)


def check_storage_parity(num_keys=64, value_length=8, seed=0):
    """Assert that batch ops match sequences of single-key ops bit-for-bit."""
    rng = np.random.default_rng(seed)
    for dense in (True, False):
        make = DenseStorage if dense else SparseStorage
        batch_store = make(num_keys, value_length)
        single_store = make(num_keys, value_length)
        keys = list(range(0, num_keys, 2))
        values = rng.normal(size=(len(keys), value_length))
        batch_store.insert_many(keys, values)
        for index, key in enumerate(keys):
            single_store.insert(key, values[index])
        # Duplicate keys in one add batch must accumulate.
        add_keys = keys + keys[: len(keys) // 2]
        updates = rng.normal(size=(len(add_keys), value_length))
        batch_store.add_many(add_keys, updates)
        for index, key in enumerate(add_keys):
            single_store.add(key, updates[index])
        gathered = batch_store.get_many(keys)
        for index, key in enumerate(keys):
            _require(
                np.array_equal(gathered[index], single_store.get(key)),
                f"{make.__name__}: get_many/add_many diverges at key {key}",
            )
        # set_many must overwrite exactly like per-key set.
        new_values = rng.normal(size=(len(keys), value_length))
        batch_store.set_many(keys, new_values)
        for index, key in enumerate(keys):
            single_store.set(key, new_values[index])
            _require(
                np.array_equal(batch_store.get(key), single_store.get(key)),
                f"{make.__name__}: set_many diverges at key {key}",
            )
        removed = batch_store.remove_many(keys)
        for index, key in enumerate(keys):
            _require(
                np.array_equal(removed[index], single_store.remove(key)),
                f"{make.__name__}: remove_many diverges at key {key}",
            )
        _require(len(batch_store) == 0, f"{make.__name__}: remove_many left keys")


#: Systems covered by the determinism guard: the four pre-existing systems
#: (which must produce bit-identical simulated results through the
#: management-policy runtime) plus the hybrid composition.
DETERMINISM_SYSTEMS = ("classic", "lapse", "stale_ssp", "replica", "hybrid")


def check_end_to_end_determinism():
    """Assert that two identical runs produce identical simulated results.

    Runs every system of :data:`DETERMINISM_SYSTEMS` twice and requires the
    simulated epoch time, message count, and byte count to match exactly —
    the guard that the generic server runtime and the management policies
    stay bit-deterministic.
    """
    for system in DETERMINISM_SYSTEMS:
        first = run_mf_experiment(system, num_nodes=2, workers_per_node=2, epochs=1)
        second = run_mf_experiment(system, num_nodes=2, workers_per_node=2, epochs=1)
        _require(
            first.epoch_duration == second.epoch_duration
            and first.remote_messages == second.remote_messages
            and first.bytes_sent == second.bytes_sent,
            f"end-to-end run of {system!r} is not deterministic",
        )


# --------------------------------------------------------- storage microbench
def _per_key_get(store, keys):
    # Mirrors the pre-batch server path: one copy per key, then a vstack.
    return np.vstack([store.get(key) for key in keys])


def _per_key_add(store, keys, updates):
    for index, key in enumerate(keys):
        store.add(key, updates[index])


def _per_key_add_realloc(store, keys, updates):
    # Mirrors the seed SparseStorage.add: a new array per update.
    values = store._values
    for index, key in enumerate(keys):
        values[key] = values[key] + updates[index]


def _per_key_set(store, keys, values):
    for index, key in enumerate(keys):
        store.set(key, values[index])


def bench_storage(batch_size, value_length, repeats, rounds=8):
    """Batch vs per-key wall-clock on both store kinds; returns a report dict."""
    rng = np.random.default_rng(1)
    report = {"batch_size": batch_size, "value_length": value_length, "rounds": rounds}
    num_keys = batch_size * 2
    for dense in (True, False):
        make = DenseStorage if dense else SparseStorage
        store = make(num_keys, value_length, initial_keys=range(num_keys))
        keys = list(rng.permutation(num_keys)[:batch_size])
        updates = rng.normal(size=(batch_size, value_length))

        def run_batch_get():
            for _ in range(rounds):
                out = store.get_many(keys)
            return out

        def run_per_key_get():
            for _ in range(rounds):
                out = _per_key_get(store, keys)
            return out

        def run_batch_add():
            for _ in range(rounds):
                store.add_many(keys, updates)

        def run_per_key_add():
            for _ in range(rounds):
                if dense:
                    _per_key_add(store, keys, updates)
                else:
                    _per_key_add_realloc(store, keys, updates)

        def run_batch_set():
            for _ in range(rounds):
                store.set_many(keys, updates)

        def run_per_key_set():
            for _ in range(rounds):
                _per_key_set(store, keys, updates)

        batch_get_s, batch_out = _best_of(run_batch_get, repeats)
        per_key_get_s, per_key_out = _best_of(run_per_key_get, repeats)
        _require(
            np.array_equal(batch_out, per_key_out),
            f"{make.__name__}: get_many != per-key gets",
        )
        batch_add_s, _ = _best_of(run_batch_add, repeats)
        per_key_add_s, _ = _best_of(run_per_key_add, repeats)
        batch_set_s, _ = _best_of(run_batch_set, repeats)
        per_key_set_s, _ = _best_of(run_per_key_set, repeats)
        report["dense" if dense else "sparse"] = {
            "get": _entry(per_key_get_s, batch_get_s, rounds),
            "add": _entry(per_key_add_s, batch_add_s, rounds),
            "set": _entry(per_key_set_s, batch_set_s, rounds),
        }
    return report


def _entry(per_key_s, batch_s, rounds):
    return {
        "per_key_us": per_key_s / rounds * 1e6,
        "batch_us": batch_s / rounds * 1e6,
        "speedup": per_key_s / batch_s if batch_s > 0 else float("inf"),
    }


# ---------------------------------------------------------- server microbench
def bench_server(batch_size, value_length, repeats, rounds=8):
    """The server-handler data path: read_local_many / write_local_many."""
    rng = np.random.default_rng(2)
    num_keys = batch_size * 2
    cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
    ps = ClassicSharedMemoryPS(
        cluster, ParameterServerConfig(num_keys=num_keys, value_length=value_length)
    )
    state = ps.states[0]
    keys = list(rng.permutation(num_keys)[:batch_size])
    updates = rng.normal(size=(batch_size, value_length))

    def per_key_read():
        # The seed server pull handler: latch + copy per key, then vstack.
        for _ in range(rounds):
            out = np.vstack([state.read_local(key) for key in keys])
        return out

    def batch_read():
        for _ in range(rounds):
            out = state.read_local_many(keys)
        return out

    def per_key_write():
        for _ in range(rounds):
            for index, key in enumerate(keys):
                state.write_local(key, updates[index])

    def batch_write():
        for _ in range(rounds):
            state.write_local_many(keys, updates)

    batch_read_s, batch_out = _best_of(batch_read, repeats)
    per_key_read_s, per_key_out = _best_of(per_key_read, repeats)
    _require(
        np.array_equal(batch_out, per_key_out),
        "server read_local_many != per-key read_local",
    )
    batch_write_s, _ = _best_of(batch_write, repeats)
    per_key_write_s, _ = _best_of(per_key_write, repeats)
    return {
        "batch_size": batch_size,
        "value_length": value_length,
        "rounds": rounds,
        "read": _entry(per_key_read_s, batch_read_s, rounds),
        "write": _entry(per_key_write_s, batch_write_s, rounds),
    }


# ------------------------------------------------------------ kernel throughput
def bench_kernel(num_yields, repeats):
    """Events processed per wall-clock second by the discrete-event kernel."""

    def run():
        sim = Simulator()

        def chain():
            for _ in range(num_yields):
                yield 1e-6
            return None

        sim.run_process(chain())
        return sim._sequence  # total events enqueued (timeouts + resumptions)

    seconds, events = _best_of(run, repeats)
    return {
        "yields": num_yields,
        "events": events,
        "seconds": seconds,
        "events_per_second": events / seconds if seconds > 0 else float("inf"),
    }


# ------------------------------------------------------------------ end to end
def bench_end_to_end(smoke, repeats, seed=0):
    """Wall-clock per epoch for the paper workloads across PS variants."""
    if smoke:
        mf_scale = MFScale(num_rows=64, num_cols=32, num_entries=2000)
        kge_scale = KGEScale(num_entities=100, num_triples=300)
        w2v_scale = W2VScale(vocabulary_size=200, num_sentences=30)
        epochs = 1
    else:
        mf_scale = MFScale()
        kge_scale = KGEScale()
        w2v_scale = W2VScale()
        epochs = 2
    runs = []
    for system in ("classic", "lapse", "stale_ssp", "replica", "hybrid"):
        runs.append(("matrix_factorization", system, mf_scale.num_entries, lambda s=system: run_mf_experiment(
            s, num_nodes=2, workers_per_node=2, scale=mf_scale, epochs=epochs, seed=seed)))
    for system in ("classic", "lapse", "replica", "hybrid"):
        runs.append(("kge_complex", system, kge_scale.num_triples, lambda s=system: run_kge_experiment(
            s, num_nodes=2, workers_per_node=2, scale=kge_scale, epochs=epochs, seed=seed)))
    for system in ("classic", "lapse", "stale_ssp", "replica", "hybrid"):
        runs.append(("word2vec", system, w2v_scale.num_sentences, lambda s=system: run_w2v_experiment(
            s, num_nodes=2, workers_per_node=2, scale=w2v_scale, epochs=epochs, seed=seed)))
    results = []
    for task, system, steps_per_epoch, fn in runs:
        seconds, result = _best_of(fn, repeats)
        results.append(
            {
                "task": task,
                "system": system,
                "num_nodes": 2,
                "workers_per_node": 2,
                "epochs": epochs,
                "steps_per_epoch": steps_per_epoch,
                "wall_seconds": seconds,
                "steps_per_wall_second": steps_per_epoch * epochs / seconds,
                "simulated_epoch_seconds": result.epoch_duration,
                "remote_messages": result.remote_messages,
            }
        )
        print(
            f"  {task:>22s} / {system:<10s} "
            f"{seconds:7.3f}s wall, {steps_per_epoch * epochs / seconds:9.0f} steps/s, "
            f"sim epoch {result.epoch_duration * 1e3:7.3f} ms"
        )
    return results


# ------------------------------------------------------------------------ main
def main(argv=None):
    parser = make_arg_parser(__doc__.splitlines()[0], default_out=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    repeats = 2 if args.smoke else 5
    storage_batch = 256 if args.smoke else 1024
    kernel_yields = 20_000 if args.smoke else 100_000

    print("parity: batch vs per-key storage ops ...", flush=True)
    check_storage_parity()
    print("parity: end-to-end determinism ...", flush=True)
    check_end_to_end_determinism()

    print("storage microbenchmarks ...", flush=True)
    storage = bench_storage(storage_batch, 32, repeats)
    print("server data-path microbenchmarks ...", flush=True)
    server = bench_server(storage_batch, 32, repeats)
    print("kernel event throughput ...", flush=True)
    kernel = bench_kernel(kernel_yields, repeats)
    print("end-to-end workloads ...", flush=True)
    end_to_end = bench_end_to_end(args.smoke, repeats=1 if args.smoke else 2, seed=args.seed)

    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "parity": "ok",
        "storage": storage,
        "server": server,
        "kernel": kernel,
        "end_to_end": end_to_end,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    for kind in ("dense", "sparse"):
        for op in ("get", "add", "set"):
            entry = storage[kind][op]
            print(
                f"  storage/{kind}/{op}: {entry['speedup']:.1f}x "
                f"({entry['per_key_us']:.0f}us -> {entry['batch_us']:.0f}us)"
            )
    for op in ("read", "write"):
        entry = server[op]
        print(
            f"  server/{op}: {entry['speedup']:.1f}x "
            f"({entry['per_key_us']:.0f}us -> {entry['batch_us']:.0f}us)"
        )
    print(f"  kernel: {kernel['events_per_second']:,.0f} events/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
