"""Wall-clock performance harness for the simulator's hot paths.

Unlike the figure/table benchmarks (which regenerate the paper's *simulated*
results), this suite measures how fast the simulator itself runs on the host,
so that speedups and regressions of the Python data path are visible over
time.  It records:

* **storage microbenchmarks** — batched ``get_many`` / ``add_many`` /
  ``set_many`` on :class:`DenseStorage` and :class:`SparseStorage` against a
  per-key baseline that mirrors the pre-batch implementation (single-key ops,
  ``vstack`` gather, reallocation-per-update sparse adds),
* **server data-path microbenchmarks** — ``NodeState.read_local_many`` /
  ``write_local_many`` (the code every server handler runs) against the
  per-key read/write loop they replaced,
* **kernel event throughput** — events processed per wall-clock second by the
  discrete-event kernel,
* **engine comparison** — end-to-end MF wall-clock with the engine fast paths
  (immediate-dispatch ring, event pool, van/server sinks, message coalescing,
  fused worker steps) against the reference engine
  (``REPRO_DISABLE_FASTPATH=1``), interleaved in one process so machine noise
  cancels; the fast-path speedup is *asserted*, not hoped for,
* **end-to-end workloads** — wall-clock seconds and steps per second for the
  paper's MF / KGE / W2V tasks across the classic, Lapse, stale, and replica
  parameter servers,
* **tracing overhead** — bit-identity of traced vs untraced runs (asserted)
  and the wall-clock cost of the dormant tracing hooks
  (see the "Observability" section of docs/architecture.md).

``BENCH_PERF.json`` at the repository root keeps a **run history** (schema 2):
each invocation appends a run entry instead of overwriting, so the perf
trajectory is tracked in-repo.  ``--compare <old.json>`` compares the end-to-
end results of this run against the latest entry of another report and exits
nonzero on a >20% steps-per-second regression (used by CI against the
committed file).

Every run also asserts **parity**: the batch path must produce bit-identical
results to the per-key path, and the engine fast paths must leave simulated
results bit-identical to the reference engine (this is the correctness guard
CI runs via ``--smoke``; absolute timings are recorded, never asserted,
because CI machines are noisy — only same-run *ratios* are asserted).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full run
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke    # CI-sized run
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke --compare BENCH_PERF.json
"""

import json
import multiprocessing
import os
import platform
import sys
import time

import numpy as np

from benchmark_utils import REPO_ROOT, make_arg_parser

from repro.config import ClusterConfig, ParameterServerConfig
from repro.experiments.runner import (
    KGEScale,
    MFScale,
    W2VScale,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)
from repro.ps.classic import ClassicSharedMemoryPS
from repro.ps.storage import DenseStorage, SparseStorage
from repro.simnet import Simulator

DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PERF.json")

#: Current report schema: {"schema": 2, "runs": [run entries, oldest first]}.
SCHEMA = 2

#: Run-history entries kept in BENCH_PERF.json.
HISTORY_LIMIT = 20

#: Steps-per-second regression tolerated by ``--compare`` (machine noise).
REGRESSION_TOLERANCE = 0.20

#: Same-run floors asserted for the engine fast paths on end-to-end MF.
#: The reference engine shares the optimized message path (only the
#: semantically delicate transforms are toggled), so these are conservative
#: lower bounds on what the toggled transforms alone must deliver.
ENGINE_SPEEDUP_FLOORS = {"classic": 1.1, "lapse": 3.0}


def _best_of(fn, repeats):
    """Run ``fn`` ``repeats`` times and return (best_seconds, last_result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


# --------------------------------------------------------------------- parity
class ParityError(AssertionError):
    """Raised when the batch path diverges from the per-key path."""


def _require(condition, message):
    if not condition:
        raise ParityError(message)


def check_storage_parity(num_keys=64, value_length=8, seed=0):
    """Assert that batch ops match sequences of single-key ops bit-for-bit."""
    rng = np.random.default_rng(seed)
    for dense in (True, False):
        make = DenseStorage if dense else SparseStorage
        batch_store = make(num_keys, value_length)
        single_store = make(num_keys, value_length)
        keys = list(range(0, num_keys, 2))
        values = rng.normal(size=(len(keys), value_length))
        batch_store.insert_many(keys, values)
        for index, key in enumerate(keys):
            single_store.insert(key, values[index])
        # Duplicate keys in one add batch must accumulate.
        add_keys = keys + keys[: len(keys) // 2]
        updates = rng.normal(size=(len(add_keys), value_length))
        batch_store.add_many(add_keys, updates)
        for index, key in enumerate(add_keys):
            single_store.add(key, updates[index])
        gathered = batch_store.get_many(keys)
        for index, key in enumerate(keys):
            _require(
                np.array_equal(gathered[index], single_store.get(key)),
                f"{make.__name__}: get_many/add_many diverges at key {key}",
            )
        # set_many must overwrite exactly like per-key set.
        new_values = rng.normal(size=(len(keys), value_length))
        batch_store.set_many(keys, new_values)
        for index, key in enumerate(keys):
            single_store.set(key, new_values[index])
            _require(
                np.array_equal(batch_store.get(key), single_store.get(key)),
                f"{make.__name__}: set_many diverges at key {key}",
            )
        removed = batch_store.remove_many(keys)
        for index, key in enumerate(keys):
            _require(
                np.array_equal(removed[index], single_store.remove(key)),
                f"{make.__name__}: remove_many diverges at key {key}",
            )
        _require(len(batch_store) == 0, f"{make.__name__}: remove_many left keys")


#: Systems covered by the determinism guard: the four pre-existing systems
#: (which must produce bit-identical simulated results through the
#: management-policy runtime) plus the hybrid composition.
DETERMINISM_SYSTEMS = ("classic", "lapse", "stale_ssp", "replica", "hybrid")


def check_end_to_end_determinism():
    """Assert that two identical runs produce identical simulated results.

    Runs every system of :data:`DETERMINISM_SYSTEMS` twice and requires the
    simulated epoch time, message count, and byte count to match exactly —
    the guard that the generic server runtime and the management policies
    stay bit-deterministic.
    """
    for system in DETERMINISM_SYSTEMS:
        first = run_mf_experiment(system, num_nodes=2, workers_per_node=2, epochs=1)
        second = run_mf_experiment(system, num_nodes=2, workers_per_node=2, epochs=1)
        _require(
            first.epoch_duration == second.epoch_duration
            and first.remote_messages == second.remote_messages
            and first.bytes_sent == second.bytes_sent,
            f"end-to-end run of {system!r} is not deterministic",
        )


def _run_reference_engine(fn):
    """Run ``fn`` with the engine fast paths disabled (reference engine).

    ``REPRO_DISABLE_FASTPATH`` is read at :class:`Simulator` construction
    time, so toggling the environment variable around the run is enough.
    """
    previous = os.environ.get("REPRO_DISABLE_FASTPATH")
    os.environ["REPRO_DISABLE_FASTPATH"] = "1"
    try:
        return fn()
    finally:
        if previous is None:
            del os.environ["REPRO_DISABLE_FASTPATH"]
        else:
            os.environ["REPRO_DISABLE_FASTPATH"] = previous


def check_engine_bit_identity(scale):
    """Assert fast-path runs are bit-identical to the reference engine."""
    for system in DETERMINISM_SYSTEMS:
        def run(s=system):
            result = run_mf_experiment(
                s, num_nodes=2, workers_per_node=2, scale=scale, epochs=1
            )
            return (result.epoch_duration, result.remote_messages, result.bytes_sent)
        fast = run()
        reference = _run_reference_engine(run)
        _require(
            fast == reference,
            f"{system!r}: engine fast paths diverge from the reference engine "
            f"(fast={fast}, reference={reference})",
        )


# ------------------------------------------------------------ engine speedup
def bench_engine(scale, repeats):
    """End-to-end MF under the fast vs reference engine, interleaved.

    Interleaving the two engines inside one process makes the ratio robust
    to machine-wide speed fluctuations, which absolute steps/s numbers are
    not.  Asserts :data:`ENGINE_SPEEDUP_FLOORS`.
    """
    report = {}
    for system in ("classic", "lapse"):
        def run(s=system):
            return run_mf_experiment(
                s, num_nodes=2, workers_per_node=2, scale=scale, epochs=1
            )

        fast_best = float("inf")
        reference_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run()
            fast_best = min(fast_best, time.perf_counter() - start)
            start = time.perf_counter()
            _run_reference_engine(run)
            reference_best = min(reference_best, time.perf_counter() - start)
        steps = scale.num_entries
        speedup = reference_best / fast_best
        report[system] = {
            "fast_steps_per_s": steps / fast_best,
            "reference_steps_per_s": steps / reference_best,
            "speedup": speedup,
        }
        floor = ENGINE_SPEEDUP_FLOORS[system]
        print(
            f"  engine/{system}: fast {steps / fast_best:10,.0f} steps/s, "
            f"reference {steps / reference_best:10,.0f} steps/s, "
            f"speedup {speedup:.2f}x (floor {floor}x)"
        )
        _require(
            speedup >= floor,
            f"engine fast paths deliver only {speedup:.2f}x on MF {system} "
            f"(floor {floor}x)",
        )
    return report


# --------------------------------------------------------- storage microbench
def _per_key_get(store, keys):
    # Mirrors the pre-batch server path: one copy per key, then a vstack.
    return np.vstack([store.get(key) for key in keys])


def _per_key_add(store, keys, updates):
    for index, key in enumerate(keys):
        store.add(key, updates[index])


def _per_key_add_realloc(values, keys, updates):
    # Mirrors the seed SparseStorage.add: dict of rows, a new array per update.
    for index, key in enumerate(keys):
        values[key] = values[key] + updates[index]


def _per_key_set(store, keys, values):
    for index, key in enumerate(keys):
        store.set(key, values[index])


def bench_storage(batch_size, value_length, repeats, rounds=8):
    """Batch vs per-key wall-clock on both store kinds; returns a report dict."""
    rng = np.random.default_rng(1)
    report = {"batch_size": batch_size, "value_length": value_length, "rounds": rounds}
    num_keys = batch_size * 2
    for dense in (True, False):
        make = DenseStorage if dense else SparseStorage
        store = make(num_keys, value_length, initial_keys=range(num_keys))
        keys = list(rng.permutation(num_keys)[:batch_size])
        updates = rng.normal(size=(batch_size, value_length))
        # Seed-style dict-of-rows baseline for the sparse realloc-per-add path.
        dict_rows = {key: np.zeros(value_length) for key in range(num_keys)}

        def run_batch_get():
            for _ in range(rounds):
                out = store.get_many(keys)
            return out

        def run_per_key_get():
            for _ in range(rounds):
                out = _per_key_get(store, keys)
            return out

        def run_batch_add():
            for _ in range(rounds):
                store.add_many(keys, updates)

        def run_per_key_add():
            for _ in range(rounds):
                if dense:
                    _per_key_add(store, keys, updates)
                else:
                    _per_key_add_realloc(dict_rows, keys, updates)

        def run_batch_set():
            for _ in range(rounds):
                store.set_many(keys, updates)

        def run_per_key_set():
            for _ in range(rounds):
                _per_key_set(store, keys, updates)

        batch_get_s, batch_out = _best_of(run_batch_get, repeats)
        per_key_get_s, per_key_out = _best_of(run_per_key_get, repeats)
        _require(
            np.array_equal(batch_out, per_key_out),
            f"{make.__name__}: get_many != per-key gets",
        )
        batch_add_s, _ = _best_of(run_batch_add, repeats)
        per_key_add_s, _ = _best_of(run_per_key_add, repeats)
        batch_set_s, _ = _best_of(run_batch_set, repeats)
        per_key_set_s, _ = _best_of(run_per_key_set, repeats)
        report["dense" if dense else "sparse"] = {
            "get": _entry(per_key_get_s, batch_get_s, rounds),
            "add": _entry(per_key_add_s, batch_add_s, rounds),
            "set": _entry(per_key_set_s, batch_set_s, rounds),
        }
        if not dense:
            # add_many vs a per-key loop over the *current* slab store (the
            # realloc baseline above mirrors the seed implementation instead).
            # The duplicate-free batch resolves all slots with one gather off
            # the _slot_of mirror and lands one fancy +=.
            def run_store_per_key_add():
                for _ in range(rounds):
                    _per_key_add(store, keys, updates)

            store_per_key_add_s, _ = _best_of(run_store_per_key_add, repeats)
            report["sparse"]["add_vs_per_key_store"] = _entry(
                store_per_key_add_s, batch_add_s, rounds
            )
    # The slab-backed sparse store must beat the seed's realloc-per-update
    # add by a clear margin (this was the weakest batch path of the suite).
    # Committed runs measure 2.6-2.9x; the asserted floor leaves headroom for
    # noisy CI runners while still catching a real regression to the old
    # ~1.3x per-row path.
    _require(
        report["sparse"]["add"]["speedup"] >= 2.0,
        f"sparse add_many speedup {report['sparse']['add']['speedup']:.2f}x "
        "is below the 2.0x floor",
    )
    # Against per-key adds on the same slab store, the vectorized slot
    # resolution (dense _slot_of mirror) plus the duplicate-free fancy +=
    # must clear 1.8x (the dict-walk resolver managed only ~1.3x).
    per_key_store = report["sparse"]["add_vs_per_key_store"]["speedup"]
    _require(
        per_key_store >= 1.8,
        f"sparse add_many speedup over per-key store adds is "
        f"{per_key_store:.2f}x, below the 1.8x floor",
    )
    return report


def _entry(per_key_s, batch_s, rounds):
    return {
        "per_key_us": per_key_s / rounds * 1e6,
        "batch_us": batch_s / rounds * 1e6,
        "speedup": per_key_s / batch_s if batch_s > 0 else float("inf"),
    }


# ---------------------------------------------------------- server microbench
def bench_server(batch_size, value_length, repeats, rounds=8):
    """The server-handler data path: read_local_many / write_local_many."""
    rng = np.random.default_rng(2)
    num_keys = batch_size * 2
    cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
    ps = ClassicSharedMemoryPS(
        cluster, ParameterServerConfig(num_keys=num_keys, value_length=value_length)
    )
    state = ps.states[0]
    keys = list(rng.permutation(num_keys)[:batch_size])
    updates = rng.normal(size=(batch_size, value_length))

    def per_key_read():
        # The seed server pull handler: latch + copy per key, then vstack.
        for _ in range(rounds):
            out = np.vstack([state.read_local(key) for key in keys])
        return out

    def batch_read():
        for _ in range(rounds):
            out = state.read_local_many(keys)
        return out

    def per_key_write():
        for _ in range(rounds):
            for index, key in enumerate(keys):
                state.write_local(key, updates[index])

    def batch_write():
        for _ in range(rounds):
            state.write_local_many(keys, updates)

    batch_read_s, batch_out = _best_of(batch_read, repeats)
    per_key_read_s, per_key_out = _best_of(per_key_read, repeats)
    _require(
        np.array_equal(batch_out, per_key_out),
        "server read_local_many != per-key read_local",
    )
    batch_write_s, _ = _best_of(batch_write, repeats)
    per_key_write_s, _ = _best_of(per_key_write, repeats)
    return {
        "batch_size": batch_size,
        "value_length": value_length,
        "rounds": rounds,
        "read": _entry(per_key_read_s, batch_read_s, rounds),
        "write": _entry(per_key_write_s, batch_write_s, rounds),
    }


# ------------------------------------------------------------ kernel throughput
def bench_kernel(num_yields, repeats):
    """Events processed per wall-clock second by the discrete-event kernel."""

    def run():
        sim = Simulator()

        def chain():
            for _ in range(num_yields):
                yield 1e-6
            return None

        sim.run_process(chain())
        return sim._sequence  # total events enqueued (timeouts + resumptions)

    seconds, events = _best_of(run, repeats)
    return {
        "yields": num_yields,
        "events": events,
        "seconds": seconds,
        "events_per_second": events / seconds if seconds > 0 else float("inf"),
    }


# ------------------------------------------------------------------ end to end
def bench_end_to_end(smoke, repeats, seed=0, backend="sim", jobs=1):
    """Wall-clock per epoch for the paper workloads across PS variants.

    ``backend="real"`` runs on actual worker processes instead of the
    simulator; only matrix factorization on the real-backend systems is
    measured there (the KGE/W2V tasks and the stale/replica/hybrid policies
    are simulator-only).  ``jobs`` forks the simulator across that many
    shard processes (simulated backend only) — results stay bit-identical,
    so throughput rows remain comparable across job counts.
    """
    if smoke:
        mf_scale = MFScale(num_rows=64, num_cols=32, num_entries=2000)
        kge_scale = KGEScale(num_entities=100, num_triples=300)
        w2v_scale = W2VScale(vocabulary_size=200, num_sentences=30)
        epochs = 1
    else:
        mf_scale = MFScale()
        kge_scale = KGEScale()
        w2v_scale = W2VScale()
        epochs = 2
    runs = []
    if backend == "real":
        mf_systems = ("classic", "classic_fast_local", "lapse")
        jobs = 1  # the real backend has no simulator to shard
    else:
        mf_systems = ("classic", "lapse", "stale_ssp", "replica", "hybrid")
    for system in mf_systems:
        runs.append(("matrix_factorization", system, mf_scale.num_entries, lambda s=system: run_mf_experiment(
            s, num_nodes=2, workers_per_node=2, scale=mf_scale, epochs=epochs, seed=seed, backend=backend, jobs=jobs)))
    if backend == "sim":
        for system in ("classic", "lapse", "replica", "hybrid"):
            runs.append(("kge_complex", system, kge_scale.num_triples, lambda s=system: run_kge_experiment(
                s, num_nodes=2, workers_per_node=2, scale=kge_scale, epochs=epochs, seed=seed, jobs=jobs)))
        for system in ("classic", "lapse", "stale_ssp", "replica", "hybrid"):
            runs.append(("word2vec", system, w2v_scale.num_sentences, lambda s=system: run_w2v_experiment(
                s, num_nodes=2, workers_per_node=2, scale=w2v_scale, epochs=epochs, seed=seed, jobs=jobs)))
    results = []
    for task, system, steps_per_epoch, fn in runs:
        seconds, result = _best_of(fn, repeats)
        results.append(
            {
                "task": task,
                "system": system,
                "backend": backend,
                "jobs": jobs,
                "num_nodes": 2,
                "workers_per_node": 2,
                "epochs": epochs,
                "steps_per_epoch": steps_per_epoch,
                "wall_seconds": seconds,
                "steps_per_wall_second": steps_per_epoch * epochs / seconds,
                "simulated_epoch_seconds": result.epoch_duration,
                "remote_messages": result.remote_messages,
            }
        )
        print(
            f"  {task:>22s} / {system:<10s} "
            f"{seconds:7.3f}s wall, {steps_per_epoch * epochs / seconds:9.0f} steps/s, "
            f"sim epoch {result.epoch_duration * 1e3:7.3f} ms"
        )
    return results


# ------------------------------------------------------- real-backend scaling
#: Wall-clock speedup 1 -> 4 worker processes asserted for the real backend.
REAL_SCALING_FLOOR = 2.0

#: Host cores needed before the scaling assertion is meaningful.
REAL_SCALING_MIN_CORES = 4


def bench_real_backend(smoke, seed=0):
    """Wall-clock scaling of the real (multiprocessing) backend, 1 -> 4 nodes.

    Runs MF end-to-end on classic and lapse with 1 and 4 single-worker nodes;
    per-entry compute is realized as actual busy-wait CPU time, so with >= 4
    host cores four worker processes must finish the epoch at least
    ``REAL_SCALING_FLOOR`` times faster than one.  On smaller hosts (or
    without the fork start method) the section reports itself skipped instead
    of asserting — the scaling claim needs real parallelism to test.
    """
    cores = os.cpu_count() or 1
    if "fork" not in multiprocessing.get_all_start_methods():
        return {"skipped": "fork start method unavailable", "cores": cores}
    if cores < REAL_SCALING_MIN_CORES:
        return {
            "skipped": f"needs >= {REAL_SCALING_MIN_CORES} cores, host has {cores}",
            "cores": cores,
        }
    entries = 2000 if smoke else 6000
    # Compute-heavy relative to messaging, so scaling reflects the cores.
    scale = MFScale(
        num_rows=256, num_cols=64, num_entries=entries,
        rank=8, compute_time_per_entry=300e-6,
    )
    report = {"cores": cores, "entries": entries, "floor": REAL_SCALING_FLOOR}
    for system in ("classic", "lapse"):
        times = {}
        for num_nodes in (1, 4):
            result = run_mf_experiment(
                system,
                num_nodes=num_nodes,
                workers_per_node=1,
                scale=scale,
                epochs=1,
                compute_loss=False,
                seed=seed,
                backend="real",
            )
            times[num_nodes] = result.epoch_duration
        speedup = times[1] / times[4]
        report[system] = {
            "epoch_1proc_s": times[1],
            "epoch_4proc_s": times[4],
            "speedup": speedup,
        }
        print(
            f"  real/{system:<10s} 1 proc {times[1]:6.3f}s -> 4 procs "
            f"{times[4]:6.3f}s ({speedup:.2f}x)"
        )
        _require(
            speedup >= REAL_SCALING_FLOOR,
            f"real-backend {system} MF speedup 1->4 processes is "
            f"{speedup:.2f}x, below the {REAL_SCALING_FLOOR}x floor",
        )
    return report



# ------------------------------------------------------ parallel-engine scaling
#: Wall-clock speedup 1 -> 4 shard processes asserted for the parallel engine.
PARALLEL_SCALING_FLOOR = 2.0

#: Host cores needed before the shard-scaling assertion is meaningful.
PARALLEL_SCALING_MIN_CORES = 4


def bench_parallel_engine(smoke, seed=0):
    """Wall-clock scaling of the parallel simulation engine, 1 -> 4 shards.

    Runs the same multi-node MF workload through the sequential kernel
    (``jobs=1``) and through four shard processes (``jobs=4``).  The results
    are bit-identical by construction (asserted here on the simulated epoch
    fingerprint); the claim under test is that the *simulation itself* gets
    at least ``PARALLEL_SCALING_FLOOR`` times faster.  On hosts with fewer
    than ``PARALLEL_SCALING_MIN_CORES`` cores (or without the fork start
    method) the section reports itself skipped instead of asserting — shard
    processes cannot beat the sequential kernel without real parallelism.
    """
    cores = os.cpu_count() or 1
    if "fork" not in multiprocessing.get_all_start_methods():
        return {"skipped": "fork start method unavailable", "cores": cores}
    if cores < PARALLEL_SCALING_MIN_CORES:
        return {
            "skipped": f"needs >= {PARALLEL_SCALING_MIN_CORES} cores, host has {cores}",
            "cores": cores,
        }
    entries = 6000 if smoke else 20000
    # Dense enough that per-shard event processing dominates the
    # window-synchronization barriers.
    scale = MFScale(num_rows=256, num_cols=64, num_entries=entries, rank=8)
    report = {"cores": cores, "entries": entries, "floor": PARALLEL_SCALING_FLOOR}
    for system in ("classic", "lapse"):
        times = {}
        fingerprints = {}
        for jobs in (1, 4):
            start = time.perf_counter()
            result = run_mf_experiment(
                system,
                num_nodes=4,
                workers_per_node=2,
                scale=scale,
                epochs=1,
                compute_loss=False,
                seed=seed,
                jobs=jobs,
            )
            times[jobs] = time.perf_counter() - start
            fingerprints[jobs] = (
                tuple(repr(epoch.duration) for epoch in result.epochs),
                result.remote_messages,
                result.bytes_sent,
            )
        _require(
            fingerprints[1] == fingerprints[4],
            f"parallel-engine {system} MF results diverged between jobs=1 "
            f"and jobs=4",
        )
        speedup = times[1] / times[4]
        report[system] = {
            "wall_1job_s": times[1],
            "wall_4jobs_s": times[4],
            "speedup": speedup,
        }
        print(
            f"  parallel/{system:<10s} 1 job {times[1]:6.3f}s -> 4 jobs "
            f"{times[4]:6.3f}s ({speedup:.2f}x)"
        )
        _require(
            speedup >= PARALLEL_SCALING_FLOOR,
            f"parallel-engine {system} MF speedup 1->4 shards is "
            f"{speedup:.2f}x, below the {PARALLEL_SCALING_FLOOR}x floor",
        )
    return report


# -------------------------------------------------------------------- tracing
#: Interleaved hooks-off overhead ratio tolerated before failing.  The policy
#: target is <= 2% (each disabled hook is one attribute load plus an
#: ``is not None`` check per operation/message); the asserted floor is far
#: looser because same-run wall-clock ratios on shared CI machines are noisy.
TRACING_OFF_OVERHEAD_CEILING = 1.25


def bench_tracing(scale, repeats, seed=0):
    """Tracing overhead and bit-identity on end-to-end MF (classic + lapse).

    Asserts the hard guarantee — a run with tracing *enabled* produces
    bit-identical simulated results (epoch durations, traffic, counters) to an
    untraced run — and measures what the dormant hooks cost by interleaving
    plain runs against ``TraceConfig(enabled=False)`` runs (the identical code
    path, so the ratio isolates machine noise plus the config check; asserted
    under :data:`TRACING_OFF_OVERHEAD_CEILING`).  The enabled-tracing ratio
    and a compact tracer summary (span count, per-op p50/p99) are recorded,
    never asserted.
    """
    from repro.obs import TraceConfig

    report = {"off_overhead_ceiling": TRACING_OFF_OVERHEAD_CEILING}
    for system in ("classic", "lapse"):
        def run(trace=None, s=system):
            return run_mf_experiment(
                s, num_nodes=2, workers_per_node=2, scale=scale, epochs=1,
                seed=seed, trace=trace,
            )

        def fingerprint(result):
            return (
                tuple(repr(epoch.duration) for epoch in result.epochs),
                result.remote_messages,
                result.bytes_sent,
                result.metrics.as_dict(),
            )

        times = {"off": float("inf"), "disabled": float("inf"), "on": float("inf")}
        plain = traced = None
        for _ in range(repeats):
            # Interleave the three variants so machine noise cancels.
            start = time.perf_counter()
            plain = run()
            times["off"] = min(times["off"], time.perf_counter() - start)
            start = time.perf_counter()
            run(trace=TraceConfig(enabled=False))
            times["disabled"] = min(times["disabled"], time.perf_counter() - start)
            start = time.perf_counter()
            traced = run(trace=TraceConfig())
            times["on"] = min(times["on"], time.perf_counter() - start)
        _require(
            fingerprint(plain) == fingerprint(traced),
            f"tracing changed simulated results on {system} MF "
            "(bit-identity contract violated)",
        )
        off_overhead = times["disabled"] / times["off"]
        summary = traced.tracer.summary()
        report[system] = {
            "wall_off_s": times["off"],
            "wall_disabled_s": times["disabled"],
            "wall_on_s": times["on"],
            "off_overhead": off_overhead,
            "on_overhead": times["on"] / times["off"],
            "span_count": summary["span_count"],
            "op_latency": {
                op: {"count": stats["count"], "p50": stats["p50"], "p99": stats["p99"]}
                for op, stats in summary["op_latency"].items()
            },
        }
        print(
            f"  tracing/{system:<10s} off {times['off']:6.3f}s, disabled-config "
            f"{times['disabled']:6.3f}s ({off_overhead:.2f}x), on "
            f"{times['on']:6.3f}s ({times['on'] / times['off']:.2f}x, "
            f"{summary['span_count']} spans), results bit-identical"
        )
        _require(
            off_overhead <= TRACING_OFF_OVERHEAD_CEILING,
            f"tracing-off overhead on {system} MF is {off_overhead:.2f}x, above "
            f"the {TRACING_OFF_OVERHEAD_CEILING}x ceiling",
        )
    return report


# ----------------------------------------------------------------- run history
def load_report(path):
    """Load a BENCH_PERF report, upgrading schema-1 files to a run list."""
    with open(path) as handle:
        data = json.load(handle)
    if data.get("schema") == SCHEMA:
        return data
    if "end_to_end" in data:
        # Schema 1: a single run dict; wrap it as the sole history entry.
        return {"schema": SCHEMA, "runs": [data]}
    raise ValueError(f"unrecognized BENCH_PERF schema in {path}")


def append_run(path, run):
    """Append ``run`` to the history at ``path`` (keeping HISTORY_LIMIT)."""
    if os.path.exists(path):
        try:
            report = load_report(path)
        except (ValueError, json.JSONDecodeError) as error:
            print(
                f"WARNING: could not read existing history at {path} ({error}); "
                "starting a fresh run history"
            )
            report = {"schema": SCHEMA, "runs": []}
    else:
        report = {"schema": SCHEMA, "runs": []}
    report["runs"].append(run)
    report["runs"] = report["runs"][-HISTORY_LIMIT:]
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report


def compare_reports(current_run, old, tolerance=REGRESSION_TOLERANCE):
    """Compare end-to-end steps/s against the (pre-loaded) run ``old``.

    Returns the number of regressions beyond ``tolerance``.  Pairs are
    matched on (task, system); entries present on only one side are ignored
    (workload sets may evolve).
    """
    old_rates = {
        (entry["task"], entry["system"]): entry["steps_per_wall_second"]
        for entry in old["end_to_end"]
    }
    regressions = 0
    for entry in current_run["end_to_end"]:
        key = (entry["task"], entry["system"])
        old_rate = old_rates.get(key)
        if old_rate is None or old_rate <= 0:
            continue
        ratio = entry["steps_per_wall_second"] / old_rate
        marker = ""
        if ratio < 1.0 - tolerance:
            regressions += 1
            marker = "  << REGRESSION"
        print(
            f"  compare {key[0]:>22s}/{key[1]:<10s} "
            f"{old_rate:9.0f} -> {entry['steps_per_wall_second']:9.0f} steps/s "
            f"({ratio:5.2f}x){marker}"
        )
    return regressions


# ------------------------------------------------------------------------ main
def main(argv=None):
    parser = make_arg_parser(__doc__.splitlines()[0], default_out=DEFAULT_OUTPUT)
    parser.add_argument(
        "--compare",
        metavar="OLD_JSON",
        default=None,
        help="compare end-to-end steps/s against the latest run recorded in "
        "OLD_JSON and exit nonzero on a >20%% regression",
    )
    args = parser.parse_args(argv)

    repeats = 2 if args.smoke else 5
    storage_batch = 256 if args.smoke else 1024
    kernel_yields = 20_000 if args.smoke else 100_000
    engine_scale = MFScale(num_rows=64, num_cols=32, num_entries=2000)

    # Load the comparison baseline up front: --compare may point at the same
    # file this run appends to (the committed BENCH_PERF.json).  Only runs of
    # the same mode are comparable — smoke and full use different workload
    # scales, so cross-mode ratios would be artifacts.
    compare_baseline = None
    if args.compare:
        mode = "smoke" if args.smoke else "full"
        candidates = [
            entry
            for entry in load_report(args.compare)["runs"]
            if entry.get("mode") == mode
            and entry.get("backend", "sim") == args.backend
            and entry.get("jobs", 1) == args.jobs
        ]
        if candidates:
            compare_baseline = candidates[-1]
        else:
            print(
                f"note: {args.compare} has no {mode!r}-mode {args.backend!r}-backend "
                "run to compare against; skipping the regression check"
            )

    print("parity: batch vs per-key storage ops ...", flush=True)
    check_storage_parity()
    print("parity: end-to-end determinism ...", flush=True)
    check_end_to_end_determinism()
    print("parity: fast paths vs reference engine ...", flush=True)
    check_engine_bit_identity(engine_scale)

    print("storage microbenchmarks ...", flush=True)
    storage = bench_storage(storage_batch, 32, repeats)
    print("server data-path microbenchmarks ...", flush=True)
    server = bench_server(storage_batch, 32, repeats)
    print("kernel event throughput ...", flush=True)
    kernel = bench_kernel(kernel_yields, repeats)
    print("engine fast-path speedup (interleaved fast vs reference) ...", flush=True)
    engine = bench_engine(engine_scale, repeats=4 if args.smoke else 6)
    print("end-to-end workloads ...", flush=True)
    end_to_end = bench_end_to_end(
        args.smoke, repeats=1 if args.smoke else 2, seed=args.seed,
        backend=args.backend, jobs=args.jobs,
    )
    print("real-backend scaling (1 -> 4 worker processes) ...", flush=True)
    real_backend = bench_real_backend(args.smoke, seed=args.seed)
    if "skipped" in real_backend:
        print(f"  skipped: {real_backend['skipped']}")
    print("parallel-engine scaling (1 -> 4 shard processes) ...", flush=True)
    parallel_engine = bench_parallel_engine(args.smoke, seed=args.seed)
    if "skipped" in parallel_engine:
        print(f"  skipped: {parallel_engine['skipped']}")
    print("tracing overhead and bit-identity ...", flush=True)
    tracing = bench_tracing(engine_scale, repeats=2 if args.smoke else 4, seed=args.seed)

    run = {
        "schema_run": 2,
        "mode": "smoke" if args.smoke else "full",
        "backend": args.backend,
        "jobs": args.jobs,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "parity": "ok",
        "storage": storage,
        "server": server,
        "kernel": kernel,
        "engine": engine,
        "end_to_end": end_to_end,
        "real_backend": real_backend,
        "parallel_engine": parallel_engine,
        "tracing": tracing,
    }
    report = append_run(args.out, run)
    print(f"wrote {args.out} ({len(report['runs'])} runs in history)")

    for kind in ("dense", "sparse"):
        for op in ("get", "add", "set"):
            entry = storage[kind][op]
            print(
                f"  storage/{kind}/{op}: {entry['speedup']:.1f}x "
                f"({entry['per_key_us']:.0f}us -> {entry['batch_us']:.0f}us)"
            )
    entry = storage["sparse"]["add_vs_per_key_store"]
    print(
        f"  storage/sparse/add vs per-key store adds: {entry['speedup']:.1f}x "
        f"({entry['per_key_us']:.0f}us -> {entry['batch_us']:.0f}us)"
    )
    for op in ("read", "write"):
        entry = server[op]
        print(
            f"  server/{op}: {entry['speedup']:.1f}x "
            f"({entry['per_key_us']:.0f}us -> {entry['batch_us']:.0f}us)"
        )
    print(f"  kernel: {kernel['events_per_second']:,.0f} events/s")

    if compare_baseline is not None:
        print(f"comparing against {args.compare} ...")
        regressions = compare_reports(run, compare_baseline)
        if regressions:
            print(f"FAILED: {regressions} end-to-end regressions beyond "
                  f"{REGRESSION_TOLERANCE:.0%}")
            return 1
        print("no end-to-end regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
