"""Figure 7: knowledge-graph-embedding epoch run times (three model sizes).

Paper: (a) ComplEx-Small (dim 100), (b) ComplEx-Large (dim 4000),
(c) RESCAL-Large (relation dim 10 000) on DBpedia-500k.  The classic PS never
outperforms a single node; Lapse scales well for the two large tasks but not
for the small one (its communication-to-computation ratio is too high,
cf. Table 4); "only data clustering" helps RESCAL more than ComplEx because
RESCAL's relation parameters are much larger than its entity parameters.

Here: three synthetic configurations with the same contrast — a small model
with little computation per triple and two large models with much higher
per-triple computation.
"""

import pytest
from benchmark_utils import PARALLELISM, WORKERS_PER_NODE, run_once

from repro.experiments import KGEScale, format_table, kge_scenario
from repro.experiments.scenarios import epoch_time

COMPLEX_SMALL = KGEScale(
    num_entities=300, num_relations=8, num_triples=1200, entity_dim=4,
    num_negatives=2, compute_time_per_triple=10e-6,
)
COMPLEX_LARGE = KGEScale(
    num_entities=300, num_relations=8, num_triples=400, entity_dim=16,
    num_negatives=2, compute_time_per_triple=1000e-6,
)
RESCAL_LARGE = KGEScale(
    num_entities=250, num_relations=8, num_triples=400, entity_dim=8,
    num_negatives=2, compute_time_per_triple=800e-6,
)


def _times(rows):
    def t(system, nodes):
        return epoch_time(rows, system, f"{nodes}x{WORKERS_PER_NODE}")

    return t


def test_figure7a_complex_small(benchmark):
    def run():
        return kge_scenario(
            systems=("classic_fast_local", "lapse"),
            model="complex",
            parallelism=PARALLELISM,
            scale=COMPLEX_SMALL,
            workers_per_node=WORKERS_PER_NODE,
        )

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Figure 7a: ComplEx-Small epoch run time (simulated s)"))
    t = _times(rows)
    # The classic PS suffers badly from distribution on this access-heavy task.
    assert t("classic_fast_local", 8) > 2.0 * t("classic_fast_local", 1)
    # Lapse helps relative to the classic PS but, as in the paper, distributed
    # execution does not beat the single node for the small model.
    assert t("lapse", 8) < t("classic_fast_local", 8)
    assert t("lapse", 8) > t("lapse", 1)


@pytest.mark.parametrize(
    "label, model, scale",
    [
        ("fig7b_complex_large", "complex", COMPLEX_LARGE),
        ("fig7c_rescal_large", "rescal", RESCAL_LARGE),
    ],
)
def test_figure7bc_large_models(benchmark, label, model, scale):
    def run():
        return kge_scenario(
            systems=("classic_fast_local", "lapse", "lapse_clustering_only"),
            model=model,
            parallelism=PARALLELISM,
            scale=scale,
            workers_per_node=WORKERS_PER_NODE,
        )

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title=f"Figure 7 ({label}): epoch run time (simulated s)"))
    t = _times(rows)
    # Lapse scales for the large models (beats its own single-node run) and
    # beats the classic PS at high parallelism.
    assert t("lapse", 8) < t("lapse", 1)
    assert t("lapse", 8) < t("classic_fast_local", 8)
    # "Only data clustering" lies between the classic PS and full Lapse.
    assert t("lapse_clustering_only", 8) <= 1.1 * t("classic_fast_local", 8)
    assert t("lapse", 8) <= 1.05 * t("lapse_clustering_only", 8)


def test_figure7_clustering_helps_rescal_more_than_complex(benchmark):
    """§4.3: data clustering alone helps RESCAL more, because its relation
    parameters are much larger than its entity parameters."""

    def run():
        results = {}
        for label, model, scale in [
            ("complex", "complex", COMPLEX_LARGE),
            ("rescal", "rescal", RESCAL_LARGE),
        ]:
            rows = kge_scenario(
                systems=("classic_fast_local", "lapse_clustering_only"),
                model=model,
                parallelism=(8,),
                scale=scale,
                workers_per_node=WORKERS_PER_NODE,
            )
            t = _times(rows)
            results[label] = t("classic_fast_local", 8) / t("lapse_clustering_only", 8)
        return results

    improvements = run_once(benchmark, run)
    print()
    print(
        "Speed-up of 'only data clustering' over the classic PS at 8 nodes: "
        f"ComplEx {improvements['complex']:.2f}x, RESCAL {improvements['rescal']:.2f}x"
    )
    assert improvements["rescal"] > improvements["complex"] * 0.95
