"""Figure 6: matrix factorization epoch run time (two synthetic matrices).

Paper: DSGD with parameter blocking on two ~31 GB synthetic matrices
(10m x 1m and 3.4m x 3m, 1b entries each).  Classic PSs display significant
communication overhead (2-8 nodes slower than 1 node), the classic PS with
fast local access drops sharply from 1 to 2 nodes, and Lapse scales
(above-)linearly because parameter blocking makes all accesses local.

Here: two scaled-down synthetic matrices with the same row/column aspect
contrast.  Expected shape: the classic PS does not benefit from more nodes,
fast local access helps only on a single node, Lapse is fastest at every
multi-node parallelism and beats its own single-node time.
"""

import pytest
from benchmark_utils import PARALLELISM, WORKERS_PER_NODE, run_once

from repro.experiments import MFScale, format_table, matrix_factorization_scenario
from repro.experiments.scenarios import epoch_time

#: Scaled-down counterparts of the paper's 10m x 1m and 3.4m x 3m matrices.
MATRIX_A = MFScale(num_rows=320, num_cols=48, num_entries=12000, rank=8,
                   compute_time_per_entry=25e-6)
MATRIX_B = MFScale(num_rows=160, num_cols=96, num_entries=12000, rank=8,
                   compute_time_per_entry=25e-6)

SYSTEMS = ("classic", "classic_fast_local", "lapse")


@pytest.mark.parametrize(
    "label, scale",
    [("fig6a_tall_matrix", MATRIX_A), ("fig6b_square_matrix", MATRIX_B)],
)
def test_figure6_matrix_factorization(benchmark, label, scale):
    def run():
        return matrix_factorization_scenario(
            systems=SYSTEMS,
            parallelism=PARALLELISM,
            scale=scale,
            epochs=1,
            workers_per_node=WORKERS_PER_NODE,
        )

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title=f"Figure 6 ({label}): MF epoch run time (simulated seconds)"))

    def t(system, nodes):
        return epoch_time(rows, system, f"{nodes}x{WORKERS_PER_NODE}")

    # Classic PS: no benefit from distribution (8 nodes not faster than 1).
    assert t("classic", 8) > 0.9 * t("classic", 1)
    # Classic + fast local access: efficient single node, sharp drop at 2 nodes.
    assert t("classic_fast_local", 2) > 1.5 * t("classic_fast_local", 1)
    # Lapse exploits the parameter-blocking PAL technique: fastest at every
    # multi-node level and clearly faster than a single node at 8 nodes.
    for nodes in (2, 4, 8):
        assert t("lapse", nodes) < t("classic", nodes)
        assert t("lapse", nodes) < t("classic_fast_local", nodes)
    assert t("lapse", 1) / t("lapse", 8) > 2.0
    assert t("classic", 8) / t("lapse", 8) > 3.0
    print(
        f"\nLapse: {t('lapse', 1) / t('lapse', 8):.1f}x faster on 8 nodes than on 1; "
        f"{t('classic', 8) / t('lapse', 8):.1f}x faster than the classic PS at 8 nodes"
    )
