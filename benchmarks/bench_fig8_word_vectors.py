"""Figure 8: word-vector training (epoch time, error over epochs/run time).

Paper: skip-gram Word2Vec on the One Billion Word benchmark.  (a) The classic
PS with fast local access does not scale (8 nodes > 4x slower than 1 node);
(b, c) with Lapse, error decreases over epochs and more nodes reach a given
error faster in wall-clock time, although the speed-up is smaller than for the
other tasks because of localization conflicts on frequent words.

Here: a synthetic topic-structured Zipf corpus.  Expected shape: the classic
PS pays a steep price for distribution (sharp slowdown from 1 to 2 nodes and
no benefit at 8), Lapse is much faster than the classic PS at low/medium
parallelism, and its error decreases over epochs.  At 8 nodes the small
synthetic vocabulary makes localization conflicts relatively more frequent
than in the paper, so the 8-node speed-up over one node is not reproduced
(documented in EXPERIMENTS.md).
"""

from benchmark_utils import PARALLELISM, WORKERS_PER_NODE, run_once

from repro.experiments import W2VScale, format_table, word2vec_scenario
from repro.experiments.runner import run_w2v_experiment
from repro.experiments.scenarios import epoch_time

SCALE = W2VScale()


def test_figure8a_epoch_runtime(benchmark):
    def run():
        return word2vec_scenario(
            systems=("classic_fast_local", "lapse"),
            parallelism=PARALLELISM,
            scale=SCALE,
            workers_per_node=WORKERS_PER_NODE,
        )

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Figure 8a: Word2Vec epoch run time (simulated s)"))

    def t(system, nodes):
        return epoch_time(rows, system, f"{nodes}x{WORKERS_PER_NODE}")

    # The classic PS pays a steep communication price as soon as the model is
    # distributed, and 8 nodes are no faster than a single node.
    assert t("classic_fast_local", 2) > 2.0 * t("classic_fast_local", 1)
    assert t("classic_fast_local", 8) > 0.9 * t("classic_fast_local", 1)
    # Lapse is clearly faster than the classic PS at low and medium parallelism.
    assert t("lapse", 2) < 0.6 * t("classic_fast_local", 2)
    assert t("lapse", 4) < t("classic_fast_local", 4)


def test_figure8bc_error_over_epochs_and_time(benchmark):
    def run():
        series = {}
        for nodes in (1, 4):
            result = run_w2v_experiment(
                "lapse",
                num_nodes=nodes,
                workers_per_node=WORKERS_PER_NODE,
                scale=SCALE,
                epochs=6,
                compute_error=True,
            )
            series[nodes] = [
                {"epoch": e.epoch, "end_time_s": e.end_time, "error_pct": e.loss}
                for e in result.epochs
            ]
        return series

    series = run_once(benchmark, run)
    print()
    for nodes, rows in series.items():
        print(format_table(rows, title=f"Figure 8b/8c: error over epochs, lapse on {nodes} node(s)"))
        print()
    # Error decreases over epochs for every parallelism (Figure 8b).
    for nodes, rows in series.items():
        assert rows[-1]["error_pct"] < rows[0]["error_pct"] + 1e-9
    # Error after training is clearly below chance level (50%); the single-node
    # run, which sees no localization conflicts, learns at least as fast.
    assert series[1][-1]["error_pct"] < 42.0
    assert series[4][-1]["error_pct"] < 45.0
