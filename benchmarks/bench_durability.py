"""Durability benchmark: WAL/checkpoint overhead and crash-recovery exactness.

The durability subsystem (``repro.durability``) gives the simulated parameter
server crash consistency: every parameter mutation is appended to a per-node
delta WAL under a cluster-wide LSN order, checkpoints bound replay, and a
crashed node's keys are rebuilt from checkpoint + WAL-suffix replay.  This
benchmark runs, per management system, a failure-free *reference* and a
*durable* run that crashes a node at the first epoch boundary and restarts
it immediately, and reports:

* recovery outcome — keys lost, keys rebuilt from the durable log, deltas
  replayed (pure-relocation systems have exactly one copy of every key, so
  without the WAL a crash is lossy);
* WAL/checkpoint activity — appends, logged bytes, checkpoints taken;
* exactness — whether the recovered run's final model is **bit-identical**
  to the failure-free reference.

Expected shape:

* **lapse** and **hybrid** (relocation-capable) absorb the crash with zero
  lost keys and a bit-identical final model — the headline property of the
  subsystem;
* the static **classic** PS cannot re-home keys, so no failure is injected;
  its row instead proves the installed WAL is behavior-inert (the durable
  run matches the reference exactly).

Every run also asserts **determinism**: the same seed must reproduce the
crash-and-recovery lifecycle bit-identically (simulated times, counters,
and final parameters).

Usage::

    PYTHONPATH=src python benchmarks/bench_durability.py            # full run
    PYTHONPATH=src python benchmarks/bench_durability.py --smoke    # CI-sized run
"""

import json
import os
import platform
import sys

from benchmark_utils import REPO_ROOT, WORKERS_PER_NODE, make_arg_parser

from repro.experiments import MFScale, format_table
from repro.experiments.scenarios import (
    DURABILITY_RECOVERY_SYSTEMS,
    durability_recovery_scenario,
)

DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_DURABILITY.json")

#: CI-sized lifecycle: enough keys and entries that the crashed node owns a
#: meaningful shard and the WAL sees real traffic.
SMOKE_SCALE = MFScale(num_rows=120, num_cols=32, num_entries=2000, rank=4)
#: Full-size lifecycle (same shape, more data and keys).
FULL_SCALE = MFScale(num_rows=320, num_cols=64, num_entries=8000, rank=8)

TABLE_COLUMNS = (
    "system",
    "fail_injected",
    "baseline_epoch_s",
    "recovery_epoch_s",
    "final_epoch_s",
    "lost_keys",
    "recovered_keys",
    "wal_recovered_keys",
    "replayed_deltas",
    "wal_appends",
    "checkpoints",
    "params_match_reference",
    "fail_node_state",
)


def run_lifecycle(scale, seed, jobs=1):
    # Durable runs shard since the phase-2 parallel engine: per-shard WAL
    # segments are stitched into the cluster LSN order at each epoch merge,
    # so jobs > 1 produces the same rows (including the crash recovery).
    return durability_recovery_scenario(
        systems=DURABILITY_RECOVERY_SYSTEMS,
        scale=scale,
        seed=seed,
        workers_per_node=WORKERS_PER_NODE,
        jobs=jobs,
    )


def row_of(rows, system):
    return next(row for row in rows if row["system"] == system)


def assert_shape(rows):
    """The acceptance shape of the durability subsystem (see module docstring)."""
    classic = row_of(rows, "classic")
    lapse = row_of(rows, "lapse")
    hybrid = row_of(rows, "hybrid")
    # Relocation-capable systems: crash injected, nothing lost, recovery is
    # exact to the bit.
    for row in (lapse, hybrid):
        assert row["fail_injected"], row["system"]
        assert row["lost_keys"] == 0, row["system"]
        assert row["recovered_keys"] > 0, row["system"]
        assert row["params_match_reference"], row["system"]
        assert row["fail_node_state"] == "active", row["system"]
    # Pure relocation has no replicas: every recovered key came from the log.
    assert lapse["wal_recovered_keys"] > 0
    assert lapse["replayed_deltas"] > 0
    # Static partitioning cannot recover; its WAL must be inert instead.
    assert not classic["fail_injected"]
    assert classic["wal_appends"] > 0
    assert classic["params_match_reference"]


def assert_determinism(scale, seed, jobs=1):
    """Same seed => bit-identical crash-and-recovery run."""
    first = run_lifecycle(scale, seed, jobs=jobs)
    second = run_lifecycle(scale, seed, jobs=jobs)
    for row_a, row_b in zip(first, second):
        assert row_a == row_b, (
            f"durable run of {row_a['system']!r} is not deterministic: "
            f"{row_a} != {row_b}"
        )
    return first


def main(argv=None):
    parser = make_arg_parser(__doc__.splitlines()[0], default_out=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE

    print("crash-and-recovery lifecycle (determinism-checked) ...", flush=True)
    rows = assert_determinism(scale, args.seed, jobs=args.jobs)
    print()
    print(
        format_table(
            rows,
            columns=TABLE_COLUMNS,
            title="Durability: crash at an epoch boundary, restart, recover",
        )
    )
    assert_shape(rows)

    lapse = row_of(rows, "lapse")
    print()
    print(
        f"  lapse crash: {lapse['wal_recovered_keys']} keys rebuilt from the "
        f"durable log ({lapse['replayed_deltas']} deltas replayed over "
        f"{lapse['checkpoints']} checkpoints), 0 lost, final model "
        f"bit-identical to the failure-free run"
    )
    print(
        f"  WAL traffic: {lapse['wal_appends']} appends, "
        f"{lapse['wal_bytes']} logged bytes"
    )

    report = {
        "schema": 2,
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "seed": args.seed,
        "jobs": args.jobs,
        "workers_per_node": WORKERS_PER_NODE,
        "determinism": "ok",
        "rows": rows,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
