"""Pytest configuration for the benchmark suite (path setup only).

The shared helpers (worker counts, parallelism levels, run_once) live in
``benchmark_utils.py``; this conftest only makes sure both the ``src`` layout
package and the benchmark directory itself are importable.
"""

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (os.path.join(_ROOT, "src"), os.path.dirname(os.path.abspath(__file__))):
    if path not in sys.path:
        sys.path.insert(0, path)
