"""Elasticity benchmark: epoch-time disruption and rebalance traffic per system.

The paper's outlook (§7) argues that dynamic parameter allocation makes a
parameter server adaptable at run time; the elastic cluster runtime
(``repro.cluster``) realizes that claim.  This benchmark runs one full
elastic lifecycle of the MF workload — baseline epochs, a node *joining
mid-epoch*, a graceful *drain*, and an injected *failure* — for three
parameter-management strategies and reports, per system:

* epoch times around each membership event (the *disruption* of elasticity),
* rebalance traffic (keys migrated, relocation messages, time-to-rebalance),
* recovery outcome (keys recovered from replicas vs. keys lost).

Expected shape:

* the static **classic** PS cannot rebalance: a join adds only workers (its
  accesses stay remote), a drained node keeps serving keys forever, and a
  failure would be unrecoverable;
* **lapse** (relocation) absorbs joins and drains — the post-join epoch is
  strictly faster than both its own baseline and the classic PS — but a
  failure loses every key the failed node owned (exactly one copy exists);
* the **hybrid** matches lapse's elasticity and, with standby replicas
  provisioned, recovers *all* keys of the failed node (0 lost).

Every run also asserts **determinism**: the same seed must reproduce the
rebalanced run bit-identically (simulated times and message/byte counts).

Usage::

    PYTHONPATH=src python benchmarks/bench_elasticity.py            # full run
    PYTHONPATH=src python benchmarks/bench_elasticity.py --smoke    # CI-sized run
"""

import json
import os
import platform
import sys

from benchmark_utils import REPO_ROOT, WORKERS_PER_NODE, make_arg_parser

from repro.experiments import MFScale, format_table
from repro.experiments.scenarios import ELASTIC_SCALING_SYSTEMS, elastic_scaling_scenario

DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_ELASTICITY.json")

#: CI-sized lifecycle: compute-heavy enough that the join's extra workers
#: outweigh the extra subepoch synchronization.
SMOKE_SCALE = MFScale(
    num_rows=150, num_cols=24, num_entries=3000, rank=4, compute_time_per_entry=25e-6
)
#: Full-size lifecycle (same shape, more data and keys).
FULL_SCALE = MFScale(
    num_rows=320, num_cols=48, num_entries=9000, rank=8, compute_time_per_entry=25e-6
)

TABLE_COLUMNS = (
    "system",
    "baseline_epoch_s",
    "join_epoch_s",
    "post_join_epoch_s",
    "drain_epoch_s",
    "post_drain_epoch_s",
    "post_failure_epoch_s",
    "rebalanced_keys",
    "mean_rebalance_time_s",
    "relocations",
    "recovered_keys",
    "lost_keys",
    "drain_node_state",
)


def run_lifecycle(scale, seed, jobs=1):
    # Elastic lifecycles are ineligible for the parallel engine (mid-run
    # membership changes), so jobs > 1 exercises the documented fallback:
    # the run warns once per server and produces the same results as jobs=1.
    return elastic_scaling_scenario(
        systems=ELASTIC_SCALING_SYSTEMS,
        scale=scale,
        seed=seed,
        workers_per_node=WORKERS_PER_NODE,
        jobs=jobs,
    )


def row_of(rows, system):
    return next(row for row in rows if row["system"] == system)


def assert_shape(rows):
    """The acceptance shape of the elasticity subsystem (see module docstring)."""
    classic = row_of(rows, "classic")
    lapse = row_of(rows, "lapse")
    hybrid = row_of(rows, "hybrid")
    # A mid-epoch join strictly reduces the post-join epoch time for the DPA
    # systems — against the static classic PS and against their own baseline.
    for row in (lapse, hybrid):
        assert row["post_join_epoch_s"] < classic["post_join_epoch_s"], row["system"]
        assert row["post_join_epoch_s"] < row["baseline_epoch_s"], row["system"]
        assert row["rebalanced_keys"] > 0, row["system"]
        assert row["drain_node_state"] == "left", row["system"]
    # The classic PS cannot rebalance: nothing moves, drains never finish.
    assert classic["rebalanced_keys"] == 0
    assert classic["drain_node_state"] == "draining"
    # Failure: hybrid recovers everything from replicas, lapse loses the keys.
    assert hybrid["lost_keys"] == 0 and hybrid["recovered_keys"] > 0
    assert lapse["recovered_keys"] == 0 and lapse["lost_keys"] > 0


def assert_determinism(scale, seed, jobs=1):
    """Same seed => bit-identical rebalanced run (sim times, message counts)."""
    first = run_lifecycle(scale, seed, jobs=jobs)
    second = run_lifecycle(scale, seed, jobs=jobs)
    for row_a, row_b in zip(first, second):
        assert row_a == row_b, (
            f"elastic run of {row_a['system']!r} is not deterministic: "
            f"{row_a} != {row_b}"
        )
    return first


def main(argv=None):
    parser = make_arg_parser(__doc__.splitlines()[0], default_out=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE

    print("elastic lifecycle (determinism-checked) ...", flush=True)
    rows = assert_determinism(scale, args.seed, jobs=args.jobs)
    print()
    print(
        format_table(
            rows,
            columns=TABLE_COLUMNS,
            title="Elastic cluster lifecycle: join mid-epoch, drain, failure",
        )
    )
    assert_shape(rows)

    classic, lapse, hybrid = (row_of(rows, s) for s in ("classic", "lapse", "hybrid"))
    print()
    print(
        f"  post-join epoch: lapse {lapse['post_join_epoch_s'] * 1e3:.2f} ms, "
        f"hybrid {hybrid['post_join_epoch_s'] * 1e3:.2f} ms, "
        f"classic {classic['post_join_epoch_s'] * 1e3:.2f} ms "
        f"({classic['post_join_epoch_s'] / lapse['post_join_epoch_s']:.1f}x slower)"
    )
    print(
        f"  failure: hybrid recovered {hybrid['recovered_keys']} keys "
        f"(0 lost), lapse lost {lapse['lost_keys']}"
    )

    report = {
        "schema": 1,
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "seed": args.seed,
        "jobs": args.jobs,
        "workers_per_node": WORKERS_PER_NODE,
        "determinism": "ok",
        "rows": rows,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
