"""Elasticity benchmark: epoch-time disruption and rebalance traffic per system.

The paper's outlook (§7) argues that dynamic parameter allocation makes a
parameter server adaptable at run time; the elastic cluster runtime
(``repro.cluster``) realizes that claim.  This benchmark runs one full
elastic lifecycle of the MF workload — baseline epochs, a node *joining
mid-epoch*, a graceful *drain*, and an injected *failure* — for three
parameter-management strategies and reports, per system:

* epoch times around each membership event (the *disruption* of elasticity),
* rebalance traffic (keys migrated, relocation messages, time-to-rebalance),
* recovery outcome (keys recovered from replicas vs. keys lost).

Expected shape:

* the static **classic** PS cannot rebalance: a join adds only workers (its
  accesses stay remote), a drained node keeps serving keys forever, and a
  failure would be unrecoverable;
* **lapse** (relocation) absorbs joins and drains — the post-join epoch is
  strictly faster than both its own baseline and the classic PS — but a
  failure loses every key the failed node owned (exactly one copy exists);
* the **hybrid** matches lapse's elasticity and, with standby replicas
  provisioned, recovers *all* keys of the failed node (0 lost).

Every run also asserts **determinism**: the same seed must reproduce the
rebalanced run bit-identically (simulated times and message/byte counts).

Usage::

    PYTHONPATH=src python benchmarks/bench_elasticity.py            # full run
    PYTHONPATH=src python benchmarks/bench_elasticity.py --smoke    # CI-sized run
"""

import json
import multiprocessing
import os
import platform
import sys
import time

from benchmark_utils import REPO_ROOT, WORKERS_PER_NODE, make_arg_parser

from repro.cluster import ClusterSchedule
from repro.experiments import MFScale, format_table
from repro.experiments.runner import make_elastic_mf
from repro.experiments.scenarios import ELASTIC_SCALING_SYSTEMS, elastic_scaling_scenario

DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_ELASTICITY.json")

#: CI-sized lifecycle: compute-heavy enough that the join's extra workers
#: outweigh the extra subepoch synchronization.
SMOKE_SCALE = MFScale(
    num_rows=150, num_cols=24, num_entries=3000, rank=4, compute_time_per_entry=25e-6
)
#: Full-size lifecycle (same shape, more data and keys).
FULL_SCALE = MFScale(
    num_rows=320, num_cols=48, num_entries=9000, rank=8, compute_time_per_entry=25e-6
)

TABLE_COLUMNS = (
    "system",
    "baseline_epoch_s",
    "join_epoch_s",
    "post_join_epoch_s",
    "drain_epoch_s",
    "post_drain_epoch_s",
    "post_failure_epoch_s",
    "rebalanced_keys",
    "mean_rebalance_time_s",
    "relocations",
    "recovered_keys",
    "lost_keys",
    "drain_node_state",
)


def run_lifecycle(scale, seed, jobs=1):
    # Elastic lifecycles shard since the phase-2 engine (membership events
    # become window barriers), so jobs > 1 runs the join/drain phases on the
    # parallel engine; only the injected-failure epoch stays sequential.
    return elastic_scaling_scenario(
        systems=ELASTIC_SCALING_SYSTEMS,
        scale=scale,
        seed=seed,
        workers_per_node=WORKERS_PER_NODE,
        jobs=jobs,
    )


def row_of(rows, system):
    return next(row for row in rows if row["system"] == system)


def assert_shape(rows):
    """The acceptance shape of the elasticity subsystem (see module docstring)."""
    classic = row_of(rows, "classic")
    lapse = row_of(rows, "lapse")
    hybrid = row_of(rows, "hybrid")
    # A mid-epoch join strictly reduces the post-join epoch time for the DPA
    # systems — against the static classic PS and against their own baseline.
    for row in (lapse, hybrid):
        assert row["post_join_epoch_s"] < classic["post_join_epoch_s"], row["system"]
        assert row["post_join_epoch_s"] < row["baseline_epoch_s"], row["system"]
        assert row["rebalanced_keys"] > 0, row["system"]
        assert row["drain_node_state"] == "left", row["system"]
    # The classic PS cannot rebalance: nothing moves, drains never finish.
    assert classic["rebalanced_keys"] == 0
    assert classic["drain_node_state"] == "draining"
    # Failure: hybrid recovers everything from replicas, lapse loses the keys.
    assert hybrid["lost_keys"] == 0 and hybrid["recovered_keys"] > 0
    assert lapse["recovered_keys"] == 0 and lapse["lost_keys"] > 0


def assert_determinism(scale, seed, jobs=1):
    """Same seed => bit-identical rebalanced run (sim times, message counts)."""
    first = run_lifecycle(scale, seed, jobs=jobs)
    second = run_lifecycle(scale, seed, jobs=jobs)
    for row_a, row_b in zip(first, second):
        assert row_a == row_b, (
            f"elastic run of {row_a['system']!r} is not deterministic: "
            f"{row_a} != {row_b}"
        )
    return first


# ----------------------------------------------------------------- jobs sweep
#: Shard counts swept by ``--jobs-sweep``.
SWEEP_JOBS = (1, 2, 4)
#: Wall-clock speedup floor asserted for 1 -> 4 shards.
SWEEP_SPEEDUP_FLOOR = 2.0
#: Host cores needed before the speedup assertion is meaningful.
SWEEP_MIN_CORES = 4
#: Dense elastic workload for the sweep: event processing must dominate the
#: window-synchronization barriers for shards to pay off.
SWEEP_SCALE_SMOKE = MFScale(num_rows=256, num_cols=64, num_entries=6000, rank=8)
SWEEP_SCALE_FULL = MFScale(num_rows=256, num_cols=64, num_entries=20000, rank=8)


def _sweep_run(scale, seed, jobs, epochs=2):
    """One elastic run for the sweep: node 7 joins mid-epoch on an otherwise
    full 8-node cluster, so every shard carries real load *and* the engine
    crosses a membership barrier."""
    schedule = ClusterSchedule().join(0.001, node=7)
    elastic, trainer = make_elastic_mf(
        "lapse",
        num_nodes=8,
        initial_nodes=tuple(range(7)),
        schedule=schedule,
        scale=scale,
        workers_per_node=WORKERS_PER_NODE,
        seed=seed,
        jobs=jobs,
    )
    start = time.perf_counter()
    durations = [
        elastic.run_epoch(trainer, compute_loss=False).duration
        for _ in range(epochs)
    ]
    wall = time.perf_counter() - start
    ps = elastic.ps
    history = ps.shard_load_history or []
    return {
        "jobs": jobs,
        "effective_jobs": ps._last_effective_jobs,
        "parallel_fallback_reason": ps._last_fallback_reason,
        "wall_s": wall,
        "sim_epochs_s": durations,
        "remote_messages": ps.network.stats.remote_messages,
        "bytes_sent": ps.network.stats.bytes_sent,
        "shard_skew": [h["skew"] for h in history],
        "shard_replans": sum(1 for h in history if h["replanned"]),
    }


def _skew_run(scale, seed, epochs=3):
    """Persistently skewed workload at jobs=4: only 4 of 8 nodes are ever
    active, so the contiguous plan leaves two shards nearly idle (executed-
    event skew ~2x) until the adaptive rebalance spreads the active nodes
    one per shard."""
    elastic, trainer = make_elastic_mf(
        "lapse",
        num_nodes=8,
        initial_nodes=tuple(range(4)),
        scale=scale,
        workers_per_node=WORKERS_PER_NODE,
        seed=seed,
        jobs=4,
    )
    for _ in range(epochs):
        elastic.run_epoch(trainer, compute_loss=False)
    history = elastic.ps.shard_load_history or []
    return {
        "jobs": 4,
        "workload": "skewed",
        "effective_jobs": elastic.ps._last_effective_jobs,
        "shard_skew": [h["skew"] for h in history],
        "shard_replans": sum(1 for h in history if h["replanned"]),
    }


def run_jobs_sweep(smoke, seed):
    """Wall-clock scaling + adaptive-rebalance behaviour across SWEEP_JOBS.

    Returns ``(rows, skipped_reason)``.  The identity of simulated results
    across shard counts is always asserted; the >= 2x 1 -> 4 speedup floor
    and the skew-narrowing check only run on hosts with enough cores and
    fork support (shards cannot beat the sequential kernel without real
    parallelism).
    """
    cores = os.cpu_count() or 1
    if "fork" not in multiprocessing.get_all_start_methods():
        return [], f"fork start method unavailable (host has {cores} cores)"
    scale = SWEEP_SCALE_SMOKE if smoke else SWEEP_SCALE_FULL
    rows = [_sweep_run(scale, seed, jobs) for jobs in SWEEP_JOBS]
    for row in rows[1:]:
        assert row["sim_epochs_s"] == rows[0]["sim_epochs_s"], (
            f"jobs={row['jobs']} simulated epochs diverged from jobs=1"
        )
        assert row["remote_messages"] == rows[0]["remote_messages"]
        assert row["bytes_sent"] == rows[0]["bytes_sent"]
        assert row["parallel_fallback_reason"] is None, row
        assert row["effective_jobs"] == row["jobs"], row
    for row in rows:
        print(
            f"  jobs={row['jobs']}: wall {row['wall_s']:6.3f}s, "
            f"skew {['%.2f' % s for s in row['shard_skew']]}, "
            f"{row['shard_replans']} replans"
        )
    # Skew narrowing is a correctness property of the adaptive rebalance, not
    # a wall-clock one, so it is checked even on single-core hosts.
    skew_row = _skew_run(scale, seed)
    rows.append(skew_row)
    print(
        f"  skewed workload: skew {['%.2f' % s for s in skew_row['shard_skew']]}, "
        f"{skew_row['shard_replans']} replans"
    )
    assert skew_row["shard_replans"] >= 1, skew_row
    assert skew_row["shard_skew"][-1] < skew_row["shard_skew"][0], (
        f"adaptive rebalance did not narrow the per-shard event skew: "
        f"{skew_row['shard_skew']}"
    )
    if cores < SWEEP_MIN_CORES:
        return rows, f"speedup floor needs >= {SWEEP_MIN_CORES} cores, host has {cores}"
    speedup = rows[0]["wall_s"] / rows[2]["wall_s"]
    print(f"  speedup 1 -> {SWEEP_JOBS[-1]} shards: {speedup:.2f}x")
    assert speedup >= SWEEP_SPEEDUP_FLOOR, (
        f"elastic jobs sweep speedup 1->{SWEEP_JOBS[-1]} shards is "
        f"{speedup:.2f}x, below the {SWEEP_SPEEDUP_FLOOR}x floor"
    )
    return rows, None


def main(argv=None):
    parser = make_arg_parser(__doc__.splitlines()[0], default_out=DEFAULT_OUTPUT)
    parser.add_argument(
        "--jobs-sweep",
        action="store_true",
        help="additionally sweep the parallel engine across jobs in "
        f"{SWEEP_JOBS}: assert bit-identical results, a >= "
        f"{SWEEP_SPEEDUP_FLOOR}x wall-clock speedup 1 -> {SWEEP_JOBS[-1]} "
        "shards (skipped below "
        f"{SWEEP_MIN_CORES} cores), and adaptive skew narrowing",
    )
    args = parser.parse_args(argv)
    scale = SMOKE_SCALE if args.smoke else FULL_SCALE

    print("elastic lifecycle (determinism-checked) ...", flush=True)
    rows = assert_determinism(scale, args.seed, jobs=args.jobs)
    print()
    print(
        format_table(
            rows,
            columns=TABLE_COLUMNS,
            title="Elastic cluster lifecycle: join mid-epoch, drain, failure",
        )
    )
    assert_shape(rows)

    classic, lapse, hybrid = (row_of(rows, s) for s in ("classic", "lapse", "hybrid"))
    print()
    print(
        f"  post-join epoch: lapse {lapse['post_join_epoch_s'] * 1e3:.2f} ms, "
        f"hybrid {hybrid['post_join_epoch_s'] * 1e3:.2f} ms, "
        f"classic {classic['post_join_epoch_s'] * 1e3:.2f} ms "
        f"({classic['post_join_epoch_s'] / lapse['post_join_epoch_s']:.1f}x slower)"
    )
    print(
        f"  failure: hybrid recovered {hybrid['recovered_keys']} keys "
        f"(0 lost), lapse lost {lapse['lost_keys']}"
    )

    report = {
        "schema": 2,
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "seed": args.seed,
        "jobs": args.jobs,
        "workers_per_node": WORKERS_PER_NODE,
        "determinism": "ok",
        "rows": rows,
    }
    if args.jobs_sweep:
        print()
        print("parallel-engine jobs sweep (identity-checked) ...", flush=True)
        sweep_rows, skipped = run_jobs_sweep(args.smoke, args.seed)
        report["jobs_sweep"] = {"rows": sweep_rows, "skipped": skipped}
        if skipped:
            print(f"  speedup/skew assertions skipped: {skipped}")
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
