"""Table 5: parameter reads, relocations, and relocation times (ComplEx-Large).

Paper: for 1-8 nodes, the total / local / non-local parameter reads per
second, relocations per second, and mean relocation time of the ComplEx-Large
run.  Total reads are the same at every parallelism; almost all reads are
local; the number of non-local reads (caused by localization conflicts) and
the mean relocation time grow with the number of nodes, and the mean
relocation time is smallest on 2 nodes because every relocation involves only
2 instead of 3 nodes.

Here: the same metrics are collected from the scaled-down ComplEx-Large run.
"""

from benchmark_utils import PARALLELISM, WORKERS_PER_NODE, run_once

from repro.experiments import KGEScale, format_table
from repro.experiments.runner import run_kge_experiment

COMPLEX_LARGE = KGEScale(
    num_entities=300, num_relations=8, num_triples=400, entity_dim=16,
    num_negatives=2, compute_time_per_triple=1000e-6,
)


def test_table5_relocation_statistics(benchmark):
    def run():
        rows = []
        for nodes in PARALLELISM:
            result = run_kge_experiment(
                "lapse",
                num_nodes=nodes,
                workers_per_node=WORKERS_PER_NODE,
                model="complex",
                scale=COMPLEX_LARGE,
            )
            metrics = result.metrics
            duration = result.epoch_duration
            rows.append(
                {
                    "nodes": nodes,
                    "reads_total": metrics.key_reads_total,
                    "reads_local": metrics.key_reads_local,
                    "reads_non_local": metrics.key_reads_remote,
                    "relocations_per_s": metrics.relocations / duration,
                    "mean_relocation_time_ms": metrics.relocation_time.mean * 1e3,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Table 5: ComplEx-Large reads and relocations (measured)"))
    by_nodes = {row["nodes"]: row for row in rows}

    # The total read volume is determined by the workload, not the parallelism.
    totals = [row["reads_total"] for row in rows]
    assert max(totals) <= 1.05 * min(totals)
    # On a single node there are no relocations and no non-local reads.
    assert by_nodes[1]["reads_non_local"] == 0
    assert by_nodes[1]["relocations_per_s"] == 0
    # With more nodes, localization conflicts appear: non-local reads grow.
    assert by_nodes[8]["reads_non_local"] >= by_nodes[2]["reads_non_local"]
    # The vast majority of reads stay local thanks to prelocalization.
    assert by_nodes[8]["reads_local"] > 0.7 * by_nodes[8]["reads_total"]
    # Mean relocation time is smaller on 2 nodes than on 8 (2-node relocations
    # involve only two machines, i.e. one message less).
    assert by_nodes[2]["mean_relocation_time_ms"] < by_nodes[8]["mean_relocation_time_ms"]
