"""Table 1: per-key consistency guarantees of the PS architectures.

Paper: classic PSs and Lapse guarantee per-key sequential consistency for
synchronous operations and (without location caches) for asynchronous
operations; Lapse with location caches drops to eventual consistency for
asynchronous operations; stale PSs guarantee only eventual (sync) /
client-centric (async with explicit clocks) consistency.

Here: adversarial counter workloads with tagged cumulative pushes are run on
every system; the recorded client histories are evaluated with the checkers of
:mod:`repro.consistency`.  A measured ``True`` can never contradict the paper;
the benchmark asserts that every cell the paper claims as guaranteed is indeed
observed to hold (soundness), and prints the full measured table.
"""

import numpy as np
from benchmark_utils import run_once

from repro.config import ClusterConfig, ParameterServerConfig
from repro.consistency import History, UpdateTagger, consistency_report
from repro.experiments import format_table
from repro.ps import ClassicPS, LapsePS, StalePS


def run_counter_workload(ps, sync_ops=True, use_localize=False, pushes_per_worker=3):
    """Tagged pushes and pulls on key 0 from every worker; returns the history."""
    tagger = UpdateTagger()
    tags = {}
    for worker in range(ps.cluster.total_workers):
        for i in range(pushes_per_worker):
            tags[(worker, i)] = tagger.next_update()

    def worker_fn(client, worker_id):
        records = []
        sequence = 0
        for i in range(pushes_per_worker):
            if use_localize and i % 2 == 0:
                yield from client.localize([0])
            push_id, value = tags[(worker_id, i)]
            update = np.zeros((1, ps.ps_config.value_length))
            update[0, 0] = value
            invoked = client.sim.now
            if sync_ops:
                yield from client.push([0], update)
            else:
                handle = client.push_async([0], update, needs_ack=True)
                yield from client.wait(handle)
            records.append(("push", sequence, invoked, client.sim.now, push_id, None))
            sequence += 1
            invoked = client.sim.now
            values = yield from client.pull([0])
            records.append(("pull", sequence, invoked, client.sim.now, None, values[0, 0]))
            sequence += 1
        return records

    history = History(key=0)
    for worker_id, records in enumerate(ps.run_workers(worker_fn)):
        for kind, sequence, invoked, completed, push_id, value in records:
            if kind == "push":
                history.record_push(worker_id, sequence, invoked, completed, push_id)
            else:
                history.record_pull(worker_id, sequence, invoked, completed, value)
    return history


#: (label, builder kwargs, paper-claimed guarantees that must hold when measured)
CONFIGURATIONS = [
    ("classic / sync", dict(kind="classic", sync=True), {"eventual", "client-centric", "causal", "sequential"}),
    ("classic / async", dict(kind="classic", sync=False), {"eventual", "client-centric", "causal", "sequential"}),
    ("lapse (no caches) / sync", dict(kind="lapse", sync=True, caches=False), {"eventual", "client-centric", "causal", "sequential"}),
    ("lapse (no caches) / async", dict(kind="lapse", sync=False, caches=False), {"eventual", "client-centric", "causal", "sequential"}),
    ("lapse (caches) / sync", dict(kind="lapse", sync=True, caches=True), {"eventual", "client-centric", "causal", "sequential"}),
    ("lapse (caches) / async", dict(kind="lapse", sync=False, caches=True), {"eventual"}),
    ("stale / sync", dict(kind="stale", sync=True), set()),
]


def build_ps(kind, caches=False):
    cluster = ClusterConfig(num_nodes=3, workers_per_node=2, seed=9)
    config = ParameterServerConfig(num_keys=4, value_length=2, location_caches=caches)
    if kind == "classic":
        return ClassicPS(cluster, config)
    if kind == "lapse":
        return LapsePS(cluster, config)
    return StalePS(cluster, config)


def test_table1_consistency(benchmark):
    def run():
        rows = []
        for label, spec, claimed in CONFIGURATIONS:
            ps = build_ps(spec["kind"], caches=spec.get("caches", False))
            history = run_counter_workload(
                ps,
                sync_ops=spec["sync"],
                use_localize=spec["kind"] == "lapse",
            )
            report = consistency_report([history])
            rows.append((label, claimed, report))
        return rows

    rows = run_once(benchmark, run)
    table = [
        {
            "configuration": label,
            "eventual": report["eventual"],
            "client-centric": report["client-centric"],
            "causal": report["causal"],
            "sequential": report["sequential"],
        }
        for label, _claimed, report in rows
    ]
    print()
    print(format_table(table, title="Table 1 (measured): per-key consistency of recorded histories"))

    # Soundness: every guarantee the paper claims must hold in the measured history.
    for label, claimed, report in rows:
        for property_name in claimed:
            assert report[property_name], (
                f"{label}: paper guarantees {property_name} but the measured history violates it"
            )
