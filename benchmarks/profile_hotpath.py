"""Profile the simulator's hot path: top functions for one MF epoch per system.

Future perf PRs should start from data, not guesses: this helper runs one
matrix-factorization epoch per parameter-server variant under ``cProfile``
and prints the top-N functions by cumulative time, so the current bottleneck
distribution is one command away::

    PYTHONPATH=src python benchmarks/profile_hotpath.py
    PYTHONPATH=src python benchmarks/profile_hotpath.py --sort tottime --top 30
    PYTHONPATH=src python benchmarks/profile_hotpath.py --systems classic lapse
    REPRO_DISABLE_FASTPATH=1 PYTHONPATH=src python benchmarks/profile_hotpath.py

For sampling-based profiles of longer runs (no instrumentation skew), run the
same workloads under ``py-spy`` instead — see the "Simulation engine
performance" section of docs/architecture.md.
"""

import cProfile
import io
import pstats
import sys
import time

from benchmark_utils import make_arg_parser

from repro.experiments.runner import MFScale, run_mf_experiment

#: Systems profiled by default (the bench_perf end-to-end set).
DEFAULT_SYSTEMS = ("classic", "classic_fast_local", "lapse", "stale_ssp", "replica", "hybrid")


def profile_system(
    system, scale, sort, top, num_nodes=2, workers_per_node=2,
    seed=0, backend="sim", jobs=1,
):
    """Profile one MF epoch on ``system`` and print the top-``top`` functions."""
    # Warm-up run outside the profile: import costs and lazily built caches
    # (lanes, dispatch tables, epoch plans) would otherwise dominate.
    kwargs = dict(
        num_nodes=num_nodes, workers_per_node=workers_per_node, scale=scale,
        epochs=1, seed=seed, backend=backend, jobs=jobs,
    )
    start = time.perf_counter()
    run_mf_experiment(system, **kwargs)
    warm_seconds = time.perf_counter() - start

    profile = cProfile.Profile()
    profile.enable()
    run_mf_experiment(system, **kwargs)
    profile.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profile, stream=buffer)
    stats.strip_dirs().sort_stats(sort).print_stats(top)
    steps = scale.num_entries
    print(f"\n=== {system}: one MF epoch, {steps} entries, "
          f"backend={backend} jobs={jobs} seed={seed}, "
          f"~{steps / warm_seconds:,.0f} steps/s unprofiled ===")
    # Drop the pstats preamble up to the column header for compact output.
    lines = buffer.getvalue().splitlines()
    header = next(i for i, line in enumerate(lines) if "ncalls" in line)
    print("\n".join(lines[header:]).rstrip())


def main(argv=None):
    # Shared benchmark CLI (--seed/--out/--smoke/--backend/--jobs) plus the
    # profiler-specific flags; --out and --smoke are accepted but unused here
    # (the profile is a printed report, not a JSON artifact).
    parser = make_arg_parser(__doc__.splitlines()[0])
    parser.add_argument(
        "--systems", nargs="+", default=list(DEFAULT_SYSTEMS),
        help=f"PS variants to profile (default: {' '.join(DEFAULT_SYSTEMS)})",
    )
    parser.add_argument(
        "--sort", default="cumulative", choices=("cumulative", "tottime", "ncalls"),
        help="pstats sort key (default: cumulative)",
    )
    parser.add_argument("--top", type=int, default=20, help="functions to print (default: 20)")
    parser.add_argument("--entries", type=int, default=2000, help="MF matrix entries")
    args = parser.parse_args(argv)

    scale = MFScale(num_rows=64, num_cols=32, num_entries=args.entries)
    for system in args.systems:
        profile_system(
            system, scale, args.sort, args.top,
            seed=args.seed, backend=args.backend, jobs=args.jobs,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
