"""Figure 1: epoch run time for a large knowledge-graph-embeddings task.

Paper: RESCAL (dimension 100) on DBpedia-500k, 1x4 to 8x4 workers.  The
classic PSs fall behind a single node due to communication overhead while
Lapse (dynamic parameter allocation + fast local access) scales near-linearly.

Here: RESCAL on a synthetic Zipf knowledge graph, 1 to 8 simulated nodes.
Expected shape: Lapse is the fastest system at 8 nodes, beats its own 1-node
run time, and beats the classic PS by a large factor; fast local access alone
does not fix the classic PS.
"""

from benchmark_utils import PARALLELISM, WORKERS_PER_NODE, run_once

from repro.experiments import KGEScale, format_table, kge_scenario
from repro.experiments.scenarios import epoch_time

RESCAL_LARGE = KGEScale(
    num_entities=250,
    num_relations=8,
    num_triples=400,
    entity_dim=8,
    num_negatives=2,
    compute_time_per_triple=800e-6,
)

SYSTEMS = ("classic", "classic_fast_local", "lapse")


def test_figure1_overview(benchmark):
    def run():
        return kge_scenario(
            systems=SYSTEMS,
            model="rescal",
            parallelism=PARALLELISM,
            scale=RESCAL_LARGE,
            epochs=1,
            workers_per_node=WORKERS_PER_NODE,
        )

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Figure 1: RESCAL KGE epoch run time (simulated seconds)"))

    def t(system, nodes):
        return epoch_time(rows, system, f"{nodes}x{WORKERS_PER_NODE}")

    # Lapse outperforms both classic variants at every multi-node parallelism.
    for nodes in (2, 4, 8):
        assert t("lapse", nodes) < t("classic", nodes)
        assert t("lapse", nodes) < t("classic_fast_local", nodes)
    # Lapse benefits from distribution (beats its own single-node run).
    assert t("lapse", 8) < t("lapse", 1)
    # Fast local access alone does not alleviate the communication overhead:
    # at 8 nodes it stays close to the plain classic PS and far from Lapse.
    assert t("classic_fast_local", 8) > 1.1 * t("lapse", 8)
    print(
        f"\nLapse speed-up over classic PS at 8 nodes: "
        f"{t('classic', 8) / t('lapse', 8):.1f}x"
    )
