"""Replication vs. relocation vs. static allocation vs. hybrid, head-to-head.

Paper: Lapse manages parameter locality by *relocating* each hot parameter to
the single node that accesses it; the related-work discussion (and the NuPS
follow-up) contrasts this with *replication*, which copies hot parameters to
every accessing node and synchronizes the copies asynchronously.  The paper's
systems cover static allocation and relocation; the repo adds a
replication-based PS and — the NuPS direction of the paper's outlook — a
*hybrid* PS that assigns the technique per key (replicate hot keys, relocate
the long tail).

Here: the four strategies run the paper's three workloads (matrix
factorization, knowledge-graph embeddings, word vectors) at a fixed
parallelism, with shared-memory local access everywhere so the comparison
isolates the parameter-management strategy.  Expected shape:

* every dynamic strategy beats the static classic PS on epoch time, because
  they make most reads local;
* replication achieves a local-read fraction comparable to relocation's;
* the strategies pay for locality differently: relocation moves each key
  (relocation messages, zero steady-state overhead), replication keeps paying
  synchronization traffic (flush/broadcast messages) for as long as the keys
  are written;
* the hybrid actually mixes the techniques: it both relocates (cold keys)
  and, on the workloads with shared hot keys, replicates — with less
  synchronization traffic than full replication, because only hot keys pay it.
"""

import pytest
from benchmark_utils import WORKERS_PER_NODE, run_once

from repro.experiments import (
    KGEScale,
    MFScale,
    W2VScale,
    format_table,
    merge_metrics,
    metrics_rows,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)

#: All systems run at the paper's mid-scale parallelism level.
NUM_NODES = 4

#: Static allocation vs. relocation vs. replication vs. the per-key hybrid,
#: all with shared-memory local access.
SYSTEMS = ("classic_fast_local", "lapse", "replica", "hybrid")

MF = MFScale()
KGE = KGEScale()
W2V = W2VScale()


def _run_task(task):
    results = []
    for system in SYSTEMS:
        if task == "mf":
            result = run_mf_experiment(
                system, num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, scale=MF
            )
        elif task == "kge":
            result = run_kge_experiment(
                system, num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, scale=KGE
            )
        else:
            result = run_w2v_experiment(
                system, num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, scale=W2V
            )
        results.append(result)
    return results


def _by_system(results):
    return {result.system: result for result in results}


@pytest.mark.parametrize("task", ["mf", "kge", "w2v"])
def test_replication_vs_relocation(benchmark, task):
    results = run_once(benchmark, lambda: _run_task(task))
    # Consolidated metric reporting: counters come from PSMetrics.as_dict via
    # the shared helper, not per-benchmark plumbing.
    rows = metrics_rows(results)
    print()
    print(
        format_table(
            rows,
            title=f"Management strategies ({task}, {NUM_NODES}x{WORKERS_PER_NODE})",
        )
    )

    by_system = _by_system(results)
    classic = by_system["classic_fast_local"]
    lapse = by_system["lapse"]
    replica = by_system["replica"]
    hybrid = by_system["hybrid"]

    # Replication actually happened, and its maintenance traffic is visible.
    assert replica.metrics.replica_creates > 0
    assert replica.metrics.replica_flush_messages > 0
    assert replica.metrics.replica_sync_bytes > 0
    # Relocation does not pay synchronization traffic; replication does not
    # relocate.  The two locality mechanisms are disjoint.
    assert lapse.metrics.replica_sync_bytes == 0
    assert replica.metrics.relocations == 0
    assert lapse.metrics.relocations > 0

    # The hybrid genuinely relocates its long tail ...
    assert hybrid.metrics.relocations > 0
    # ... and replicates only hot keys, so it never pays more synchronization
    # traffic than full replication.  (MF's rotation has no shared hot keys,
    # so the hybrid degenerates to pure relocation there — by design.)
    assert hybrid.metrics.replica_sync_bytes <= replica.metrics.replica_sync_bytes
    if task in ("kge", "w2v"):
        assert hybrid.metrics.replica_creates > 0
    # Per-key assignment keeps locality competitive with the pure strategies.
    assert hybrid.metrics.local_read_fraction > classic.metrics.local_read_fraction

    # Both pure dynamic strategies make most reads local; static cannot.
    assert replica.metrics.local_read_fraction > classic.metrics.local_read_fraction
    assert replica.metrics.local_read_fraction > 0.5

    # Every dynamic strategy beats static allocation on epoch time.
    assert lapse.epoch_duration < classic.epoch_duration
    assert replica.epoch_duration < classic.epoch_duration
    assert hybrid.epoch_duration < classic.epoch_duration

    dynamic = merge_metrics(
        [lapse.metrics, replica.metrics, hybrid.metrics]
    )
    print(
        f"\nspeedup vs static: lapse {classic.epoch_duration / lapse.epoch_duration:.1f}x, "
        f"replica {classic.epoch_duration / replica.epoch_duration:.1f}x, "
        f"hybrid {classic.epoch_duration / hybrid.epoch_duration:.1f}x; "
        f"dynamic strategies combined: {dynamic.relocations} relocations, "
        f"{dynamic.replica_creates} replicas, {dynamic.replica_sync_bytes} sync bytes"
    )
