"""Replication vs. relocation vs. static allocation, head-to-head.

Paper: Lapse manages parameter locality by *relocating* each hot parameter to
the single node that accesses it; the related-work discussion (and the NuPS
follow-up) contrasts this with *replication*, which copies hot parameters to
every accessing node and synchronizes the copies asynchronously.  The paper's
systems cover static allocation and relocation; the repo adds a
replication-based PS so the third strategy can be measured on equal footing.

Here: the three strategies run the paper's three workloads (matrix
factorization, knowledge-graph embeddings, word vectors) at a fixed
parallelism, with shared-memory local access everywhere so the comparison
isolates the parameter-management strategy.  Expected shape:

* both dynamic strategies beat the static classic PS on epoch time, because
  they make most reads local;
* replication achieves a local-read fraction comparable to relocation's;
* the two strategies pay for locality differently: relocation moves each key
  (relocation messages, zero steady-state overhead), replication keeps paying
  synchronization traffic (flush/broadcast messages) for as long as the keys
  are written.
"""

import pytest
from benchmark_utils import WORKERS_PER_NODE, run_once

from repro.experiments import (
    KGEScale,
    MFScale,
    W2VScale,
    format_table,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)

#: All systems run at the paper's mid-scale parallelism level.
NUM_NODES = 4

#: Static allocation vs. relocation vs. replication, all with shared-memory
#: local access.
SYSTEMS = ("classic_fast_local", "lapse", "replica")

MF = MFScale()
KGE = KGEScale()
W2V = W2VScale()


def _run_task(task):
    results = []
    for system in SYSTEMS:
        if task == "mf":
            result = run_mf_experiment(
                system, num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, scale=MF
            )
        elif task == "kge":
            result = run_kge_experiment(
                system, num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, scale=KGE
            )
        else:
            result = run_w2v_experiment(
                system, num_nodes=NUM_NODES, workers_per_node=WORKERS_PER_NODE, scale=W2V
            )
        results.append(result)
    return results


def _rows(results):
    rows = []
    for result in results:
        metrics = result.metrics
        rows.append(
            {
                "task": result.task,
                "system": result.system,
                "epoch_time_s": round(result.epoch_duration, 6),
                "local_read_frac": round(metrics.local_read_fraction, 3),
                "remote_messages": result.remote_messages,
                "bytes_sent": result.bytes_sent,
                "relocations": metrics.relocations,
                "replicas": metrics.replica_creates,
                "sync_msgs": metrics.replica_flush_messages
                + metrics.replica_broadcast_messages,
                "sync_bytes": metrics.replica_sync_bytes,
            }
        )
    return rows


def _by_system(results):
    return {result.system: result for result in results}


@pytest.mark.parametrize("task", ["mf", "kge", "w2v"])
def test_replication_vs_relocation(benchmark, task):
    results = run_once(benchmark, lambda: _run_task(task))
    rows = _rows(results)
    print()
    print(
        format_table(
            rows,
            title=f"Replication vs. relocation ({task}, {NUM_NODES}x{WORKERS_PER_NODE})",
        )
    )

    by_system = _by_system(results)
    classic = by_system["classic_fast_local"]
    lapse = by_system["lapse"]
    replica = by_system["replica"]

    # Replication actually happened, and its maintenance traffic is visible.
    assert replica.metrics.replica_creates > 0
    assert replica.metrics.replica_flush_messages > 0
    assert replica.metrics.replica_sync_bytes > 0
    # Relocation does not pay synchronization traffic; replication does not
    # relocate.  The two locality mechanisms are disjoint.
    assert lapse.metrics.replica_sync_bytes == 0
    assert replica.metrics.relocations == 0
    assert lapse.metrics.relocations > 0

    # Both dynamic strategies make most reads local; static allocation cannot.
    assert replica.metrics.local_read_fraction > classic.metrics.local_read_fraction
    assert replica.metrics.local_read_fraction > 0.5

    # Both dynamic strategies beat static allocation on epoch time.
    assert lapse.epoch_duration < classic.epoch_duration
    assert replica.epoch_duration < classic.epoch_duration

    speedup = classic.epoch_duration / replica.epoch_duration
    print(
        f"\nreplica: {speedup:.1f}x faster than the static classic PS; "
        f"lapse: {classic.epoch_duration / lapse.epoch_duration:.1f}x; "
        f"replication maintenance traffic: {replica.metrics.replica_sync_bytes} bytes "
        f"vs. 0 for relocation"
    )
