"""Table 3: location-management strategies (storage and message counts).

Paper: per-node storage and number of messages per remote access / relocation
for four strategies — static partitioning (no DPA), broadcast operations,
broadcast relocations, and the (decentralized) home-node strategy that Lapse
uses (3 messages uncached, 2 with a correct location cache, 4 with a stale
cache; 3 messages per relocation).

Here: the home-node numbers are *measured* on the Lapse implementation with
micro-workloads that force each routing case; the broadcast strategies'
message counts are the analytic values from the paper (they are functions of
N and K only), printed alongside for the full table.
"""

import numpy as np
from benchmark_utils import run_once

from repro.config import ClusterConfig, ParameterServerConfig
from repro.experiments import format_table
from repro.ps import LapsePS

NUM_NODES = 4
NUM_KEYS = 16


def build(caches):
    cluster = ClusterConfig(num_nodes=NUM_NODES, workers_per_node=1, seed=3)
    config = ParameterServerConfig(num_keys=NUM_KEYS, value_length=2, location_caches=caches)
    return LapsePS(cluster, config)


def measure_remote_access_messages(caches, make_cache_stale=False):
    """Messages for one remote pull of a key whose owner differs from its home."""
    ps = build(caches)
    measured = {}

    def worker(client, worker_id):
        # Key 15 is homed on node 3.  Node 2 localizes it so that home != owner.
        if worker_id == 2:
            yield from client.localize([15])
        yield from client.barrier()
        if worker_id == 0 and caches:
            # Warm node 0's location cache with the current owner (node 2).
            yield from client.pull([15])
        yield from client.barrier()
        if make_cache_stale and worker_id == 1:
            # Node 1 steals the key, making node 0's cache entry stale.
            yield from client.localize([15])
        yield from client.barrier()
        if worker_id == 0:
            before = ps.network.stats.remote_messages
            yield from client.pull([15])
            after = ps.network.stats.remote_messages
            measured["messages"] = after - before
        return None

    ps.run_workers(worker)
    return measured["messages"]


def measure_relocation_messages():
    """Messages for one relocation with distinct requester, home, and owner."""
    ps = build(caches=False)
    measured = {}

    def worker(client, worker_id):
        if worker_id == 2:
            yield from client.localize([15])  # key homed on node 3, now owned by node 2
        yield from client.barrier()
        if worker_id == 0:
            before = ps.network.stats.remote_messages
            yield from client.localize([15])
            after = ps.network.stats.remote_messages
            measured["messages"] = after - before
        return None

    ps.run_workers(worker)
    return measured["messages"]


def test_table3_location_management(benchmark):
    def run():
        return {
            "uncached": measure_remote_access_messages(caches=False),
            "cached_correct": measure_remote_access_messages(caches=True),
            "cached_stale": measure_remote_access_messages(caches=True, make_cache_stale=True),
            "relocation": measure_relocation_messages(),
        }

    measured = run_once(benchmark, run)
    n, k = NUM_NODES, NUM_KEYS
    rows = [
        {"strategy": "Static partition (no DPA)", "storage/node": 0, "msgs/remote access": 2,
         "msgs/relocation": "n/a", "source": "analytic"},
        {"strategy": "Broadcast operations", "storage/node": 0, "msgs/remote access": n,
         "msgs/relocation": 0, "source": "analytic"},
        {"strategy": "Broadcast relocations", "storage/node": k, "msgs/remote access": 2,
         "msgs/relocation": n, "source": "analytic"},
        {"strategy": "Home node (Lapse, uncached)", "storage/node": k // n,
         "msgs/remote access": measured["uncached"],
         "msgs/relocation": measured["relocation"], "source": "measured"},
        {"strategy": "Home node (correct cache)", "storage/node": k // n,
         "msgs/remote access": measured["cached_correct"],
         "msgs/relocation": measured["relocation"], "source": "measured"},
        {"strategy": "Home node (stale cache)", "storage/node": k // n,
         "msgs/remote access": measured["cached_stale"],
         "msgs/relocation": measured["relocation"], "source": "measured"},
    ]
    print()
    print(format_table(rows, title=f"Table 3: location management (N={n} nodes, K={k} keys)"))

    # The home-node strategy of Lapse: 3 messages per uncached remote access,
    # 2 with a correct cache, 4 with a stale cache, and 3 per relocation.
    assert measured["uncached"] == 3
    assert measured["cached_correct"] == 2
    assert measured["cached_stale"] == 4
    assert measured["relocation"] == 3
