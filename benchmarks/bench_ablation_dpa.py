"""§4.6 ablation: dynamic parameter allocation vs. fast local access.

Paper: Lapse differs from a classic PS in two ways — dynamic parameter
allocation (DPA) and shared-memory access to local parameters.  Shared memory
alone has limited effect on multiple nodes (most parameters are remote, so
network latency dominates); only the combination of DPA and shared memory
yields good performance.

Here: the three variants (classic, classic + fast local access, Lapse) run the
matrix-factorization workload at 1 and 8 nodes.
"""

from benchmark_utils import WORKERS_PER_NODE, run_once

from repro.experiments import MFScale, format_table, matrix_factorization_scenario
from repro.experiments.scenarios import epoch_time

SCALE = MFScale()


def test_ablation_dpa_vs_fast_local_access(benchmark):
    def run():
        return matrix_factorization_scenario(
            systems=("classic", "classic_fast_local", "lapse"),
            parallelism=(1, 8),
            scale=SCALE,
            workers_per_node=WORKERS_PER_NODE,
        )

    rows = run_once(benchmark, run)
    print()
    print(format_table(rows, title="Ablation: DPA vs fast local access (MF epoch time, simulated s)"))

    def t(system, nodes):
        return epoch_time(rows, system, f"{nodes}x{WORKERS_PER_NODE}")

    # On a single node, fast local access alone is a large win (all parameters
    # are local, shared memory vs inter-process access).
    assert t("classic_fast_local", 1) < 0.8 * t("classic", 1)
    assert abs(t("classic_fast_local", 1) - t("lapse", 1)) / t("lapse", 1) < 0.05
    # On 8 nodes, fast local access alone has limited effect (within 30% of the
    # plain classic PS) because most accesses are remote …
    assert t("classic_fast_local", 8) > 0.7 * t("classic", 8)
    # … while adding DPA gives a large improvement.
    assert t("lapse", 8) < 0.5 * t("classic_fast_local", 8)
