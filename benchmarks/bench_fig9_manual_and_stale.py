"""Figure 9: comparison to manual parameter management and to a stale PS.

Paper: matrix factorization with Lapse vs. Petuum (client-based SSP and
server-based SSPPush synchronization, including the slower warm-up epoch) vs.
a task-specific, hand-tuned low-level implementation.  The low-level
implementation and Lapse scale linearly (Lapse with 2.0-2.6x generalization
overhead); the stale PS is slower than Lapse and does not scale linearly.

Here: the same scaled-down MF workload as Figure 6.  The network bandwidth is
scaled down proportionally to the scaled-down parameter sizes so that the
eager replication traffic of server-based synchronization remains visible
(see DESIGN.md on substitutions).  Expected shape: low-level < Lapse <
stale (after warm-up) < stale (client sync), and the stale PS's warm-up epoch
is slower than its post-warm-up epochs.
"""

from benchmark_utils import PARALLELISM, WORKERS_PER_NODE, run_once

from repro.config import CostModel
from repro.experiments import MFScale, format_table
from repro.experiments.runner import run_mf_experiment
from repro.experiments.scenarios import epoch_time

SCALE = MFScale()
COST_MODEL = CostModel()


def test_figure9_manual_and_stale(benchmark):
    def run():
        rows = []
        for system in ("lapse", "lowlevel", "stale_ssp", "stale_ssppush"):
            epochs = 2 if system.startswith("stale") else 1
            for nodes in PARALLELISM:
                result = run_mf_experiment(
                    system,
                    num_nodes=nodes,
                    workers_per_node=WORKERS_PER_NODE,
                    scale=SCALE,
                    epochs=epochs,
                    cost_model=COST_MODEL,
                )
                label = system
                duration = result.epochs[-1].duration
                rows.append(
                    {
                        "system": label,
                        "parallelism": result.parallelism,
                        "epoch_time_s": duration,
                        "warmup_epoch_time_s": result.epochs[0].duration,
                    }
                )
        return rows

    rows = run_once(benchmark, run)
    print()
    print(
        format_table(
            rows,
            title="Figure 9: MF epoch run time — Lapse vs low-level vs stale PS (simulated s)",
        )
    )

    def t(system, nodes):
        for row in rows:
            if row["system"] == system and row["parallelism"] == f"{nodes}x{WORKERS_PER_NODE}":
                return float(row["epoch_time_s"])
        raise AssertionError(f"missing row {system} {nodes}")

    def warmup(system, nodes):
        for row in rows:
            if row["system"] == system and row["parallelism"] == f"{nodes}x{WORKERS_PER_NODE}":
                return float(row["warmup_epoch_time_s"])
        raise AssertionError(f"missing row {system} {nodes}")

    # Both Lapse and the low-level implementation scale with the node count.
    assert t("lapse", 8) < t("lapse", 1)
    assert t("lowlevel", 8) < t("lowlevel", 1)
    # Lapse has a bounded generalization overhead over the specialized
    # low-level implementation (paper: 2.0-2.6x).
    overhead = t("lapse", 8) / t("lowlevel", 8)
    assert 1.0 < overhead < 5.0
    # Client-based synchronization (SSP) is clearly slower than Lapse at scale
    # because of the synchronous per-clock replica refreshes.
    assert t("stale_ssp", 8) > 1.2 * t("lapse", 8)
    # Server-based synchronization beats client-based synchronization after its
    # warm-up epoch, and the warm-up epoch is slower than the steady state.
    # (The paper additionally finds SSPPush 2-4x slower than Lapse; the gap is
    # not reproduced at this scale because the eagerly replicated state is tiny
    # relative to the simulated bandwidth — see EXPERIMENTS.md.)
    assert t("stale_ssppush", 8) < t("stale_ssp", 8)
    assert t("stale_ssppush", 8) > 0.8 * t("lapse", 8)
    assert warmup("stale_ssppush", 8) > t("stale_ssppush", 8)
    print(f"\nLapse generalization overhead over the low-level implementation at 8 nodes: {overhead:.2f}x")
