"""Tests for the PAL techniques: data clustering, parameter blocking, latency hiding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig, ParameterServerConfig
from repro.errors import ExperimentError
from repro.pal import (
    BlockSchedule,
    Prelocalizer,
    access_counts_by_node,
    assign_parameters_by_frequency,
    block_of_key,
    clustering_localize_plan,
    keys_of_block,
)
from repro.pal.latency_hiding import presample_local_negatives
from repro.ps import LapsePS


class TestDataClustering:
    def test_access_counts(self):
        counts = access_counts_by_node([[0, 0, 1], [2, 2, 2]], num_keys=4)
        assert counts.shape == (2, 4)
        assert counts[0, 0] == 2
        assert counts[1, 2] == 3

    def test_access_counts_validation(self):
        with pytest.raises(ExperimentError):
            access_counts_by_node([[5]], num_keys=4)
        with pytest.raises(ExperimentError):
            access_counts_by_node([[0]], num_keys=0)

    def test_assignment_prefers_most_frequent_node(self):
        counts = np.array([[5, 0, 1], [1, 3, 1]])
        assignment = assign_parameters_by_frequency(counts)
        assert assignment[0] == 0
        assert assignment[1] == 1

    def test_unaccessed_keys_spread_round_robin(self):
        counts = np.zeros((2, 4), dtype=int)
        assignment = assign_parameters_by_frequency(counts)
        assert set(assignment.tolist()) == {0, 1}

    def test_localize_plan(self):
        assignment = np.array([0, 1, 0, 1, 1])
        assert clustering_localize_plan(assignment, 0) == [0, 2]
        assert clustering_localize_plan(assignment, 1) == [1, 3, 4]
        with pytest.raises(ExperimentError):
            clustering_localize_plan(assignment, -1)

    def test_clustered_workload_is_mostly_local_on_lapse(self):
        """End to end: clustering + localize makes most accesses local."""
        cluster = ClusterConfig(num_nodes=2, workers_per_node=1, seed=0)
        ps = LapsePS(cluster, ParameterServerConfig(num_keys=10, value_length=2))
        # Node 0's data touches keys 0-4, node 1's data keys 5-9 (plus a little overlap).
        accesses = {0: [0, 1, 2, 3, 4, 4, 5], 1: [5, 6, 7, 8, 9, 9, 4]}
        counts = access_counts_by_node([accesses[0], accesses[1]], num_keys=10)
        assignment = assign_parameters_by_frequency(counts)

        def worker(client, worker_id):
            plan = clustering_localize_plan(assignment, client.node_id)
            if plan:
                yield from client.localize(plan)
            yield from client.barrier()
            for key in accesses[client.node_id]:
                yield from client.pull([key])
            return None

        ps.run_workers(worker)
        metrics = ps.metrics()
        assert metrics.local_read_fraction > 0.8


class TestParameterBlocking:
    def test_keys_of_block_partition_key_space(self):
        all_keys = []
        for block in range(3):
            all_keys.extend(keys_of_block(block, num_keys=10, num_blocks=3))
        assert sorted(all_keys) == list(range(10))

    def test_block_of_key_inverse(self):
        for key in range(10):
            block = block_of_key(key, num_keys=10, num_blocks=3)
            assert key in keys_of_block(block, 10, 3)

    def test_invalid_blocking(self):
        with pytest.raises(ExperimentError):
            keys_of_block(5, num_keys=10, num_blocks=3)
        with pytest.raises(ExperimentError):
            keys_of_block(0, num_keys=2, num_blocks=3)
        with pytest.raises(ExperimentError):
            block_of_key(11, num_keys=10, num_blocks=3)

    def test_schedule_rotation(self):
        schedule = BlockSchedule(num_workers=3)
        assert schedule.num_subepochs == 3
        assert schedule.assignment_table(0) == [0, 1, 2]
        assert schedule.assignment_table(1) == [1, 2, 0]
        assert schedule.verify_conflict_free()

    def test_each_worker_sees_every_block_once_per_epoch(self):
        schedule = BlockSchedule(num_workers=4)
        for worker in range(4):
            blocks = {schedule.block_for(worker, s) for s in range(schedule.num_subepochs)}
            assert blocks == set(range(4))

    def test_schedule_validation(self):
        with pytest.raises(ExperimentError):
            BlockSchedule(num_workers=0)
        with pytest.raises(ExperimentError):
            BlockSchedule(num_workers=4, num_blocks=2)
        schedule = BlockSchedule(num_workers=2)
        with pytest.raises(ExperimentError):
            schedule.block_for(5, 0)
        with pytest.raises(ExperimentError):
            schedule.block_for(0, -1)

    @settings(max_examples=30, deadline=None)
    @given(
        num_workers=st.integers(min_value=1, max_value=8),
        num_keys=st.integers(min_value=8, max_value=64),
    )
    def test_property_schedule_is_conflict_free_and_covering(self, num_workers, num_keys):
        schedule = BlockSchedule(num_workers=num_workers)
        assert schedule.verify_conflict_free()
        for subepoch in range(schedule.num_subepochs):
            covered = []
            for worker in range(num_workers):
                covered.extend(schedule.keys_for(worker, subepoch, num_keys))
            assert len(covered) == len(set(covered))


class TestLatencyHiding:
    def _build(self):
        cluster = ClusterConfig(num_nodes=2, workers_per_node=1, seed=0)
        return LapsePS(cluster, ParameterServerConfig(num_keys=12, value_length=2))

    def test_prelocalizer_window(self):
        ps = self._build()

        def worker(client, worker_id):
            if worker_id != 0:
                return None
            prelocalizer = Prelocalizer(client, lookahead=1)
            data = [[6], [7], [8], [9]]
            prelocalizer.prime(data[0])
            pulled = []
            for index, keys in enumerate(data):
                if index + 1 < len(data):
                    prelocalizer.announce(data[index + 1])
                yield from prelocalizer.ready()
                values = yield from client.pull(keys)
                pulled.append(values[0].copy())
            return pulled
            yield

        results = ps.run_workers(worker)
        assert len(results[0]) == 4
        # After the run, all prelocalized keys belong to node 0.
        assert all(ps.current_owner(k) == 0 for k in (6, 7, 8, 9))

    def test_prelocalized_access_is_local(self):
        ps = self._build()

        def worker(client, worker_id):
            if worker_id != 0:
                return None
            prelocalizer = Prelocalizer(client)
            prelocalizer.prime([10])
            yield from prelocalizer.ready()
            local_before = ps.metrics().key_reads_local
            yield from client.pull([10])
            local_after = ps.metrics().key_reads_local
            return local_after - local_before

        results = ps.run_workers(worker)
        assert results[0] == 1

    def test_prelocalizer_validation(self):
        ps = self._build()
        client = ps.client(0, 0)
        with pytest.raises(ExperimentError):
            Prelocalizer(client, lookahead=0)
        prelocalizer = Prelocalizer(client)
        with pytest.raises(ExperimentError):
            next(prelocalizer.ready())

    def test_empty_announce_is_allowed(self):
        ps = self._build()

        def worker(client, worker_id):
            if worker_id != 0:
                return None
            prelocalizer = Prelocalizer(client)
            prelocalizer.announce([])
            yield from prelocalizer.ready()
            return "ok"

        assert ps.run_workers(worker)[0] == "ok"

    def test_presample_local_negatives_skips_remote_keys(self):
        ps = self._build()
        client = ps.client(0, 0)
        # Keys 0-5 are local to node 0, keys 6-11 are on node 1.
        keys, values = presample_local_negatives(client, candidates=[6, 0, 7, 1, 8, 2], needed=2)
        assert keys == [0, 1]
        assert len(values) == 2
