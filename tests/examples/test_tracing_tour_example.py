"""Smoke test for the tracing-tour example.

``examples/tracing_tour.py`` is a demo script, not part of the library, so
nothing else in the suite would notice if an obs-API change broke it.  This
test runs it end-to-end on a tiny workload and asserts that it completes,
confirms bit-identity, and writes a schema-valid trace.
"""

import os
import sys

import pytest

from repro.obs import load_trace, validate_trace

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
EXAMPLES = os.path.join(ROOT, "examples")


@pytest.fixture()
def tracing_tour():
    if EXAMPLES not in sys.path:
        sys.path.insert(0, EXAMPLES)
    import tracing_tour

    return tracing_tour


def test_tracing_tour_smoke(tracing_tour, tmp_path, capsys):
    out = tmp_path / "trace.json"
    exit_code = tracing_tour.main(["--smoke", "--out", str(out)])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "bit-identical" in output
    assert "latency histograms" in output
    assert "cluster markers" in output
    validate_trace(load_trace(str(out)))
