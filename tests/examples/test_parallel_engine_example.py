"""Smoke test for the parallel-engine example.

``examples/parallel_engine.py`` is a demo script, not part of the library,
so nothing else in the suite would notice if a runner-API change broke it.
This test runs it end-to-end on a tiny workload and asserts that it
completes, reports both engine runs, and confirms bit-identity.
"""

import os
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
EXAMPLES = os.path.join(ROOT, "examples")


@pytest.fixture()
def parallel_engine():
    if EXAMPLES not in sys.path:
        sys.path.insert(0, EXAMPLES)
    import parallel_engine

    return parallel_engine


def test_parallel_engine_smoke(parallel_engine, capsys):
    exit_code = parallel_engine.main(["--jobs", "2", "--smoke"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "jobs=1" in output
    assert "jobs=2" in output
    assert "bit-identical" in output
    assert "speedup" in output


def test_parallel_engine_help(parallel_engine, capsys):
    with pytest.raises(SystemExit) as excinfo:
        parallel_engine.main(["--help"])
    assert excinfo.value.code == 0
    assert "--jobs" in capsys.readouterr().out
