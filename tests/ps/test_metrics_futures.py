"""Tests for metric counters and operation handles."""

import numpy as np
import pytest

from repro.config import ClusterConfig, ParameterServerConfig
from repro.errors import ParameterServerError
from repro.ps import ClassicSharedMemoryPS, LapsePS
from repro.ps.futures import OperationHandle, wait_all
from repro.ps.metrics import PSMetrics, RunningStat
from repro.simnet import Simulator


class TestRunningStat:
    def test_empty(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0

    def test_record_and_mean(self):
        stat = RunningStat()
        for value in (1.0, 2.0, 3.0):
            stat.record(value)
        assert stat.count == 3
        assert stat.mean == pytest.approx(2.0)
        assert stat.minimum == 1.0
        assert stat.maximum == 3.0

    def test_merge(self):
        a, b = RunningStat(), RunningStat()
        a.record(1.0)
        b.record(5.0)
        merged = a.merge(b)
        assert merged.count == 2
        assert merged.mean == pytest.approx(3.0)
        assert merged.minimum == 1.0
        assert merged.maximum == 5.0


class TestPSMetrics:
    def test_totals_and_fractions(self):
        metrics = PSMetrics(pulls_local=3, pulls_remote=1, key_reads_local=30, key_reads_remote=10)
        assert metrics.pulls_total == 4
        assert metrics.key_reads_total == 40
        assert metrics.local_read_fraction == pytest.approx(0.75)

    def test_local_fraction_with_no_reads(self):
        assert PSMetrics().local_read_fraction == 1.0

    def test_merge_sums_counters(self):
        a = PSMetrics(pulls_local=1, relocations=2)
        b = PSMetrics(pulls_local=3, relocations=5)
        a.relocation_time.record(1.0)
        b.relocation_time.record(3.0)
        merged = a.merge(b)
        assert merged.pulls_local == 4
        assert merged.relocations == 7
        assert merged.relocation_time.mean == pytest.approx(2.0)

    def test_aggregate(self):
        parts = [PSMetrics(pushes_remote=i) for i in range(4)]
        total = PSMetrics.aggregate(parts)
        assert total.pushes_remote == 6

    def test_as_dict_contains_all_counters(self):
        data = PSMetrics().as_dict()
        assert "relocations" in data
        assert "mean_relocation_time" in data
        assert data["pulls_local"] == 0


class TestOperationHandle:
    def test_pull_completion_and_values(self):
        sim = Simulator()
        handle = OperationHandle(sim, "pull", [3, 1], value_length=2)
        assert not handle.done
        handle.complete_keys([1], np.array([[1.0, 2.0]]))
        assert not handle.done
        handle.complete_keys([3], np.array([[3.0, 4.0]]))
        sim.run()
        assert handle.done
        np.testing.assert_allclose(handle.values(), [[3.0, 4.0], [1.0, 2.0]])

    def test_single_value(self):
        sim = Simulator()
        handle = OperationHandle(sim, "pull", [7], value_length=3)
        handle.complete_keys([7], np.array([[1.0, 2.0, 3.0]]))
        sim.run()
        np.testing.assert_allclose(handle.value(), [1.0, 2.0, 3.0])

    def test_value_requires_single_key(self):
        sim = Simulator()
        handle = OperationHandle(sim, "pull", [1, 2], value_length=1)
        handle.complete_keys([1, 2], np.array([[1.0], [2.0]]))
        sim.run()
        with pytest.raises(ParameterServerError):
            handle.value()

    def test_push_has_no_values(self):
        sim = Simulator()
        handle = OperationHandle(sim, "push", [1], value_length=1)
        handle.complete_keys([1])
        sim.run()
        with pytest.raises(ParameterServerError):
            handle.values()

    def test_values_before_completion_raises(self):
        sim = Simulator()
        handle = OperationHandle(sim, "pull", [1], value_length=1)
        with pytest.raises(ParameterServerError):
            handle.values()
        with pytest.raises(ParameterServerError):
            _ = handle.latency

    def test_duplicate_completion_ignored(self):
        sim = Simulator()
        handle = OperationHandle(sim, "pull", [1], value_length=1)
        handle.complete_keys([1], np.array([[5.0]]))
        handle.complete_keys([1], np.array([[9.0]]))
        sim.run()
        np.testing.assert_allclose(handle.value(), [5.0])

    def test_mismatched_rows_rejected(self):
        sim = Simulator()
        handle = OperationHandle(sim, "pull", [1, 2], value_length=1)
        with pytest.raises(ParameterServerError):
            handle.complete_keys([1, 2], np.array([[1.0]]))

    def test_latency_measured_in_sim_time(self):
        sim = Simulator()
        handle = OperationHandle(sim, "pull", [1], value_length=1)

        def completer():
            yield 2.0
            handle.complete_keys([1], np.array([[1.0]]))

        sim.run_process(completer())
        assert handle.latency == pytest.approx(2.0)

    def test_wait_all(self):
        sim = Simulator()
        handles = [OperationHandle(sim, "push", [k], 1) for k in range(3)]

        def completer():
            for handle in handles:
                yield 1.0
                handle.complete_keys(handle.keys)

        def waiter():
            yield wait_all(sim, handles)
            return sim.now

        sim.process(completer())
        finished = sim.run_process(waiter())
        assert finished == pytest.approx(3.0)

    def test_wait_all_over_already_completed_handles(self):
        """wait_all must not block when every handle finished beforehand."""
        sim = Simulator()
        handles = [OperationHandle(sim, "push", [k], 1) for k in range(3)]
        for handle in handles:
            handle.complete_keys(handle.keys)
        assert all(handle.done for handle in handles)

        def waiter():
            yield wait_all(sim, handles)
            return sim.now

        finished = sim.run_process(waiter())
        assert finished == pytest.approx(0.0)

    def test_wait_all_empty_iterable(self):
        sim = Simulator()

        def waiter():
            yield wait_all(sim, [])
            return sim.now

        assert sim.run_process(waiter()) == pytest.approx(0.0)

    def test_client_wait_all_over_completed_handles(self):
        """The WorkerClient.wait_all generator path with done handles."""
        cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
        ps = ClassicSharedMemoryPS(
            cluster, ParameterServerConfig(num_keys=4, value_length=2)
        )

        def worker(client, worker_id):
            handles = [client.push_async([k], np.ones((1, 2))) for k in range(3)]
            yield from client.wait_all(handles)
            assert all(handle.done for handle in handles)
            # A second wait over the same (now completed) handles returns
            # without yielding any pending event.
            yield from client.wait_all(handles)
            return client.sim.now

        results = ps.run_workers(worker)
        assert results[0] > 0.0

    def test_fail_then_complete_does_not_untrigger(self):
        """Double-completion protection: completing after fail keeps the failure."""
        sim = Simulator()
        handle = OperationHandle(sim, "push", [1], value_length=1)
        handle.fail(ParameterServerError("boom"))
        failed_at = handle.completed_at
        handle.complete_keys([1])
        assert handle.completed_at == failed_at

        def waiter():
            yield handle.completion_event
            return None

        with pytest.raises(ParameterServerError, match="boom"):
            sim.run_process(waiter())

    def test_fail_after_completion_is_ignored(self):
        sim = Simulator()
        handle = OperationHandle(sim, "pull", [1], value_length=1)
        handle.complete_keys([1], np.array([[7.0]]))
        completed_at = handle.completed_at
        handle.fail(ParameterServerError("too late"))
        sim.run()
        assert handle.completed_at == completed_at
        np.testing.assert_allclose(handle.value(), [7.0])

    def test_completion_event_fires_once_for_duplicates(self):
        sim = Simulator()
        handle = OperationHandle(sim, "push", [1, 2], value_length=1)
        fired = []
        handle.completion_event.callbacks.append(lambda _evt: fired.append(sim.now))
        handle.complete_keys([1])
        handle.complete_keys([2])
        handle.complete_keys([1])  # duplicate after full completion
        handle.complete_keys([2])
        sim.run()
        assert len(fired) == 1


class TestZeroKeyOperations:
    """Every primitive rejects an empty key list up front."""

    @pytest.fixture()
    def classic_ps(self):
        cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
        return ClassicSharedMemoryPS(
            cluster, ParameterServerConfig(num_keys=4, value_length=2)
        )

    @pytest.fixture()
    def lapse_ps(self):
        cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
        return LapsePS(cluster, ParameterServerConfig(num_keys=4, value_length=2))

    def test_zero_key_pull_and_push_rejected(self, classic_ps):
        client = classic_ps.client(0, 0)
        with pytest.raises(ParameterServerError, match="at least one key"):
            client.pull_async([])
        with pytest.raises(ParameterServerError, match="at least one key"):
            client.push_async([], np.zeros((0, 2)))
        # Generators inherit the check on their first step.
        with pytest.raises(ParameterServerError, match="at least one key"):
            next(client.pull([]))

    def test_zero_key_pull_rejected_for_iterators(self, classic_ps):
        client = classic_ps.client(0, 0)
        with pytest.raises(ParameterServerError, match="at least one key"):
            client.pull_async(iter([]))
        with pytest.raises(ParameterServerError, match="at least one key"):
            client.pull_async(np.array([], dtype=np.int64))

    def test_zero_key_localize_rejected(self, lapse_ps):
        client = lapse_ps.client(0, 0)
        with pytest.raises(ParameterServerError, match="at least one key"):
            client.localize_async([])
