"""Tests for the management-policy layer (routing, dispatch, classification)."""

import numpy as np
import pytest

from repro.config import ClusterConfig, ParameterServerConfig
from repro.errors import ParameterServerError
from repro.ps import (
    ClassicSharedMemoryPS,
    HybridPS,
    LapsePS,
    ReplicaPS,
    StalePS,
    consistency_classification,
)
from repro.ps.policy import (
    ROUTE_BUFFER,
    ROUTE_LOCAL,
    ROUTE_QUEUE,
    ROUTE_REMOTE,
    ROUTE_REPLICA,
    ROUTE_SUBSCRIBE,
    EagerReplicationPolicy,
    HybridManagementPolicy,
    RelocationPolicy,
    StaleReplicaPolicy,
    StaticPolicy,
)


def make(ps_class, num_nodes=2, **config_kwargs):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=1, seed=0)
    defaults = dict(num_keys=8, value_length=2)
    defaults.update(config_kwargs)
    return ps_class(cluster, ParameterServerConfig(**defaults))


class TestPolicyBinding:
    @pytest.mark.parametrize(
        "ps_class,policy_class",
        [
            (ClassicSharedMemoryPS, StaticPolicy),
            (LapsePS, RelocationPolicy),
            (StalePS, StaleReplicaPolicy),
            (ReplicaPS, EagerReplicationPolicy),
            (HybridPS, HybridManagementPolicy),
        ],
    )
    def test_each_system_maps_onto_its_policy(self, ps_class, policy_class):
        ps = make(ps_class)
        assert isinstance(ps.management_policy, policy_class)
        # One policy instance serves all nodes.
        assert ps.management_policy is ps.management_policy

    def test_only_relocating_policies_support_localize(self):
        assert not StaticPolicy(None).supports_localize
        assert not StaleReplicaPolicy(None).supports_localize
        assert not EagerReplicationPolicy(None).supports_localize
        assert RelocationPolicy(None).supports_localize


class TestStaticRouting:
    def test_route_local_vs_remote(self):
        ps = make(ClassicSharedMemoryPS)
        policy = ps.management_policy
        # Keys 0-3 on node 0, keys 4-7 on node 1 (range partitioning).
        routes = policy.route_many(ps.states[0], [0, 5, 3, 7])
        assert [r.kind for r in routes] == [
            ROUTE_LOCAL, ROUTE_REMOTE, ROUTE_LOCAL, ROUTE_REMOTE,
        ]
        assert routes[1].destination == 1
        assert routes[3].destination == 1


class TestRelocationRouting:
    def test_resident_and_remote(self):
        ps = make(LapsePS)
        policy = ps.management_policy
        routes = policy.route_many(ps.states[0], [0, 4])
        assert routes[0].kind == ROUTE_LOCAL
        assert routes[1].kind == ROUTE_REMOTE
        assert routes[1].destination == 1  # home node of key 4

    def test_relocating_key_queues(self):
        from repro.ps.lapse import RelocatingKey

        ps = make(LapsePS)
        state = ps.states[0]
        state.relocating_in[4] = RelocatingKey(key=4, requested_at=0.0)
        route = ps.management_policy.route(state, 4)
        assert route.kind == ROUTE_QUEUE

    def test_location_cache_hit_is_recorded(self):
        ps = make(LapsePS, location_caches=True)
        state = ps.states[0]
        state.location_cache[4] = 1
        route = ps.management_policy.route(state, 4)
        assert route.kind == ROUTE_REMOTE and route.destination == 1
        assert state.metrics.cache_hits == 1
        route = ps.management_policy.route(state, 5)
        assert route.destination == 1  # home node, counted as a cache miss
        assert state.metrics.cache_misses == 1


class TestStaleRouting:
    def test_fresh_replica_vs_stale_fetch(self):
        ps = make(StalePS, staleness_bound=1)
        policy = ps.management_policy
        state = ps.states[0]
        state.replicas[4] = [np.zeros(2), 0]  # fetched at clock 0
        fresh = policy.route_many(state, [4], clock=1)[0]
        assert fresh.kind == ROUTE_REPLICA
        stale = policy.route_many(state, [4], clock=3)[0]
        assert stale.kind == ROUTE_REMOTE and stale.destination == 1

    def test_remote_writes_buffer(self):
        ps = make(StalePS)
        routes = ps.management_policy.route_many(
            ps.states[0], [0, 4], write=True, clock=0
        )
        assert routes[0].kind == ROUTE_LOCAL
        assert routes[1].kind == ROUTE_BUFFER


class TestReplicationRouting:
    def test_hot_read_subscribes_and_queues_follow(self):
        ps = make(ReplicaPS, hot_key_threshold=2)
        policy = ps.management_policy
        state = ps.states[0]
        first = policy.route(state, 4)
        assert first.kind == ROUTE_REMOTE  # below the threshold
        second = policy.route(state, 4)
        assert second.kind == ROUTE_SUBSCRIBE and second.destination == 1
        assert 4 in state.installing  # the subscribe route creates the queue
        third = policy.route(state, 4)
        assert third.kind == ROUTE_QUEUE

    def test_writes_do_not_subscribe(self):
        ps = make(ReplicaPS, hot_key_threshold=1)
        state = ps.states[0]
        route = ps.management_policy.route(state, 4, write=True)
        assert route.kind == ROUTE_REMOTE
        assert 4 not in state.installing


class TestHybridRouting:
    def test_cold_keys_follow_relocation_hot_keys_subscribe(self):
        ps = make(HybridPS, hot_key_threshold=2)
        policy = ps.management_policy
        state = ps.states[0]
        assert policy.route(state, 4).kind == ROUTE_REMOTE
        route = policy.route(state, 4)
        assert route.kind == ROUTE_SUBSCRIBE
        assert route.destination == 1  # home-node routing of the relocation policy

    def test_replica_route_once_installed(self):
        ps = make(HybridPS)
        state = ps.states[0]
        state.replicas[4] = np.zeros(2)
        assert ps.management_policy.route(state, 4).kind == ROUTE_REPLICA


class TestServerDispatch:
    def test_unexpected_message_raises(self):
        ps = make(ClassicSharedMemoryPS)

        def worker(client, worker_id):
            ps.send_to_server(0, 0, object(), 64)
            return None
            yield  # pragma: no cover

        with pytest.raises(ParameterServerError, match="unexpected message"):
            ps.run_workers(worker)

    def test_policy_handlers_join_the_dispatch_table(self):
        from repro.ps.messages import (
            LocalizeRequest,
            PullRequest,
            RelocateInstruction,
            RelocationTransfer,
        )

        ps = make(LapsePS)
        dispatch = ps._server_dispatch(ps.states[0])
        assert PullRequest in dispatch
        assert LocalizeRequest in dispatch
        assert RelocateInstruction in dispatch
        assert RelocationTransfer in dispatch
        cost = ps.cluster.cost_model
        assert dispatch[PullRequest][0] == cost.server_processing_time
        assert dispatch[LocalizeRequest][0] == cost.relocation_processing_time

    def test_hybrid_dispatch_is_the_union_of_both_protocols(self):
        from repro.ps.messages import (
            LocalizeRequest,
            ReplicaRegisterRequest,
            ReplicaSyncFlush,
        )

        ps = make(HybridPS)
        dispatch = ps._server_dispatch(ps.states[0])
        assert LocalizeRequest in dispatch
        assert ReplicaRegisterRequest in dispatch
        assert ReplicaSyncFlush in dispatch


class TestConsistencyClassification:
    def test_table1_rows(self):
        assert consistency_classification(StaticPolicy(None))["sequential"]
        assert consistency_classification(RelocationPolicy(None))["sequential"]
        stale = consistency_classification(StaleReplicaPolicy(None))
        assert stale["eventual"] and not stale["sequential"] and not stale["session"]
        repl = consistency_classification(EagerReplicationPolicy(None))
        assert repl["eventual"] and repl["session"] and not repl["sequential"]

    def test_server_message_metric_counts_dispatched_messages(self):
        ps = make(ClassicSharedMemoryPS)

        def worker(client, worker_id):
            yield from client.pull([4 if client.node_id == 0 else 0])
            return None

        ps.run_workers(worker)
        assert ps.metrics().server_messages >= 2
