"""Unit and property-based tests for key partitioners and hot-key policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.ps.partition import (
    AccessCountHotKeyPolicy,
    ExplicitHotKeyPolicy,
    ExplicitPartitioner,
    HashPartitioner,
    NoReplicationPolicy,
    RangePartitioner,
    make_hot_key_policy,
    make_partitioner,
    random_key_mapping,
)


class TestRangePartitioner:
    def test_balanced_ranges(self):
        part = RangePartitioner(num_keys=10, num_nodes=3)
        sizes = [len(part.keys_of(node)) for node in range(3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_contiguous_ranges(self):
        part = RangePartitioner(num_keys=100, num_nodes=4)
        for node in range(4):
            keys = part.keys_of(node)
            assert keys == list(range(keys[0], keys[-1] + 1))

    def test_node_of_matches_keys_of(self):
        part = RangePartitioner(num_keys=17, num_nodes=5)
        for node in range(5):
            for key in part.keys_of(node):
                assert part.node_of(key) == node

    def test_range_of(self):
        part = RangePartitioner(num_keys=8, num_nodes=2)
        assert part.range_of(0) == (0, 4)
        assert part.range_of(1) == (4, 8)

    def test_single_node_owns_everything(self):
        part = RangePartitioner(num_keys=5, num_nodes=1)
        assert all(part.node_of(k) == 0 for k in range(5))

    def test_more_nodes_than_keys(self):
        part = RangePartitioner(num_keys=2, num_nodes=4)
        covered = {part.node_of(k) for k in range(2)}
        assert len(covered) == 2

    def test_empty_ranges_when_nodes_exceed_keys(self):
        """Nodes beyond the key count get empty (but valid) ranges."""
        part = RangePartitioner(num_keys=3, num_nodes=5)
        assert part.keys_of(3) == []
        assert part.keys_of(4) == []
        for node in (3, 4):
            start, end = part.range_of(node)
            assert start == end
        # Every key is still covered exactly once.
        all_keys = [key for node in range(5) for key in part.keys_of(node)]
        assert sorted(all_keys) == [0, 1, 2]

    def test_single_key_single_node(self):
        part = RangePartitioner(num_keys=1, num_nodes=1)
        assert part.node_of(0) == 0
        assert part.keys_of(0) == [0]
        assert part.range_of(0) == (0, 1)

    def test_invalid_arguments(self):
        with pytest.raises(PartitionError):
            RangePartitioner(0, 1)
        with pytest.raises(PartitionError):
            RangePartitioner(1, 0)
        part = RangePartitioner(4, 2)
        with pytest.raises(PartitionError):
            part.node_of(7)
        with pytest.raises(PartitionError):
            part.keys_of(9)


class TestHotKeyPolicies:
    def test_access_count_threshold_boundary(self):
        policy = AccessCountHotKeyPolicy(threshold=3)
        assert not policy.is_hot(7)
        policy.record_access(7)
        policy.record_access(7)
        assert not policy.is_hot(7)  # one below the threshold
        policy.record_access(7)
        assert policy.is_hot(7)  # exactly at the threshold
        policy.record_access(7)
        assert policy.is_hot(7)  # and beyond
        assert policy.access_count(7) == 4
        assert policy.access_count(8) == 0

    def test_access_counts_are_per_key(self):
        policy = AccessCountHotKeyPolicy(threshold=2)
        policy.record_access(1)
        policy.record_access(2)
        assert not policy.is_hot(1) and not policy.is_hot(2)
        policy.record_access(1)
        assert policy.is_hot(1)
        assert not policy.is_hot(2)

    def test_threshold_one_is_eager(self):
        policy = AccessCountHotKeyPolicy(threshold=1)
        policy.record_access(0)
        assert policy.is_hot(0)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(PartitionError):
            AccessCountHotKeyPolicy(threshold=0)
        with pytest.raises(PartitionError):
            make_hot_key_policy("access_count", threshold=-1)

    def test_explicit_policy_boundaries(self):
        policy = ExplicitHotKeyPolicy([0, 4], num_keys=5)
        assert policy.is_hot(0)
        assert policy.is_hot(4)  # last valid key
        assert not policy.is_hot(3)
        policy.record_access(3)  # recording never changes an explicit set
        assert not policy.is_hot(3)

    def test_explicit_policy_validates_keys(self):
        with pytest.raises(PartitionError):
            ExplicitHotKeyPolicy([5], num_keys=5)  # one past the end
        with pytest.raises(PartitionError):
            ExplicitHotKeyPolicy([-1])
        # Without a key-space size, any non-negative key is accepted.
        assert ExplicitHotKeyPolicy([10**6]).is_hot(10**6)

    def test_empty_explicit_set_never_hot(self):
        policy = ExplicitHotKeyPolicy([], num_keys=4)
        assert not any(policy.is_hot(key) for key in range(4))

    def test_no_replication_policy(self):
        policy = NoReplicationPolicy()
        policy.record_access(0)
        assert not policy.is_hot(0)

    def test_factory(self):
        assert isinstance(make_hot_key_policy("access_count", threshold=2), AccessCountHotKeyPolicy)
        assert isinstance(make_hot_key_policy("explicit", hot_keys=[1]), ExplicitHotKeyPolicy)
        assert isinstance(make_hot_key_policy("none"), NoReplicationPolicy)
        with pytest.raises(PartitionError):
            make_hot_key_policy("explicit")  # hot_keys missing
        with pytest.raises(PartitionError):
            make_hot_key_policy("zigzag")


class TestHashPartitioner:
    def test_deterministic(self):
        part = HashPartitioner(num_keys=100, num_nodes=4)
        assert [part.node_of(k) for k in range(100)] == [part.node_of(k) for k in range(100)]

    def test_reasonably_balanced(self):
        part = HashPartitioner(num_keys=10_000, num_nodes=4)
        counts = np.bincount([part.node_of(k) for k in range(10_000)], minlength=4)
        assert counts.min() > 1500

    def test_all_nodes_valid(self):
        part = HashPartitioner(num_keys=50, num_nodes=3)
        assert all(0 <= part.node_of(k) < 3 for k in range(50))


class TestExplicitPartitioner:
    def test_assignment_respected(self):
        part = ExplicitPartitioner([0, 1, 1, 0, 2], num_nodes=3)
        assert part.node_of(0) == 0
        assert part.node_of(4) == 2
        assert part.keys_of(1) == [1, 2]

    def test_invalid_assignment_rejected(self):
        with pytest.raises(PartitionError):
            ExplicitPartitioner([0, 3], num_nodes=2)
        with pytest.raises(PartitionError):
            ExplicitPartitioner([], num_nodes=2)


class TestRandomKeyMapping:
    def test_is_permutation(self):
        mapping = random_key_mapping(100, seed=1)
        assert sorted(mapping.tolist()) == list(range(100))

    def test_deterministic_per_seed(self):
        assert random_key_mapping(50, seed=3).tolist() == random_key_mapping(50, seed=3).tolist()
        assert random_key_mapping(50, seed=3).tolist() != random_key_mapping(50, seed=4).tolist()

    def test_invalid_size(self):
        with pytest.raises(PartitionError):
            random_key_mapping(0)


def test_make_partitioner():
    assert isinstance(make_partitioner("range", 10, 2), RangePartitioner)
    assert isinstance(make_partitioner("hash", 10, 2), HashPartitioner)
    with pytest.raises(PartitionError):
        make_partitioner("zigzag", 10, 2)


@settings(max_examples=50, deadline=None)
@given(
    num_keys=st.integers(min_value=1, max_value=200),
    num_nodes=st.integers(min_value=1, max_value=16),
    kind=st.sampled_from(["range", "hash"]),
)
def test_property_every_key_has_exactly_one_node(num_keys, num_nodes, kind):
    part = make_partitioner(kind, num_keys, num_nodes)
    for key in range(num_keys):
        node = part.node_of(key)
        assert 0 <= node < num_nodes


@settings(max_examples=30, deadline=None)
@given(
    num_keys=st.integers(min_value=1, max_value=100),
    num_nodes=st.integers(min_value=1, max_value=8),
)
def test_property_keys_of_partitions_key_space(num_keys, num_nodes):
    part = RangePartitioner(num_keys, num_nodes)
    all_keys = []
    for node in range(num_nodes):
        all_keys.extend(part.keys_of(node))
    assert sorted(all_keys) == list(range(num_keys))


# --------------------------------------------------------------------- elastic
class TestElasticPartitioner:
    def test_initial_assignment_matches_base_kind(self):
        from repro.ps.partition import ElasticPartitioner

        elastic = ElasticPartitioner(20, 4)
        base = RangePartitioner(20, 4)
        for key in range(20):
            assert elastic.node_of(key) == base.node_of(key)
        assert elastic.epoch == 0
        assert elastic.active_nodes == [0, 1, 2, 3]

    def test_restricted_active_set(self):
        from repro.ps.partition import ElasticPartitioner

        elastic = ElasticPartitioner(12, 4, active_nodes=[0, 2])
        assert elastic.active_nodes == [0, 2]
        assert set(elastic.nodes_of(list(range(12))).tolist()) == {0, 2}
        assert elastic.keys_of(1) == []
        assert elastic.keys_of(3) == []

    def test_single_node_cluster(self):
        from repro.ps.partition import ElasticPartitioner

        elastic = ElasticPartitioner(7, 1)
        assert elastic.keys_of(0) == list(range(7))
        assert elastic.nodes_of_list(range(7)) == [0] * 7
        # A single-node active set inside a larger capacity works the same.
        wide = ElasticPartitioner(7, 3, active_nodes=[0])
        assert wide.keys_of(0) == list(range(7))

    def test_empty_key_ranges_when_actives_exceed_keys(self):
        from repro.ps.partition import ElasticPartitioner

        elastic = ElasticPartitioner(2, 5)
        sizes = [len(elastic.keys_of(node)) for node in range(5)]
        assert sum(sizes) == 2
        assert sizes.count(0) == 3  # three nodes hold empty (but valid) ranges
        for node in range(5):
            assert isinstance(elastic.keys_of(node), list)

    def test_join_moves_only_to_new_node(self):
        from repro.ps.partition import ElasticPartitioner

        elastic = ElasticPartitioner(12, 3, active_nodes=[0, 1])
        moves = elastic.rebalance([0, 1, 2])
        assert elastic.epoch == 1
        assert all(new == 2 for _key, _old, new in moves)
        sizes = [len(elastic.keys_of(node)) for node in range(3)]
        assert sum(sizes) == 12
        assert max(sizes) - min(sizes) <= 1

    def test_drain_moves_only_from_departing_node(self):
        from repro.ps.partition import ElasticPartitioner

        elastic = ElasticPartitioner(12, 3)
        moves = elastic.rebalance([0, 2])
        assert all(old == 1 for _key, old, _new in moves)
        assert elastic.keys_of(1) == []
        sizes = [len(elastic.keys_of(node)) for node in (0, 2)]
        assert max(sizes) - min(sizes) <= 1

    def test_previous_node_of_reports_stale_epoch(self):
        from repro.ps.partition import ElasticPartitioner

        elastic = ElasticPartitioner(10, 2)
        before = {key: elastic.node_of(key) for key in range(10)}
        moves = elastic.rebalance([0])
        assert moves  # node 1's keys moved to node 0
        for key in range(10):
            assert elastic.previous_node_of(key) == before[key]
            assert elastic.node_of(key) == 0

    def test_nodes_of_vs_nodes_of_list_parity_across_epoch_bump(self):
        from repro.ps.partition import ElasticPartitioner

        elastic = ElasticPartitioner(40, 4, active_nodes=[0, 1, 2])
        keys = list(range(40))
        small = keys[:5]  # below the pure-Python small-batch threshold
        for _epoch in range(3):
            assert elastic.nodes_of(keys).tolist() == elastic.nodes_of_list(keys)
            assert elastic.nodes_of(small).tolist() == elastic.nodes_of_list(small)
            assert [elastic.node_of(key) for key in keys] == elastic.nodes_of(keys).tolist()
            if elastic.epoch == 0:
                elastic.rebalance([0, 1, 2, 3])
            else:
                elastic.rebalance([0, 2, 3])

    def test_rebalance_without_change_is_a_noop_move_list(self):
        from repro.ps.partition import ElasticPartitioner

        elastic = ElasticPartitioner(10, 2)
        assert elastic.rebalance([0, 1]) == []

    def test_validation(self):
        from repro.ps.partition import ElasticPartitioner

        with pytest.raises(PartitionError):
            ElasticPartitioner(10, 2, kind="zigzag")
        with pytest.raises(PartitionError):
            ElasticPartitioner(10, 2, active_nodes=[])
        with pytest.raises(PartitionError):
            ElasticPartitioner(10, 2, active_nodes=[0, 0])
        with pytest.raises(PartitionError):
            ElasticPartitioner(10, 2, active_nodes=[0, 7])
        elastic = ElasticPartitioner(10, 2)
        with pytest.raises(PartitionError):
            elastic.rebalance([5])
        with pytest.raises(PartitionError):
            elastic.node_of(10)
        with pytest.raises(PartitionError):
            elastic.previous_node_of(-1)

    @settings(max_examples=30, deadline=None)
    @given(
        num_keys=st.integers(min_value=1, max_value=120),
        capacity=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    def test_property_rebalance_partitions_key_space(self, num_keys, capacity, data):
        from repro.ps.partition import ElasticPartitioner

        elastic = ElasticPartitioner(num_keys, capacity)
        for _round in range(3):
            active = data.draw(
                st.sets(
                    st.integers(min_value=0, max_value=capacity - 1),
                    min_size=1,
                    max_size=capacity,
                )
            )
            elastic.rebalance(sorted(active))
            gathered = []
            for node in range(capacity):
                gathered.extend(elastic.keys_of(node))
            assert sorted(gathered) == list(range(num_keys))
            sizes = [len(elastic.keys_of(node)) for node in sorted(active)]
            assert max(sizes) - min(sizes) <= 1
