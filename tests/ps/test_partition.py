"""Unit and property-based tests for key partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.ps.partition import (
    ExplicitPartitioner,
    HashPartitioner,
    RangePartitioner,
    make_partitioner,
    random_key_mapping,
)


class TestRangePartitioner:
    def test_balanced_ranges(self):
        part = RangePartitioner(num_keys=10, num_nodes=3)
        sizes = [len(part.keys_of(node)) for node in range(3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_contiguous_ranges(self):
        part = RangePartitioner(num_keys=100, num_nodes=4)
        for node in range(4):
            keys = part.keys_of(node)
            assert keys == list(range(keys[0], keys[-1] + 1))

    def test_node_of_matches_keys_of(self):
        part = RangePartitioner(num_keys=17, num_nodes=5)
        for node in range(5):
            for key in part.keys_of(node):
                assert part.node_of(key) == node

    def test_range_of(self):
        part = RangePartitioner(num_keys=8, num_nodes=2)
        assert part.range_of(0) == (0, 4)
        assert part.range_of(1) == (4, 8)

    def test_single_node_owns_everything(self):
        part = RangePartitioner(num_keys=5, num_nodes=1)
        assert all(part.node_of(k) == 0 for k in range(5))

    def test_more_nodes_than_keys(self):
        part = RangePartitioner(num_keys=2, num_nodes=4)
        covered = {part.node_of(k) for k in range(2)}
        assert len(covered) == 2

    def test_invalid_arguments(self):
        with pytest.raises(PartitionError):
            RangePartitioner(0, 1)
        with pytest.raises(PartitionError):
            RangePartitioner(1, 0)
        part = RangePartitioner(4, 2)
        with pytest.raises(PartitionError):
            part.node_of(7)
        with pytest.raises(PartitionError):
            part.keys_of(9)


class TestHashPartitioner:
    def test_deterministic(self):
        part = HashPartitioner(num_keys=100, num_nodes=4)
        assert [part.node_of(k) for k in range(100)] == [part.node_of(k) for k in range(100)]

    def test_reasonably_balanced(self):
        part = HashPartitioner(num_keys=10_000, num_nodes=4)
        counts = np.bincount([part.node_of(k) for k in range(10_000)], minlength=4)
        assert counts.min() > 1500

    def test_all_nodes_valid(self):
        part = HashPartitioner(num_keys=50, num_nodes=3)
        assert all(0 <= part.node_of(k) < 3 for k in range(50))


class TestExplicitPartitioner:
    def test_assignment_respected(self):
        part = ExplicitPartitioner([0, 1, 1, 0, 2], num_nodes=3)
        assert part.node_of(0) == 0
        assert part.node_of(4) == 2
        assert part.keys_of(1) == [1, 2]

    def test_invalid_assignment_rejected(self):
        with pytest.raises(PartitionError):
            ExplicitPartitioner([0, 3], num_nodes=2)
        with pytest.raises(PartitionError):
            ExplicitPartitioner([], num_nodes=2)


class TestRandomKeyMapping:
    def test_is_permutation(self):
        mapping = random_key_mapping(100, seed=1)
        assert sorted(mapping.tolist()) == list(range(100))

    def test_deterministic_per_seed(self):
        assert random_key_mapping(50, seed=3).tolist() == random_key_mapping(50, seed=3).tolist()
        assert random_key_mapping(50, seed=3).tolist() != random_key_mapping(50, seed=4).tolist()

    def test_invalid_size(self):
        with pytest.raises(PartitionError):
            random_key_mapping(0)


def test_make_partitioner():
    assert isinstance(make_partitioner("range", 10, 2), RangePartitioner)
    assert isinstance(make_partitioner("hash", 10, 2), HashPartitioner)
    with pytest.raises(PartitionError):
        make_partitioner("zigzag", 10, 2)


@settings(max_examples=50, deadline=None)
@given(
    num_keys=st.integers(min_value=1, max_value=200),
    num_nodes=st.integers(min_value=1, max_value=16),
    kind=st.sampled_from(["range", "hash"]),
)
def test_property_every_key_has_exactly_one_node(num_keys, num_nodes, kind):
    part = make_partitioner(kind, num_keys, num_nodes)
    for key in range(num_keys):
        node = part.node_of(key)
        assert 0 <= node < num_nodes


@settings(max_examples=30, deadline=None)
@given(
    num_keys=st.integers(min_value=1, max_value=100),
    num_nodes=st.integers(min_value=1, max_value=8),
)
def test_property_keys_of_partitions_key_space(num_keys, num_nodes):
    part = RangePartitioner(num_keys, num_nodes)
    all_keys = []
    for node in range(num_nodes):
        all_keys.extend(part.keys_of(node))
    assert sorted(all_keys) == list(range(num_keys))
