"""Tests for the hybrid (relocation + replication) parameter server."""

import numpy as np
import pytest

from repro.config import ClusterConfig, ParameterServerConfig
from repro.consistency import (
    History,
    UpdateTagger,
    check_eventual,
    check_eventual_after,
    check_read_your_writes,
    check_sequential,
)
from repro.ps import HybridPS
from repro.ps.policy import HybridManagementPolicy
from repro.simnet.events import Timeout


def make_ps(num_nodes=3, workers_per_node=1, **config_kwargs):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=workers_per_node, seed=0)
    defaults = dict(num_keys=12, value_length=4, hot_key_threshold=2)
    defaults.update(config_kwargs)
    return HybridPS(cluster, ParameterServerConfig(**defaults))


class TestPerKeyRouting:
    """Hot keys are replicated, cold keys are relocated — per key (tentpole)."""

    def test_policy_composition(self):
        ps = make_ps()
        policy = ps.management_policy
        assert isinstance(policy, HybridManagementPolicy)
        assert policy.relocation.name == "relocation"
        assert policy.replication.name == "replication"
        assert policy.supports_localize

    def test_hot_key_replicated_cold_key_relocated(self):
        ps = make_ps()

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            # Key 0 (owned by node 0): repeated reads cross the threshold.
            yield from client.pull([0])
            yield from client.pull([0])  # second remote read -> subscribe
            yield from client.pull([0])
            # Key 1: localize relocates it here.
            yield from client.localize([1])
            yield from client.pull([1])
            return None

        ps.run_workers(worker)
        assert ps.key_management(0) == "replication"
        assert 0 in ps.states[1].replicas
        assert ps.replica_holders(0) == (1,)
        assert ps.current_owner(0) == 0  # hot keys stay with their owner
        assert ps.key_management(1) == "relocation"
        assert ps.current_owner(1) == 1  # cold key moved to the accessor
        assert 1 not in ps.states[1].replicas
        metrics = ps.metrics()
        assert metrics.relocations == 1
        assert metrics.replica_creates == 1

    def test_single_remote_read_stays_cold(self):
        ps = make_ps()

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            yield from client.pull([0])  # one access: below the threshold
            return None

        ps.run_workers(worker)
        assert ps.key_management(0) == "relocation"
        assert 0 not in ps.states[1].replicas

    def test_localize_on_replicated_key_completes_without_relocation(self):
        """A replica already makes accesses local, so localize must not move
        the key away from its owner (and a node never becomes subscriber and
        owner of the same key)."""
        ps = make_ps()

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            yield from client.pull([0])
            yield from client.pull([0])  # subscribes
            yield Timeout(client.sim, 0.01)  # install arrives
            yield from client.localize([0])
            return None

        ps.run_workers(worker)
        assert ps.current_owner(0) == 0
        assert ps.metrics().relocations == 0
        assert ps.replica_holders(0) == (1,)

    def test_writes_converge_across_both_techniques(self):
        """Replicated and relocated keys both land every update exactly once."""
        ps = make_ps(num_nodes=4, workers_per_node=2)

        def worker(client, worker_id):
            # key 3 becomes hot everywhere; key 4 + worker stays private.
            yield from client.pull([3])
            yield from client.pull([3])
            private = 4 + worker_id
            yield from client.localize([private])
            for _ in range(3):
                yield from client.push([3], np.full((1, 4), float(2 ** worker_id)))
                yield from client.push([private], np.ones((1, 4)))
            return None

        ps.run_workers(worker)
        expected_hot = 3 * float(sum(2 ** w for w in range(8)))
        assert np.allclose(ps.parameter(3), expected_hot)
        for state in ps.states:
            if 3 in state.replicas:
                assert np.allclose(state.replicas[3], expected_hot)
        for worker_id in range(8):
            assert np.allclose(ps.parameter(4 + worker_id), 3.0)
        metrics = ps.metrics()
        # 5 of the 8 private keys start on a different node than their worker
        # (12 keys over 4 nodes: keys 4..11, workers on nodes k//3 != node).
        assert metrics.relocations == 5
        assert metrics.replica_creates >= 1


class TestRelocationReplicationInterplay:
    def test_subscribers_move_with_a_relocating_key(self):
        """When a subscribed key relocates, the new owner takes over the
        broadcast duty and replicas still converge."""
        ps = make_ps(num_nodes=4)

        def worker(client, worker_id):
            if worker_id == 1:
                # Subscribe to key 0 (owned by node 0).
                yield from client.pull([0])
                yield from client.pull([0])
                yield Timeout(client.sim, 0.01)
                yield from client.barrier()
                # Phase 2: the key now lives on node 2; replica writes must
                # still reach it (flushes chase via the home node).
                yield from client.push([0], np.ones((1, 4)))
                yield from client.barrier()
            elif worker_id == 2:
                yield Timeout(client.sim, 0.005)
                yield from client.barrier()
                # Relocate the (replicated) key away from its home.
                yield from client.localize([0])
                yield from client.push([0], np.full((1, 4), 10.0))
                yield from client.barrier()
            else:
                yield from client.barrier()
                yield from client.barrier()
            return None

        ps.run_workers(worker)
        assert ps.current_owner(0) == 2
        # Node 2 took over the subscriber set from node 0.
        assert ps.replica_holders(0) == (1,)
        assert np.allclose(ps.parameter(0), 11.0)
        assert np.allclose(ps.states[1].replicas[0], 11.0)
        assert ps.metrics().relocations == 1

    def test_subscription_chases_a_relocated_key(self):
        """A register for a key that moved is forwarded to the current owner."""
        ps = make_ps(num_nodes=4)

        def worker(client, worker_id):
            if worker_id == 2:
                yield from client.localize([0])  # move key 0: node 0 -> node 2
                yield from client.barrier()
            elif worker_id == 1:
                yield from client.barrier()
                yield from client.pull([0])
                yield from client.pull([0])  # subscribe; owner is node 2 now
                yield Timeout(client.sim, 0.01)
                assert 0 in client.state.replicas
            else:
                yield from client.barrier()
            return None

        ps.run_workers(worker)
        assert ps.replica_holders(0) == (1,)
        owner_state = ps.states[2]
        assert 0 in owner_state.subscribers
        assert ps.metrics().replica_creates == 1

    def test_queued_ops_during_install_are_processed(self):
        ps = make_ps()

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            yield from client.pull([0])  # access 1 (cold, remote)
            first = client.pull_async([0])  # access 2: subscribes
            push = client.push_async([0], np.ones((1, 4)), needs_ack=True)
            second = client.pull_async([0])
            yield from client.wait(first)
            yield from client.wait(push)
            yield from client.wait(second)
            return float(second.values()[0, 0])

        results = ps.run_workers(worker)
        assert results[1] == 1.0
        assert ps.metrics().queued_ops >= 2
        assert np.allclose(ps.parameter(0), 1.0)

    def test_mf_kge_w2v_run_end_to_end(self):
        from repro.experiments import (
            KGEScale,
            MFScale,
            W2VScale,
            run_kge_experiment,
            run_mf_experiment,
            run_w2v_experiment,
        )

        mf = run_mf_experiment(
            "hybrid", num_nodes=2, workers_per_node=1,
            scale=MFScale(num_rows=24, num_cols=16, num_entries=120, rank=4),
        )
        assert mf.epoch_duration > 0
        assert mf.metrics.relocations > 0
        kge = run_kge_experiment(
            "hybrid", num_nodes=2, workers_per_node=1,
            scale=KGEScale(num_entities=30, num_relations=4, num_triples=60, entity_dim=2),
        )
        assert kge.epoch_duration > 0
        assert kge.metrics.relocations > 0
        assert kge.metrics.replica_creates > 0
        w2v = run_w2v_experiment(
            "hybrid", num_nodes=2, workers_per_node=1,
            scale=W2VScale(vocabulary_size=40, num_sentences=10, mean_sentence_length=4,
                           dim=4, presample_size=10, presample_refresh=8),
        )
        assert w2v.epoch_duration > 0
        assert w2v.metrics.relocations > 0


class TestHybridConsistency:
    """Per-key guarantees follow the managing technique (§3.4, Table 1)."""

    SYNC_INTERVAL = 0.05

    def test_key_guarantees_classification(self):
        ps = make_ps()

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            yield from client.pull([0])
            yield from client.pull([0])  # key 0 -> replicated
            yield from client.localize([1])  # key 1 -> relocated
            return None

        ps.run_workers(worker)
        hot = ps.key_guarantees(0)
        cold = ps.key_guarantees(1)
        # Hot (replicated) keys lose per-key sequential consistency but keep
        # eventual consistency and the session guarantees.
        assert hot == {"eventual": True, "session": True, "causal": True,
                       "sequential": False}
        # Cold (relocated) keys retain the full relocation guarantees.
        assert cold == {"eventual": True, "session": True, "causal": True,
                        "sequential": True}

    def _run_hot_key_history(self):
        """Two nodes race tagged writes on a replicated key (cf. replica PS)."""
        ps = make_ps(
            num_nodes=3,
            num_keys=4,
            value_length=2,
            replica_sync_interval=self.SYNC_INTERVAL,
            hot_key_threshold=1,
        )
        tagger = UpdateTagger()
        tags = {worker: tagger.next_update() for worker in (1, 2)}
        quiesce_times = {}

        def worker_fn(client, worker_id):
            records = []
            if worker_id == 0:
                for _ in range(3):
                    yield from client.barrier()
                yield Timeout(client.sim, 4 * self.SYNC_INTERVAL)
                return records
            invoked = client.sim.now
            values = yield from client.pull([0])  # replicates key 0
            records.append(("pull", 0, invoked, client.sim.now, None, values[0, 0]))
            yield from client.barrier()
            push_id, value = tags[worker_id]
            update = np.zeros((1, 2))
            update[0, 0] = value
            invoked = client.sim.now
            yield from client.push([0], update)
            records.append(("push", 1, invoked, client.sim.now, push_id, None))
            yield from client.barrier()
            invoked = client.sim.now
            values = yield from client.pull([0])
            records.append(("pull", 2, invoked, client.sim.now, None, values[0, 0]))
            yield from client.barrier()
            yield Timeout(client.sim, 4 * self.SYNC_INTERVAL)
            invoked = client.sim.now
            quiesce_times[worker_id] = invoked
            values = yield from client.pull([0])
            records.append(("pull", 3, invoked, client.sim.now, None, values[0, 0]))
            return records

        history = History(key=0)
        for worker_id, records in enumerate(ps.run_workers(worker_fn)):
            for kind, sequence, invoked, completed, push_id, value in records:
                if kind == "push":
                    history.record_push(worker_id, sequence, invoked, completed, push_id)
                else:
                    history.record_pull(worker_id, sequence, invoked, completed, value)
        return ps, history, max(quiesce_times.values())

    def test_hot_key_loses_sequential_consistency(self):
        ps, history, _ = self._run_hot_key_history()
        assert ps.key_management(0) == "replication"
        assert not check_sequential(history).ok
        assert not check_eventual(history).ok

    def test_hot_key_keeps_eventual_and_session_guarantees(self):
        ps, history, quiesce_time = self._run_hot_key_history()
        assert check_eventual_after(history, quiesce_time).ok
        assert check_read_your_writes(history).ok

    def _run_cold_key_history(self):
        """Synchronous ops on a relocated key (relocation mid-history)."""
        ps = make_ps(num_nodes=3, num_keys=4, value_length=2, hot_key_threshold=10)
        tagger = UpdateTagger()
        tags = {worker: [tagger.next_update(), tagger.next_update()] for worker in (1, 2)}

        def worker_fn(client, worker_id):
            records = []
            if worker_id == 0:
                yield from client.barrier()
                return records
            sequence = 0
            if worker_id == 2:
                # Relocate the key mid-history.
                yield from client.localize([0])
            for push_id, value in tags[worker_id]:
                update = np.zeros((1, 2))
                update[0, 0] = value
                invoked = client.sim.now
                yield from client.push([0], update)
                records.append(("push", sequence, invoked, client.sim.now, push_id, None))
                sequence += 1
                invoked = client.sim.now
                values = yield from client.pull([0])
                records.append(("pull", sequence, invoked, client.sim.now, None, values[0, 0]))
                sequence += 1
            yield from client.barrier()
            return records

        history = History(key=0)
        for worker_id, records in enumerate(ps.run_workers(worker_fn)):
            for kind, sequence, invoked, completed, push_id, value in records:
                if kind == "push":
                    history.record_push(worker_id, sequence, invoked, completed, push_id)
                else:
                    history.record_pull(worker_id, sequence, invoked, completed, value)
        return ps, history

    def test_cold_key_retains_sequential_consistency(self):
        ps, history = self._run_cold_key_history()
        assert ps.key_management(0) == "relocation"
        assert ps.metrics().relocations >= 1
        result = check_sequential(history)
        assert result.ok, result.reason
        assert check_eventual(history).ok


class TestHybridMetrics:
    def test_both_technique_counters_populate(self):
        ps = make_ps(num_nodes=4, workers_per_node=2)

        def worker(client, worker_id):
            yield from client.pull([3])
            yield from client.pull([3])
            yield from client.localize([4 + worker_id])
            yield from client.push([3], np.ones((1, 4)))
            yield from client.push([4 + worker_id], np.ones((1, 4)))
            return None

        ps.run_workers(worker)
        metrics = ps.metrics()
        assert metrics.relocations > 0
        assert metrics.replica_creates > 0
        assert metrics.replica_sync_rounds > 0
        assert metrics.replica_sync_bytes > 0
        assert metrics.localize_calls > 0
        assert metrics.server_messages > 0

    def test_as_dict_reports_hybrid_counters(self):
        ps = make_ps()

        def worker(client, worker_id):
            yield from client.pull([0])
            return None

        ps.run_workers(worker)
        data = ps.metrics().as_dict()
        assert "relocations" in data
        assert "replica_creates" in data
        assert "server_messages" in data
