"""Parity tests for the batch storage API against sequences of single-key ops.

The batch data path must be *semantically identical* to applying the
single-key primitives per key in batch order: duplicates accumulate under
``add_many``, errors name the first offending key, and values round-trip
bit-for-bit.  Every test runs both below and above the ``SMALL_BATCH``
threshold so the pure-Python fast path and the vectorized path are both
covered.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError, UnknownKeyError
from repro.ps.base import ParameterServer
from repro.ps.partition import (
    ExplicitPartitioner,
    HashPartitioner,
    RangePartitioner,
)
from repro.ps.storage import (
    SMALL_BATCH,
    DenseStorage,
    LatchTable,
    SparseStorage,
    make_storage,
)

NUM_KEYS = 3 * SMALL_BATCH
VALUE_LENGTH = 4

#: Batch sizes straddling the small-batch fast path and the vectorized path.
BATCH_SIZES = (1, 2, SMALL_BATCH, SMALL_BATCH + 1, 2 * SMALL_BATCH)


@pytest.fixture(params=["dense", "sparse"])
def store_kind(request):
    return request.param


def _make(kind, initial=None):
    return make_storage(
        dense=kind == "dense",
        num_keys=NUM_KEYS,
        value_length=VALUE_LENGTH,
        initial_keys=initial,
    )


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestBatchParity:
    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_insert_many_then_get_many_roundtrip(self, store_kind, size):
        rng = _rng(size)
        keys = list(rng.permutation(NUM_KEYS)[:size])
        values = rng.normal(size=(size, VALUE_LENGTH))
        batch = _make(store_kind)
        single = _make(store_kind)
        batch.insert_many(keys, values)
        for index, key in enumerate(keys):
            single.insert(key, values[index])
        assert sorted(batch.keys()) == sorted(single.keys())
        np.testing.assert_array_equal(batch.get_many(keys), values)
        for index, key in enumerate(keys):
            np.testing.assert_array_equal(batch.get(key), single.get(key))

    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_add_many_matches_single_adds(self, store_kind, size):
        rng = _rng(size + 100)
        keys = list(rng.permutation(NUM_KEYS)[:size])
        updates = rng.normal(size=(size, VALUE_LENGTH))
        batch = _make(store_kind, initial=range(NUM_KEYS))
        single = _make(store_kind, initial=range(NUM_KEYS))
        batch.add_many(keys, updates)
        for index, key in enumerate(keys):
            single.add(key, updates[index])
        for key in range(NUM_KEYS):
            np.testing.assert_array_equal(batch.get(key), single.get(key))

    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_add_many_duplicates_accumulate(self, store_kind, size):
        rng = _rng(size + 200)
        base_keys = list(rng.permutation(NUM_KEYS)[:size])
        keys = base_keys + base_keys  # every key appears twice
        updates = rng.normal(size=(len(keys), VALUE_LENGTH))
        batch = _make(store_kind, initial=range(NUM_KEYS))
        single = _make(store_kind, initial=range(NUM_KEYS))
        batch.add_many(keys, updates)
        for index, key in enumerate(keys):
            single.add(key, updates[index])
        for key in base_keys:
            np.testing.assert_array_equal(batch.get(key), single.get(key))

    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_set_many_matches_single_sets(self, store_kind, size):
        rng = _rng(size + 300)
        keys = list(rng.permutation(NUM_KEYS)[:size])
        values = rng.normal(size=(size, VALUE_LENGTH))
        batch = _make(store_kind, initial=range(NUM_KEYS))
        single = _make(store_kind, initial=range(NUM_KEYS))
        batch.set_many(keys, values)
        for index, key in enumerate(keys):
            single.set(key, values[index])
        for key in range(NUM_KEYS):
            np.testing.assert_array_equal(batch.get(key), single.get(key))

    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_remove_many_matches_single_removes(self, store_kind, size):
        rng = _rng(size + 400)
        keys = list(rng.permutation(NUM_KEYS)[:size])
        batch = _make(store_kind, initial=range(NUM_KEYS))
        single = _make(store_kind, initial=range(NUM_KEYS))
        removed = batch.remove_many(keys)
        for index, key in enumerate(keys):
            np.testing.assert_array_equal(removed[index], single.remove(key))
        assert sorted(batch.keys()) == sorted(single.keys())

    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_contains_many_and_flags(self, store_kind, size):
        rng = _rng(size + 500)
        resident = set(rng.permutation(NUM_KEYS)[: NUM_KEYS // 2].tolist())
        store = _make(store_kind, initial=sorted(resident))
        keys = list(rng.permutation(NUM_KEYS)[:size])
        expected = [key in resident for key in keys]
        assert store.contains_many(keys).tolist() == expected
        assert store.contains_flags(keys) == expected

    def test_ndarray_key_batches_accepted(self, store_kind):
        store = _make(store_kind, initial=range(NUM_KEYS))
        keys = np.arange(NUM_KEYS, dtype=np.int64)
        values = store.get_many(keys)
        assert values.shape == (NUM_KEYS, VALUE_LENGTH)
        store.add_many(keys, np.ones((NUM_KEYS, VALUE_LENGTH)))
        np.testing.assert_array_equal(store.get_many(keys), values + 1.0)

    def test_get_many_returns_copies(self, store_kind):
        store = _make(store_kind, initial=range(NUM_KEYS))
        out = store.get_many([0, 1])
        out += 99.0
        np.testing.assert_array_equal(store.get(0), np.zeros(VALUE_LENGTH))


class TestBatchErrors:
    @pytest.mark.parametrize("size", (2, 2 * SMALL_BATCH))
    def test_non_resident_key_rejected(self, store_kind, size):
        resident = [k for k in range(size) if k != 1]
        store = _make(store_kind, initial=resident)
        keys = list(range(size))  # key 1 is missing
        with pytest.raises(StorageError, match="key 1 is not resident"):
            store.get_many(keys)
        with pytest.raises(StorageError, match="key 1 is not resident"):
            store.add_many(keys, np.zeros((size, VALUE_LENGTH)))
        with pytest.raises(StorageError, match="key 1 is not resident"):
            store.set_many(keys, np.zeros((size, VALUE_LENGTH)))
        with pytest.raises(StorageError, match="key 1 is not resident"):
            store.remove_many(keys)

    @pytest.mark.parametrize("size", (2, 2 * SMALL_BATCH))
    def test_add_many_is_atomic_on_error(self, store_kind, size):
        resident = [k for k in range(size) if k != size - 1]
        store = _make(store_kind, initial=resident)
        keys = list(range(size))  # the last key is missing
        with pytest.raises(StorageError):
            store.add_many(keys, np.ones((size, VALUE_LENGTH)))
        # No partial update may survive a failed batch.
        for key in resident:
            np.testing.assert_array_equal(store.get(key), np.zeros(VALUE_LENGTH))

    @pytest.mark.parametrize("size", (2, 2 * SMALL_BATCH))
    def test_mutating_batches_are_atomic_on_error(self, store_kind, size):
        """set/insert/remove batches with a bad key must leave no partial state."""
        resident = [k for k in range(size) if k != size - 1]
        store = _make(store_kind, initial=resident)
        keys = list(range(size))  # the last key is missing
        with pytest.raises(StorageError):
            store.set_many(keys, np.ones((size, VALUE_LENGTH)))
        with pytest.raises(StorageError):
            store.remove_many(keys)
        for key in resident:
            np.testing.assert_array_equal(store.get(key), np.zeros(VALUE_LENGTH))
        with pytest.raises(StorageError):
            # The last key of the insert batch is already resident.
            store.insert_many([size, size + 1, resident[0]], np.ones((3, VALUE_LENGTH)))
        assert not store.contains(size) and not store.contains(size + 1)

    @pytest.mark.parametrize("size", (3, 2 * SMALL_BATCH))
    def test_out_of_range_key_rejected(self, store_kind, size):
        store = _make(store_kind, initial=range(NUM_KEYS))
        keys = list(range(size - 1)) + [NUM_KEYS]
        with pytest.raises(StorageError, match=f"key {NUM_KEYS} out of range"):
            store.get_many(keys)
        with pytest.raises(StorageError, match="out of range"):
            store.contains_many([-1] + list(range(size - 1)))

    @pytest.mark.parametrize("size", (2, 2 * SMALL_BATCH))
    def test_shape_mismatch_rejected(self, store_kind, size):
        store = _make(store_kind, initial=range(NUM_KEYS))
        keys = list(range(size))
        with pytest.raises(StorageError, match="shape"):
            store.add_many(keys, np.zeros((size, VALUE_LENGTH + 1)))
        with pytest.raises(StorageError, match="shape"):
            store.set_many(keys, np.zeros((size + 1, VALUE_LENGTH)))

    @pytest.mark.parametrize("size", (2, 2 * SMALL_BATCH))
    def test_insert_many_duplicate_in_batch_rejected(self, store_kind, size):
        store = _make(store_kind)
        keys = list(range(size - 1)) + [0]  # key 0 appears twice
        with pytest.raises(StorageError, match="already resident"):
            store.insert_many(keys, np.zeros((size, VALUE_LENGTH)))

    @pytest.mark.parametrize("size", (2, 2 * SMALL_BATCH))
    def test_insert_many_existing_key_rejected(self, store_kind, size):
        store = _make(store_kind, initial=[1])
        keys = list(range(size))
        with pytest.raises(StorageError, match="key 1 is already resident"):
            store.insert_many(keys, np.zeros((size, VALUE_LENGTH)))


class TestSparseInPlaceAdd:
    def test_add_does_not_reallocate(self):
        store = SparseStorage(8, VALUE_LENGTH, initial_keys=[3])
        slab_before = store._matrix
        store.add(3, np.ones(VALUE_LENGTH))
        assert store._matrix is slab_before  # slab row updated in place

    def test_add_does_not_mutate_caller_arrays(self):
        store = SparseStorage(8, VALUE_LENGTH)
        inserted = np.ones(VALUE_LENGTH)
        store.insert(0, inserted)
        store.add(0, np.ones(VALUE_LENGTH))
        np.testing.assert_array_equal(inserted, np.ones(VALUE_LENGTH))
        set_value = np.full(VALUE_LENGTH, 5.0)
        store.set(0, set_value)
        store.add(0, np.ones(VALUE_LENGTH))
        np.testing.assert_array_equal(set_value, np.full(VALUE_LENGTH, 5.0))

    def test_get_still_returns_copy(self):
        store = SparseStorage(8, VALUE_LENGTH, initial_keys=[0])
        copy = store.get(0)
        copy[0] = 42.0
        np.testing.assert_array_equal(store.get(0), np.zeros(VALUE_LENGTH))


class TestLatchTableBatch:
    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_acquire_many_counts_every_key(self, size):
        table = LatchTable(num_latches=7)
        keys = list(range(size))
        indexes = table.acquire_many(keys)
        assert table.acquisitions == size
        assert list(indexes) == [table.latch_for(key) for key in keys]

    def test_acquire_many_accepts_ndarray(self):
        table = LatchTable(num_latches=5)
        indexes = table.acquire_many(np.array([1, 6, 11]))
        assert list(indexes) == [1, 1, 1]
        assert table.acquisitions == 3


class TestPartitionerBatch:
    @pytest.mark.parametrize(
        "partitioner",
        [
            RangePartitioner(101, 8),
            RangePartitioner(8, 3),
            RangePartitioner(3, 8),  # more nodes than keys: empty ranges
            HashPartitioner(101, 8),
            ExplicitPartitioner([2, 0, 1, 1, 2, 0, 0, 2], 3),
        ],
        ids=["range", "range-uneven", "range-empty-nodes", "hash", "explicit"],
    )
    def test_nodes_of_matches_node_of(self, partitioner):
        keys = list(range(partitioner.num_keys))
        expected = [partitioner.node_of(key) for key in keys]
        assert partitioner.nodes_of(keys).tolist() == expected
        assert partitioner.nodes_of_list(keys) == expected
        # Small batches take the pure-Python path.
        assert partitioner.nodes_of_list(keys[:2]) == expected[:2]

    def test_range_keys_of_consistent_with_node_of(self):
        partitioner = RangePartitioner(17, 4)
        for node in range(4):
            for key in partitioner.keys_of(node):
                assert partitioner.node_of(key) == node


class TestWorkerClientKeyCheck:
    def _client(self):
        from repro.config import ClusterConfig, ParameterServerConfig
        from repro.ps.classic import ClassicSharedMemoryPS

        ps = ClassicSharedMemoryPS(
            ClusterConfig(num_nodes=1, workers_per_node=1),
            ParameterServerConfig(num_keys=32, value_length=2),
        )
        return ps.client(0, 0)

    @pytest.mark.parametrize("size", (1, 3, 2 * SMALL_BATCH))
    def test_first_offending_key_reported(self, size):
        client = self._client()
        keys = list(range(size - 1)) + [99]
        with pytest.raises(UnknownKeyError) as excinfo:
            client._check_keys(keys + [-5])  # 99 comes first
        assert excinfo.value.args[0] == 99

    def test_empty_keys_rejected(self):
        client = self._client()
        with pytest.raises(Exception, match="at least one key"):
            client._check_keys([])

    def test_valid_keys_returned_as_int_tuple(self):
        client = self._client()
        checked = client._check_keys(np.arange(2 * SMALL_BATCH))
        assert checked == tuple(range(2 * SMALL_BATCH))
        assert all(isinstance(key, int) for key in checked)

    def test_generator_keys_accepted(self):
        client = self._client()
        assert client._check_keys(iter([3, 1])) == (3, 1)
        assert client._check_keys(range(4)) == (0, 1, 2, 3)


class TestPushSnapshotsUpdates:
    @pytest.mark.parametrize("message_grouping", [True, False])
    def test_push_async_is_immune_to_buffer_reuse(self, message_grouping):
        """Remote push payloads must snapshot the caller's update buffer.

        A worker may reuse its gradient buffer immediately after
        ``push_async``; the in-flight message must carry the values from send
        time (single-key chunks are the regression case: a row view would
        alias the buffer).
        """
        from repro.config import ClusterConfig, ParameterServerConfig
        from repro.ps.classic import ClassicSharedMemoryPS

        ps = ClassicSharedMemoryPS(
            ClusterConfig(num_nodes=2, workers_per_node=1),
            ParameterServerConfig(
                num_keys=8, value_length=2, message_grouping=message_grouping
            ),
        )
        remote_key = 7  # owned by node 1; pushed from node 0

        def worker(client, worker_id):
            if worker_id != 0:
                return None
            buffer = np.ones((1, 2))
            handle = client.push_async([remote_key], buffer, needs_ack=True)
            buffer[:] = 999.0  # reuse the buffer while the push is in flight
            yield from client.wait(handle)
            return None

        ps.run_workers(worker)
        np.testing.assert_array_equal(ps.parameter(remote_key), [1.0, 1.0])


class TestAllParametersBatched:
    def test_all_parameters_matches_per_key_after_relocation(self):
        from repro.config import ClusterConfig, ParameterServerConfig
        from repro.ps.lapse import LapsePS

        rng = _rng(9)
        initial = rng.normal(size=(24, 3))
        ps = LapsePS(
            ClusterConfig(num_nodes=3, workers_per_node=1),
            ParameterServerConfig(num_keys=24, value_length=3),
            initial_values=initial,
        )

        def worker(client, worker_id):
            keys = [(worker_id * 11 + offset) % 24 for offset in range(6)]
            yield from client.localize(keys)
            pulled = yield from client.pull(keys)
            yield from client.push(keys, pulled * 0 + worker_id)
            return None

        ps.run_workers(worker)
        packed = ps.all_parameters()
        for key in range(24):
            np.testing.assert_array_equal(packed[key], ps.parameter(key))


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "add", "set", "remove"]),
            st.lists(
                st.integers(min_value=0, max_value=NUM_KEYS - 1),
                min_size=1,
                max_size=2 * SMALL_BATCH,
            ),
            st.integers(min_value=0, max_value=2**31 - 1),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_property_batch_ops_match_single_ops(ops):
    """Random batch-op programs agree with their per-key expansion on both stores."""
    for kind in ("dense", "sparse"):
        batch = _make(kind)
        single = _make(kind)
        for op, keys, seed in ops:
            values = np.random.default_rng(seed).normal(size=(len(keys), VALUE_LENGTH))
            if op == "add":
                keys = [key for key in keys if single.contains(key)]
                values = values[: len(keys)]
                if not keys:
                    continue
                batch.add_many(keys, values)
                for index, key in enumerate(keys):
                    single.add(key, values[index])
            elif op == "set":
                # Deduplicate: set_many's last-wins contract equals per-key
                # order only when we apply rows in the same order, which the
                # per-key expansion does; keep duplicates to exercise it.
                keys = [key for key in keys if single.contains(key)]
                values = values[: len(keys)]
                if not keys:
                    continue
                batch.set_many(keys, values)
                for index, key in enumerate(keys):
                    single.set(key, values[index])
            elif op == "insert":
                seen = set()
                fresh = []
                for key in keys:
                    if not single.contains(key) and key not in seen:
                        fresh.append(key)
                        seen.add(key)
                values = values[: len(fresh)]
                if not fresh:
                    continue
                batch.insert_many(fresh, values)
                for index, key in enumerate(fresh):
                    single.insert(key, values[index])
            else:  # remove
                seen = set()
                present = []
                for key in keys:
                    if single.contains(key) and key not in seen:
                        present.append(key)
                        seen.add(key)
                if not present:
                    continue
                removed = batch.remove_many(present)
                for index, key in enumerate(present):
                    np.testing.assert_array_equal(removed[index], single.remove(key))
        assert sorted(batch.keys()) == sorted(single.keys())
        for key in single.keys():
            np.testing.assert_array_equal(batch.get(key), single.get(key))
