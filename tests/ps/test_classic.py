"""Integration tests for the classic parameter server (PS-Lite style)."""

import numpy as np
import pytest

from repro.config import ClusterConfig, CostModel, ParameterServerConfig
from repro.errors import UnknownKeyError, UnsupportedOperationError
from repro.ps import ClassicIPCPS, ClassicPS, ClassicSharedMemoryPS


def build_classic(num_nodes=2, workers_per_node=1, shared_memory=True, num_keys=8, value_length=2):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=workers_per_node, seed=1)
    ps_config = ParameterServerConfig(
        num_keys=num_keys,
        value_length=value_length,
        shared_memory_local_access=shared_memory,
    )
    initial = np.arange(num_keys * value_length, dtype=float).reshape(num_keys, value_length)
    return ClassicPS(cluster, ps_config, initial_values=initial), initial


class TestClassicPullPush:
    def test_pull_local_and_remote_values(self):
        ps, initial = build_classic()

        def worker(client, worker_id):
            values = yield from client.pull([0, 7])
            return values

        results = ps.run_workers(worker)
        for values in results:
            np.testing.assert_allclose(values[0], initial[0])
            np.testing.assert_allclose(values[1], initial[7])

    def test_push_is_cumulative_across_workers(self):
        ps, initial = build_classic(num_nodes=2, workers_per_node=2)

        def worker(client, worker_id):
            yield from client.push([3], np.ones((1, 2)))
            return None

        ps.run_workers(worker)
        np.testing.assert_allclose(ps.parameter(3), initial[3] + 4.0)

    def test_pull_sees_prior_push_of_same_worker(self):
        ps, initial = build_classic()

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.push([5], np.full((1, 2), 10.0))
                values = yield from client.pull([5])
                return values[0]
            return None

        results = ps.run_workers(worker)
        np.testing.assert_allclose(results[0], initial[5] + 10.0)

    def test_async_pull_and_wait(self):
        ps, initial = build_classic()

        def worker(client, worker_id):
            handle = client.pull_async([1, 6])
            yield from client.wait(handle)
            return handle.values()

        results = ps.run_workers(worker)
        np.testing.assert_allclose(results[0][0], initial[1])
        np.testing.assert_allclose(results[0][1], initial[6])

    def test_async_push_without_ack_applies_eventually(self):
        ps, initial = build_classic()

        def worker(client, worker_id):
            client.push_async([7], np.ones((1, 2)), needs_ack=False)
            yield from client.barrier()
            return None

        ps.run_workers(worker)
        np.testing.assert_allclose(ps.parameter(7), initial[7] + 2.0)

    def test_localize_unsupported(self):
        ps, _ = build_classic()
        client = ps.client(0, 0)
        with pytest.raises(UnsupportedOperationError):
            client.localize_async([0])

    def test_unknown_key_rejected(self):
        ps, _ = build_classic()
        client = ps.client(0, 0)
        with pytest.raises(UnknownKeyError):
            client.pull_async([99])

    def test_empty_key_list_rejected(self):
        from repro.errors import ParameterServerError

        ps, _ = build_classic()
        client = ps.client(0, 0)
        with pytest.raises(ParameterServerError):
            client.pull_async([])


class TestClassicAccessModes:
    def test_single_node_sharedmem_faster_than_ipc(self):
        """Fast local access dominates on one node (paper §4.2: 71-91x)."""

        def run(ps_cls):
            cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
            ps = ps_cls(cluster, ParameterServerConfig(num_keys=16, value_length=2))

            def worker(client, worker_id):
                for key in range(16):
                    yield from client.pull([key])
                return None

            ps.run_workers(worker)
            return ps.simulated_time

        sharedmem_time = run(ClassicSharedMemoryPS)
        ipc_time = run(ClassicIPCPS)
        assert ipc_time / sharedmem_time > 20

    def test_remote_access_slower_than_local(self):
        ps, _ = build_classic(num_nodes=2)
        cluster_latency = ps.cluster.cost_model.network_latency

        def worker(client, worker_id):
            if worker_id == 0:
                start = client.sim.now
                yield from client.pull([0])  # local (node 0 owns low keys)
                local_time = client.sim.now - start
                start = client.sim.now
                yield from client.pull([7])  # remote
                remote_time = client.sim.now - start
                return local_time, remote_time
            return None

        results = ps.run_workers(worker)
        local_time, remote_time = results[0]
        assert remote_time > local_time
        assert remote_time >= 2 * cluster_latency

    def test_metrics_distinguish_local_and_remote(self):
        ps, _ = build_classic(num_nodes=2)

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.pull([0])
                yield from client.pull([7])
                yield from client.push([7], np.zeros((1, 2)))
            return None
            yield

        ps.run_workers(worker)
        metrics = ps.metrics()
        assert metrics.key_reads_local == 1
        assert metrics.key_reads_remote == 1
        assert metrics.key_writes_remote == 1
        assert metrics.pulls_local == 1
        assert metrics.pulls_remote == 1

    def test_message_grouping_reduces_messages(self):
        def run(grouping):
            cluster = ClusterConfig(num_nodes=2, workers_per_node=1)
            config = ParameterServerConfig(
                num_keys=8, value_length=2, message_grouping=grouping
            )
            ps = ClassicPS(cluster, config)

            def worker(client, worker_id):
                if worker_id == 0:
                    yield from client.pull([4, 5, 6, 7])
                return None
                yield

            ps.run_workers(worker)
            return ps.network.stats.remote_messages

        assert run(True) < run(False)


class TestClassicModel:
    def test_all_parameters_shape(self):
        ps, initial = build_classic(num_keys=8, value_length=2)
        np.testing.assert_allclose(ps.all_parameters(), initial)

    def test_current_owner_is_static(self):
        ps, _ = build_classic(num_nodes=2, num_keys=8)
        owners_before = [ps.current_owner(k) for k in range(8)]

        def worker(client, worker_id):
            yield from client.pull([0, 7])
            return None

        ps.run_workers(worker)
        assert [ps.current_owner(k) for k in range(8)] == owners_before

    def test_barrier_synchronizes_workers(self):
        ps, _ = build_classic(num_nodes=2, workers_per_node=2)
        arrival_times = {}

        def worker(client, worker_id):
            yield float(worker_id) * 1e-3  # stagger arrivals
            yield from client.barrier()
            arrival_times[worker_id] = client.sim.now
            return None

        ps.run_workers(worker)
        times = list(arrival_times.values())
        assert max(times) - min(times) < 1e-3
        assert min(times) >= 3e-3
