"""Integration tests for Lapse: dynamic parameter allocation."""

import numpy as np
import pytest

from repro.config import ClusterConfig, CostModel, ParameterServerConfig
from repro.ps import LapsePS


def build_lapse(
    num_nodes=3,
    workers_per_node=1,
    num_keys=12,
    value_length=2,
    location_caches=False,
    dense=True,
    seed=1,
):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=workers_per_node, seed=seed)
    ps_config = ParameterServerConfig(
        num_keys=num_keys,
        value_length=value_length,
        dense_storage=dense,
        location_caches=location_caches,
    )
    initial = np.arange(num_keys * value_length, dtype=float).reshape(num_keys, value_length)
    return LapsePS(cluster, ps_config, initial_values=initial), initial


class TestLapseBasicAccess:
    def test_pull_remote_key_returns_correct_value(self):
        ps, initial = build_lapse()

        def worker(client, worker_id):
            if worker_id == 0:
                values = yield from client.pull([11])  # homed on node 2
                return values[0]
            return None

        results = ps.run_workers(worker)
        np.testing.assert_allclose(results[0], initial[11])

    def test_push_remote_key_applies(self):
        ps, initial = build_lapse()

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.push([11], np.ones((1, 2)))
            return None
            yield

        ps.run_workers(worker)
        np.testing.assert_allclose(ps.parameter(11), initial[11] + 1.0)

    def test_pull_if_local(self):
        ps, initial = build_lapse()
        client = ps.client(0, 0)
        # Key 0 is homed (and initially owned) at node 0, key 11 at node 2.
        assert client.pull_if_local(11) is None
        np.testing.assert_allclose(client.pull_if_local(0), initial[0])


class TestLocalize:
    def test_localize_moves_ownership(self):
        ps, initial = build_lapse()
        assert ps.current_owner(8) == 2

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.localize([8])
            return None
            yield

        ps.run_workers(worker)
        assert ps.current_owner(8) == 0
        np.testing.assert_allclose(ps.parameter(8), initial[8])

    def test_localize_preserves_value_and_subsequent_access_is_local(self):
        ps, initial = build_lapse()

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.localize([8])
                remote_before = ps.network.stats.remote_messages
                values = yield from client.pull([8])
                yield from client.push([8], np.ones((1, 2)))
                remote_after = ps.network.stats.remote_messages
                return values[0], remote_before, remote_after
            return None

        results = ps.run_workers(worker)
        values, remote_before, remote_after = results[0]
        np.testing.assert_allclose(values, initial[8])
        assert remote_after == remote_before  # no network traffic after localize
        np.testing.assert_allclose(ps.parameter(8), initial[8] + 1.0)

    def test_localize_already_local_key_is_cheap(self):
        ps, _ = build_lapse()

        def worker(client, worker_id):
            if worker_id == 0:
                before = ps.network.stats.remote_messages
                yield from client.localize([0])  # homed and owned at node 0
                after = ps.network.stats.remote_messages
                return before, after
            return None

        results = ps.run_workers(worker)
        before, after = results[0]
        assert before == after

    def test_relocation_uses_three_messages(self):
        """Requester, home, and owner distinct: exactly 3 messages (Figure 4)."""
        ps, _ = build_lapse(num_nodes=3)
        # Key 4 is homed at node 1 (range partition of 12 keys over 3 nodes).
        assert ps.partitioner.node_of(4) == 1

        def worker(client, worker_id):
            if worker_id == 2:
                # First move key 4 to node 2 so that home (1) and owner (2) differ
                # from a later requester (0).
                yield from client.localize([4])
            yield from client.barrier()
            if worker_id == 0:
                before = ps.network.stats.remote_messages
                yield from client.localize([4])
                after = ps.network.stats.remote_messages
                return after - before
            return None

        results = ps.run_workers(worker)
        assert results[0] == 3

    def test_localize_multiple_keys_grouped(self):
        ps, initial = build_lapse()

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.localize([8, 9, 10, 11])
                values = yield from client.pull([8, 9, 10, 11])
                return values
            return None

        results = ps.run_workers(worker)
        np.testing.assert_allclose(results[0], initial[8:12])
        assert all(ps.current_owner(k) == 0 for k in (8, 9, 10, 11))

    def test_relocation_metrics_recorded(self):
        ps, _ = build_lapse()

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.localize([8, 9])
            return None
            yield

        ps.run_workers(worker)
        metrics = ps.metrics()
        assert metrics.relocations == 2
        assert metrics.localize_calls == 1
        assert metrics.localized_keys == 2
        assert metrics.relocation_time.count == 2
        assert metrics.relocation_time.mean > 0
        assert metrics.blocking_time.mean <= metrics.relocation_time.mean

    def test_async_localize(self):
        ps, initial = build_lapse()

        def worker(client, worker_id):
            if worker_id == 0:
                handle = client.localize_async([10])
                yield from client.wait(handle)
                values = yield from client.pull([10])
                return values[0]
            return None

        results = ps.run_workers(worker)
        np.testing.assert_allclose(results[0], initial[10])


class TestAccessDuringRelocation:
    def test_access_by_requester_during_relocation_is_queued_and_correct(self):
        ps, initial = build_lapse()

        def worker(client, worker_id):
            if worker_id == 0:
                handle = client.localize_async([8])
                # Immediately access the relocating key (async pull + push).
                pull_handle = client.pull_async([8])
                client.push_async([8], np.full((1, 2), 5.0))
                yield from client.wait(handle)
                yield from client.wait(pull_handle)
                return pull_handle.values()[0]
            return None

        results = ps.run_workers(worker)
        np.testing.assert_allclose(results[0], initial[8])
        np.testing.assert_allclose(ps.parameter(8), initial[8] + 5.0)
        assert ps.metrics().queued_ops >= 1

    def test_push_from_third_node_during_relocation_not_lost(self):
        ps, initial = build_lapse(num_nodes=3)

        def worker(client, worker_id):
            # Key 0 is homed and owned at node 0; node 2 localizes it while
            # node 1 pushes to it.
            if worker_id == 2:
                yield from client.localize([0])
            elif worker_id == 1:
                yield from client.push([0], np.ones((1, 2)))
            return None
            yield

        ps.run_workers(worker)
        np.testing.assert_allclose(ps.parameter(0), initial[0] + 1.0)
        assert ps.current_owner(0) == 2

    def test_localization_conflict_transfers_to_each_requester(self):
        """Two nodes localize the same key: each gets it once (§3.2)."""
        ps, initial = build_lapse(num_nodes=3)

        def worker(client, worker_id):
            if worker_id in (0, 1):
                yield from client.localize([8])
                yield from client.push([8], np.ones((1, 2)) * (worker_id + 1))
            return None
            yield

        ps.run_workers(worker)
        metrics = ps.metrics()
        assert metrics.relocations == 2
        # Both pushes must be applied exactly once regardless of the conflict.
        np.testing.assert_allclose(ps.parameter(8), initial[8] + 3.0)
        assert ps.current_owner(8) in (0, 1)

    def test_repeated_localize_ping_pong(self):
        ps, initial = build_lapse(num_nodes=2, num_keys=8)

        def worker(client, worker_id):
            for _ in range(5):
                yield from client.localize([3])
                yield from client.push([3], np.ones((1, 2)))
                yield from client.barrier()
            return None

        ps.run_workers(worker)
        np.testing.assert_allclose(ps.parameter(3), initial[3] + 10.0)


class TestLocationCaches:
    def test_cache_reduces_messages_for_repeated_remote_access(self):
        def run(caches):
            ps, _ = build_lapse(num_nodes=3, location_caches=caches)

            def worker(client, worker_id):
                # Key 11 is homed at node 2; node 1 localizes it first so that
                # the home node and the owner differ.  Node 0 then accesses it
                # repeatedly without localizing, so every access is remote and
                # must be routed (3 messages via the home node, 2 with a
                # correct location cache).
                if worker_id == 1:
                    yield from client.localize([11])
                yield from client.barrier()
                if worker_id == 0:
                    for _ in range(5):
                        yield from client.pull([11])
                return None

            ps.run_workers(worker)
            return ps.network.stats.remote_messages

        # With caches the 2nd..5th pulls go directly to the owner (2 messages)
        # instead of through the home node (3 messages).
        assert run(True) < run(False)

    def test_stale_cache_double_forward_still_correct(self):
        ps, initial = build_lapse(num_nodes=3, location_caches=True)

        def worker(client, worker_id):
            # Node 0 pulls key 8 (owned by node 2) to populate its cache;
            # then node 1 localizes key 8; node 0's cache is now stale.
            if worker_id == 0:
                yield from client.pull([8])
                yield from client.barrier()
                values = yield from client.pull([8])
                return values[0]
            if worker_id == 1:
                yield from client.pull([8])
                yield from client.barrier()
                yield from client.localize([8])
                yield from client.push([8], np.ones((1, 2)))
                return None
            yield from client.barrier()
            return None

        results = ps.run_workers(worker)
        # Node 0's second pull happened concurrently with the relocation and
        # push; whatever interleaving occurred, the value must be either the
        # original or the updated one, never garbage.
        value = results[0]
        assert np.allclose(value, initial[8]) or np.allclose(value, initial[8] + 1.0)
        assert ps.metrics().cache_hits > 0

    def test_cache_hits_counted(self):
        ps, _ = build_lapse(num_nodes=3, location_caches=True)

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.pull([11])
                yield from client.pull([11])
                yield from client.pull([11])
            return None
            yield

        ps.run_workers(worker)
        metrics = ps.metrics()
        assert metrics.cache_hits == 2
        assert metrics.cache_misses >= 1


class TestLapseSparseStorage:
    def test_sparse_storage_end_to_end(self):
        ps, initial = build_lapse(dense=False)

        def worker(client, worker_id):
            yield from client.localize([worker_id])
            yield from client.push([worker_id], np.ones((1, 2)))
            values = yield from client.pull([worker_id])
            return values[0]

        results = ps.run_workers(worker)
        for worker_id, value in enumerate(results):
            np.testing.assert_allclose(value, initial[worker_id] + 1.0)


class TestLapseWithManyWorkers:
    def test_concurrent_workers_on_same_node_share_localized_keys(self):
        ps, initial = build_lapse(num_nodes=2, workers_per_node=3, num_keys=6)

        def worker(client, worker_id):
            if client.node_id == 0:
                yield from client.localize([5])
                yield from client.push([5], np.ones((1, 2)))
            return None
            yield

        ps.run_workers(worker)
        np.testing.assert_allclose(ps.parameter(5), initial[5] + 3.0)
        assert ps.current_owner(5) == 0

    def test_total_update_mass_conserved_under_random_workload(self):
        """Property-style stress test: random pulls/pushes/localizes never lose updates."""
        ps, initial = build_lapse(num_nodes=3, workers_per_node=2, num_keys=10, seed=3)
        pushes_per_worker = 15

        def worker(client, worker_id):
            rng = np.random.default_rng(worker_id)
            for _ in range(pushes_per_worker):
                key = int(rng.integers(0, 10))
                action = rng.random()
                if action < 0.3:
                    yield from client.localize([key])
                elif action < 0.6:
                    yield from client.pull([key])
                yield from client.push([key], np.ones((1, 2)))
            return None

        ps.run_workers(worker)
        total = ps.all_parameters().sum()
        expected = initial.sum() + 6 * pushes_per_worker * 2  # 6 workers, 2 entries/key
        assert total == pytest.approx(expected)
