"""Tests for the replication-based parameter server."""

import numpy as np
import pytest

from repro.config import ClusterConfig, ParameterServerConfig
from repro.consistency import (
    History,
    UpdateTagger,
    check_eventual,
    check_eventual_after,
    check_read_your_writes,
    check_sequential,
)
from repro.errors import UnsupportedOperationError
from repro.ps import ReplicaPS
from repro.simnet.events import Timeout


def make_ps(num_nodes=3, workers_per_node=1, **config_kwargs):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=workers_per_node, seed=0)
    defaults = dict(num_keys=12, value_length=4)
    defaults.update(config_kwargs)
    return ReplicaPS(cluster, ParameterServerConfig(**defaults))


class TestReplication:
    def test_first_access_installs_replica(self):
        ps = make_ps()

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            values = yield from client.pull([0])  # key 0 is owned by node 0
            return float(values[0, 0])

        ps.run_workers(worker)
        assert 0 in ps.states[1].replicas
        assert ps.replica_holders(0) == (1,)
        assert ps.metrics().replica_creates == 1

    def test_replica_reads_are_local(self):
        ps = make_ps()

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            yield from client.pull([0])
            before = client.state.metrics.key_reads_remote
            yield from client.pull([0])
            yield from client.pull([0])
            assert client.state.metrics.key_reads_remote == before
            return None

        ps.run_workers(worker)
        assert ps.metrics().replica_reads >= 2

    def test_writes_apply_locally_and_converge(self):
        ps = make_ps()

        def worker(client, worker_id):
            yield from client.pull([0])
            for _ in range(4):
                yield from client.push([0], np.full((1, 4), 1.0))
            return None

        ps.run_workers(worker)
        # 3 workers x 4 pushes; all sync rounds have drained once run() returns.
        assert np.allclose(ps.parameter(0), 12.0)
        for node in (1, 2):
            assert np.allclose(ps.states[node].replicas[0], 12.0)

    def test_value_lands_exactly_once(self):
        """Conflict-free aggregation: no lost updates and no double counting."""
        ps = make_ps(num_nodes=4, workers_per_node=2)

        def worker(client, worker_id):
            yield from client.pull([3])
            yield from client.push([3], np.full((1, 4), float(2 ** worker_id)))
            return None

        ps.run_workers(worker)
        expected = float(sum(2 ** w for w in range(8)))
        assert np.allclose(ps.parameter(3), expected)
        for state in ps.states:
            if 3 in state.replicas:
                assert np.allclose(state.replicas[3], expected)

    def test_cold_keys_are_not_replicated(self):
        ps = make_ps(hot_key_policy="access_count", hot_key_threshold=3)

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            yield from client.pull([0])
            yield from client.pull([0])
            assert 0 not in client.state.replicas
            yield from client.pull([0])  # third access crosses the threshold
            yield from client.pull([0])
            return None

        ps.run_workers(worker)
        assert 0 in ps.states[1].replicas
        assert ps.metrics().replica_creates == 1

    def test_explicit_hot_set(self):
        ps = make_ps(hot_key_policy="explicit", hot_keys=(0,))

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            yield from client.pull([0, 1])
            yield from client.pull([0, 1])
            return None

        ps.run_workers(worker)
        assert 0 in ps.states[1].replicas
        assert 1 not in ps.states[1].replicas

    def test_none_policy_degenerates_to_classic(self):
        ps = make_ps(hot_key_policy="none")

        def worker(client, worker_id):
            yield from client.pull([0])
            yield from client.push([0], np.ones((1, 4)))
            return None

        ps.run_workers(worker)
        assert ps.metrics().replica_creates == 0
        assert np.allclose(ps.parameter(0), 3.0)

    def test_ops_queued_during_install_are_processed(self):
        ps = make_ps()

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            first = client.pull_async([0])
            # Issued while the install is still in flight: must be queued and
            # answered from the replica once it arrives.
            push = client.push_async([0], np.ones((1, 4)), needs_ack=True)
            second = client.pull_async([0])
            yield from client.wait(first)
            yield from client.wait(push)
            yield from client.wait(second)
            return float(second.values()[0, 0])

        results = ps.run_workers(worker)
        assert results[1] == 1.0
        assert ps.metrics().queued_ops >= 2
        assert np.allclose(ps.parameter(0), 1.0)

    def test_localize_unsupported(self):
        ps = make_ps()

        def worker(client, worker_id):
            with pytest.raises(UnsupportedOperationError):
                client.localize_async([0])
            return None
            yield  # pragma: no cover

        ps.run_workers(worker)

    def test_pull_if_local_uses_replica_and_prefetches(self):
        ps = make_ps()
        observed = {}

        def worker(client, worker_id):
            if worker_id != 1:
                return None
            assert client.pull_if_local(0) is None  # miss starts an install
            yield Timeout(client.sim, 0.01)
            observed["after"] = client.pull_if_local(0)
            return None

        ps.run_workers(worker)
        assert observed["after"] is not None

    def test_clock_triggered_synchronization(self):
        ps = make_ps(num_nodes=2, replica_sync_trigger="clock")

        def worker(client, worker_id):
            yield from client.pull([0])
            yield from client.push([0], np.ones((1, 4)))
            yield from client.clock()
            yield from client.barrier()
            return None

        ps.run_workers(worker)
        assert np.allclose(ps.parameter(0), 2.0)
        assert ps.metrics().replica_sync_rounds >= 1

    def test_clock_mode_replicas_converge_after_owner_stops_clocking(self):
        """Flushes arriving after the owner's last clock still broadcast.

        Regression test: the owner has no timer in clock mode, so deltas
        buffered by late-arriving flushes must be broadcast on receipt, not
        wait for an owner clock that never comes.
        """
        ps = make_ps(num_nodes=3, replica_sync_trigger="clock")

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.barrier()
                return None
            yield from client.pull([0])  # key 0 is owned by node 0
            yield from client.push([0], np.ones((1, 4)))
            yield from client.clock()
            yield from client.barrier()
            return None

        ps.run_workers(worker)
        assert np.allclose(ps.parameter(0), 2.0)
        for node in (1, 2):
            assert np.allclose(ps.states[node].replicas[0], 2.0)
        assert not any(state.sync_dirty for state in ps.states)

    def test_sync_traffic_metrics_recorded(self):
        ps = make_ps()

        def worker(client, worker_id):
            yield from client.pull([0])
            yield from client.push([0], np.ones((1, 4)))
            return None

        ps.run_workers(worker)
        metrics = ps.metrics()
        assert metrics.replica_flush_messages >= 1
        assert metrics.replica_broadcast_messages >= 1
        assert metrics.replica_sync_keys >= 2
        assert metrics.replica_sync_bytes > 0
        assert metrics.replica_refreshes >= 1


class TestReplicaConsistency:
    """Replication trades per-key sequential consistency for eventual (§3.4)."""

    # A long interval so that no synchronization happens during the racing
    # phase; the workers then explicitly wait it out before the final reads.
    SYNC_INTERVAL = 0.05

    def _run_history(self):
        ps = make_ps(
            num_nodes=3,
            workers_per_node=1,
            num_keys=4,
            value_length=2,
            replica_sync_interval=self.SYNC_INTERVAL,
        )
        tagger = UpdateTagger()
        tags = {worker: tagger.next_update() for worker in (1, 2)}
        quiesce_times = {}

        def worker_fn(client, worker_id):
            records = []
            if worker_id == 0:
                # The owner's worker only participates in the barriers.
                for _ in range(3):
                    yield from client.barrier()
                yield Timeout(client.sim, 4 * self.SYNC_INTERVAL)
                return records
            # Phase 1: replicate key 0 (homed on node 0).
            invoked = client.sim.now
            values = yield from client.pull([0])
            records.append(("pull", 0, invoked, client.sim.now, None, values[0, 0]))
            yield from client.barrier()
            # Phase 2: racing tagged writes, applied to the local replicas.
            push_id, value = tags[worker_id]
            update = np.zeros((1, 2))
            update[0, 0] = value
            invoked = client.sim.now
            yield from client.push([0], update)
            records.append(("push", 1, invoked, client.sim.now, push_id, None))
            yield from client.barrier()
            # Phase 3: both pushes completed (the barrier ordered them before
            # this), but no synchronization round ran yet: each node sees only
            # its own write.
            invoked = client.sim.now
            values = yield from client.pull([0])
            records.append(("pull", 2, invoked, client.sim.now, None, values[0, 0]))
            yield from client.barrier()
            # Phase 4: wait out the synchronization loop, then read again.
            yield Timeout(client.sim, 4 * self.SYNC_INTERVAL)
            invoked = client.sim.now
            quiesce_times[worker_id] = invoked
            values = yield from client.pull([0])
            records.append(("pull", 3, invoked, client.sim.now, None, values[0, 0]))
            return records

        history = History(key=0)
        for worker_id, records in enumerate(ps.run_workers(worker_fn)):
            for kind, sequence, invoked, completed, push_id, value in records:
                if kind == "push":
                    history.record_push(worker_id, sequence, invoked, completed, push_id)
                else:
                    history.record_pull(worker_id, sequence, invoked, completed, value)
        return ps, history, max(quiesce_times.values())

    def test_sequential_consistency_is_violated(self):
        _, history, _ = self._run_history()
        result = check_sequential(history)
        assert not result.ok, "replicated reads should break per-key sequential consistency"

    def test_plain_eventual_check_fails_before_synchronization(self):
        _, history, _ = self._run_history()
        result = check_eventual(history)
        assert not result.ok, (
            "reads between synchronization rounds miss other nodes' writes"
        )

    def test_eventual_after_quiescence_holds(self):
        _, history, quiesce_time = self._run_history()
        result = check_eventual_after(history, quiesce_time)
        assert result.ok, result.reason

    def test_read_your_writes_holds(self):
        """Local application of writes preserves the session guarantee."""
        _, history, _ = self._run_history()
        assert check_read_your_writes(history).ok

    def test_copies_converge(self):
        ps, _, _ = self._run_history()
        expected = ps.parameter(0)
        for node in (1, 2):
            assert np.allclose(ps.states[node].replicas[0], expected)
