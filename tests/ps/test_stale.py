"""Integration tests for the stale (Petuum-style) parameter server."""

import numpy as np
import pytest

from repro.config import ClusterConfig, ParameterServerConfig
from repro.ps import StalePS


def build_stale(
    num_nodes=2,
    workers_per_node=1,
    num_keys=8,
    value_length=2,
    staleness=1,
    server_push=False,
    seed=1,
):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=workers_per_node, seed=seed)
    ps_config = ParameterServerConfig(
        num_keys=num_keys,
        value_length=value_length,
        staleness_bound=staleness,
        stale_server_push=server_push,
    )
    initial = np.arange(num_keys * value_length, dtype=float).reshape(num_keys, value_length)
    return StalePS(cluster, ps_config, initial_values=initial), initial


class TestStaleBasics:
    def test_local_pull_and_push(self):
        ps, initial = build_stale()

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.push([0], np.ones((1, 2)))
                values = yield from client.pull([0])
                return values[0]
            return None

        results = ps.run_workers(worker)
        np.testing.assert_allclose(results[0], initial[0] + 1.0)

    def test_remote_pull_fetches_replica(self):
        ps, initial = build_stale()

        def worker(client, worker_id):
            if worker_id == 0:
                values = yield from client.pull([7])  # owned by node 1
                return values[0]
            return None

        results = ps.run_workers(worker)
        np.testing.assert_allclose(results[0], initial[7])
        assert ps.metrics().key_reads_remote == 1

    def test_second_read_within_staleness_uses_replica(self):
        ps, initial = build_stale()

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.pull([7])
                remote_before = ps.network.stats.remote_messages
                yield from client.pull([7])
                remote_after = ps.network.stats.remote_messages
                return remote_after - remote_before
            return None

        results = ps.run_workers(worker)
        assert results[0] == 0
        assert ps.metrics().replica_reads == 1

    def test_remote_push_buffered_until_clock(self):
        ps, initial = build_stale()

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.push([7], np.ones((1, 2)))
                owner_value_before_clock = ps.parameter(7).copy()
                yield from client.clock()
                return owner_value_before_clock
            yield from client.clock()
            return None

        results = ps.run_workers(worker)
        # Before the clock, the owner had not seen the update...
        np.testing.assert_allclose(results[0], initial[7])
        # ...after the clock flush it has.
        np.testing.assert_allclose(ps.parameter(7), initial[7] + 1.0)

    def test_own_writes_visible_in_replica(self):
        ps, initial = build_stale()

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.pull([7])
                yield from client.push([7], np.ones((1, 2)))
                values = yield from client.pull([7])
                return values[0]
            return None

        results = ps.run_workers(worker)
        np.testing.assert_allclose(results[0], initial[7] + 1.0)

    def test_staleness_bound_forces_refetch(self):
        ps, initial = build_stale(staleness=0)

        def worker(client, worker_id):
            if worker_id == 0:
                yield from client.pull([7])
                yield from client.clock()
                remote_before = ps.metrics().key_reads_remote
                yield from client.pull([7])
                remote_after = ps.metrics().key_reads_remote
                return remote_after - remote_before
            yield from client.clock()
            return None

        results = ps.run_workers(worker)
        assert results[0] == 1  # replica too stale, had to refetch

    def test_stale_read_misses_unflushed_remote_update(self):
        """Eventual consistency: another node's buffered update is invisible."""
        ps, initial = build_stale(num_nodes=2, workers_per_node=1)

        def worker(client, worker_id):
            if worker_id == 1:
                # Node 1 updates a parameter owned by node 0 but does not clock.
                yield from client.push([0], np.ones((1, 2)))
                yield from client.barrier()
                return None
            yield from client.barrier()
            values = yield from client.pull([0])
            return values[0]

        results = ps.run_workers(worker)
        np.testing.assert_allclose(results[0], initial[0])


class TestServerPush:
    def test_sspPush_refreshes_replicas_after_clock(self):
        ps, initial = build_stale(num_nodes=2, server_push=True)

        def worker(client, worker_id):
            if worker_id == 0:
                # Subscribe to key 7 by fetching it once.
                yield from client.pull([7])
                yield from client.barrier()
                yield from client.clock()
                yield from client.barrier()
                # After the clock, the owner pushed a fresh replica: reading it
                # requires no network traffic and sees node 1's update.
                remote_before = ps.network.stats.remote_messages
                values = yield from client.pull([7])
                remote_after = ps.network.stats.remote_messages
                return values[0], remote_after - remote_before
            # Worker 1 owns key 7 and updates it directly.
            yield from client.barrier()
            yield from client.push([7], np.ones((1, 2)))
            yield from client.clock()
            yield from client.barrier()
            return None

        results = ps.run_workers(worker)
        values, extra_messages = results[0]
        np.testing.assert_allclose(values, initial[7] + 1.0)
        assert extra_messages == 0
        assert ps.metrics().replica_refreshes >= 1

    def test_ssp_client_sync_does_not_push(self):
        ps, _ = build_stale(num_nodes=2, server_push=False)

        def worker(client, worker_id):
            yield from client.pull([7 if worker_id == 0 else 0])
            yield from client.clock()
            return None

        ps.run_workers(worker)
        assert ps.metrics().replica_refreshes == 0

    def test_server_push_causes_more_traffic_than_client_sync(self):
        """SSPPush eagerly replicates everything previously accessed (§4.5)."""

        def run(server_push):
            ps, _ = build_stale(num_nodes=2, workers_per_node=2, server_push=server_push)

            def worker(client, worker_id):
                keys = [k for k in range(8) if ps.partitioner.node_of(k) != client.node_id]
                yield from client.pull(keys)
                for _ in range(3):
                    yield from client.clock()
                    yield from client.barrier()
                return None

            ps.run_workers(worker)
            return ps.network.stats.bytes_sent

        assert run(True) > run(False)


class TestStaleClockSemantics:
    def test_clock_advances_counted(self):
        ps, _ = build_stale(num_nodes=2, workers_per_node=2)

        def worker(client, worker_id):
            yield from client.clock()
            yield from client.clock()
            return None

        ps.run_workers(worker)
        assert ps.metrics().clock_advances == 8

    def test_updates_from_all_workers_arrive_after_clock(self):
        ps, initial = build_stale(num_nodes=2, workers_per_node=2)

        def worker(client, worker_id):
            yield from client.push([0], np.ones((1, 2)))
            yield from client.clock()
            yield from client.barrier()
            return None

        ps.run_workers(worker)
        np.testing.assert_allclose(ps.parameter(0), initial[0] + 4.0)
