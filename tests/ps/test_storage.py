"""Unit and property-based tests for local parameter stores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.ps.storage import DenseStorage, LatchTable, SparseStorage, make_storage


@pytest.fixture(params=["dense", "sparse"])
def storage(request):
    return make_storage(dense=request.param == "dense", num_keys=16, value_length=4)


class TestStorageBasics:
    def test_insert_get_roundtrip(self, storage):
        value = np.array([1.0, 2.0, 3.0, 4.0])
        storage.insert(3, value)
        assert storage.contains(3)
        np.testing.assert_allclose(storage.get(3), value)

    def test_get_returns_copy(self, storage):
        storage.insert(0, np.ones(4))
        copy = storage.get(0)
        copy[0] = 99.0
        np.testing.assert_allclose(storage.get(0), np.ones(4))

    def test_add_is_cumulative(self, storage):
        storage.insert(1, np.zeros(4))
        storage.add(1, np.array([1.0, 0.0, -1.0, 2.0]))
        storage.add(1, np.array([1.0, 1.0, 1.0, 1.0]))
        np.testing.assert_allclose(storage.get(1), [2.0, 1.0, 0.0, 3.0])

    def test_set_overwrites(self, storage):
        storage.insert(2, np.ones(4))
        storage.set(2, np.full(4, 7.0))
        np.testing.assert_allclose(storage.get(2), np.full(4, 7.0))

    def test_remove_returns_value_and_clears(self, storage):
        storage.insert(5, np.full(4, 2.5))
        removed = storage.remove(5)
        np.testing.assert_allclose(removed, np.full(4, 2.5))
        assert not storage.contains(5)
        with pytest.raises(StorageError):
            storage.get(5)

    def test_reinsert_after_remove(self, storage):
        storage.insert(5, np.ones(4))
        storage.remove(5)
        storage.insert(5, np.full(4, 3.0))
        np.testing.assert_allclose(storage.get(5), np.full(4, 3.0))

    def test_double_insert_rejected(self, storage):
        storage.insert(4, np.zeros(4))
        with pytest.raises(StorageError):
            storage.insert(4, np.zeros(4))

    def test_missing_key_operations_rejected(self, storage):
        with pytest.raises(StorageError):
            storage.get(0)
        with pytest.raises(StorageError):
            storage.add(0, np.zeros(4))
        with pytest.raises(StorageError):
            storage.set(0, np.zeros(4))
        with pytest.raises(StorageError):
            storage.remove(0)

    def test_out_of_range_key_rejected(self, storage):
        with pytest.raises(StorageError):
            storage.insert(99, np.zeros(4))
        with pytest.raises(StorageError):
            storage.contains(-1)

    def test_wrong_shape_rejected(self, storage):
        with pytest.raises(StorageError):
            storage.insert(0, np.zeros(3))
        storage.insert(0, np.zeros(4))
        with pytest.raises(StorageError):
            storage.add(0, np.zeros(5))

    def test_keys_and_len(self, storage):
        for key in (1, 3, 5):
            storage.insert(key, np.zeros(4))
        assert sorted(storage.keys()) == [1, 3, 5]
        assert len(storage) == 3
        assert 3 in storage
        assert 2 not in storage

    def test_initial_keys(self):
        for dense in (True, False):
            store = make_storage(dense, num_keys=8, value_length=2, initial_keys=[0, 7])
            assert store.contains(0) and store.contains(7)
            np.testing.assert_allclose(store.get(0), np.zeros(2))

    def test_invalid_construction(self):
        with pytest.raises(StorageError):
            DenseStorage(0, 4)
        with pytest.raises(StorageError):
            SparseStorage(4, 0)


class TestLatchTable:
    def test_key_always_maps_to_same_latch(self):
        table = LatchTable(num_latches=10)
        assert table.latch_for(3) == table.latch_for(3)
        assert 0 <= table.latch_for(123456) < 10

    def test_acquisition_counter(self):
        table = LatchTable(num_latches=4)
        table.acquire(1)
        table.acquire(5)
        assert table.acquisitions == 2
        # Keys 1 and 5 share a latch in a 4-latch table (1 % 4 == 5 % 4).
        assert table.latch_for(1) == table.latch_for(5)

    def test_invalid_latch_count(self):
        with pytest.raises(StorageError):
            LatchTable(0)


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),
            st.lists(
                st.floats(min_value=-100, max_value=100, allow_nan=False),
                min_size=4,
                max_size=4,
            ),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_dense_and_sparse_agree(ops):
    """Dense and sparse stores behave identically under the same operation stream."""
    dense = DenseStorage(16, 4)
    sparse = SparseStorage(16, 4)
    model = {}
    for key, update in ops:
        update = np.asarray(update)
        if key in model:
            dense.add(key, update)
            sparse.add(key, update)
            model[key] = model[key] + update
        else:
            dense.insert(key, update)
            sparse.insert(key, update)
            model[key] = update.copy()
    assert sorted(dense.keys()) == sorted(sparse.keys()) == sorted(model.keys())
    for key, expected in model.items():
        np.testing.assert_allclose(dense.get(key), expected, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(sparse.get(key), expected, rtol=1e-9, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=30, unique=True)
)
def test_property_remove_inverts_insert(keys):
    """After inserting and removing the same keys, the store is empty again."""
    store = SparseStorage(64, 2)
    for key in keys:
        store.insert(key, np.array([key, -key], dtype=float))
    for key in keys:
        value = store.remove(key)
        np.testing.assert_allclose(value, [key, -key])
    assert len(store) == 0
