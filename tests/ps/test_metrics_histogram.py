"""RunningStat streaming histogram: percentiles, merging, reporting keys.

The histogram is bounded (fixed log-spaced buckets), so percentile queries
are approximations with a known worst-case relative error of one sub-bucket
(~19%); the tests assert within that tolerance, plus the exact structural
guarantees (clamping to observed min/max, lazy allocation, merge algebra,
and the ``p50_*`` / ``p99_*`` keys surfaced through ``PSMetrics.as_dict``
and ``experiments.reporting``).
"""

import pytest

from repro.experiments.reporting import LATENCY_COUNTERS
from repro.ps.metrics import PSMetrics, RunningStat

#: Worst-case relative error of a percentile query: one 2**(1/4) sub-bucket.
RELATIVE_ERROR = 2 ** 0.25 - 1.0


def test_empty_stat_percentiles_are_zero():
    stat = RunningStat()
    assert stat.p50 == 0.0
    assert stat.p99 == 0.0
    assert stat.buckets is None  # lazily allocated


def test_single_value():
    stat = RunningStat()
    stat.record(0.5)
    # Clamped to the observed extrema, so a single sample is exact.
    assert stat.p50 == 0.5
    assert stat.p99 == 0.5


def test_percentiles_of_uniform_range():
    stat = RunningStat()
    values = [i * 1e-3 for i in range(1, 1001)]  # 1ms .. 1s
    for value in values:
        stat.record(value)
    assert stat.p50 == pytest.approx(0.5, rel=RELATIVE_ERROR)
    assert stat.p99 == pytest.approx(0.99, rel=RELATIVE_ERROR)
    assert stat.percentile(0.90) == pytest.approx(0.9, rel=RELATIVE_ERROR)
    # Percentiles never escape the observed range.
    assert stat.minimum <= stat.p50 <= stat.maximum


def test_extreme_values_clamp():
    stat = RunningStat()
    stat.record(0.0)  # below the histogram floor
    stat.record(1e9)  # beyond the top bucket
    assert stat.count == 2
    assert stat.percentile(0.0) >= stat.minimum
    assert stat.percentile(1.0) <= stat.maximum


def test_merge_combines_distributions():
    left, right = RunningStat(), RunningStat()
    for i in range(1, 501):
        left.record(i * 1e-3)
    for i in range(501, 1001):
        right.record(i * 1e-3)
    merged = left.merge(right)
    assert merged.count == 1000
    assert merged.p50 == pytest.approx(0.5, rel=RELATIVE_ERROR)
    # Merging with a legacy (bucket-less) stat keeps the bucket data.
    legacy = RunningStat(count=1, total=2.0, minimum=2.0, maximum=2.0)
    assert legacy.buckets is None
    both = merged.merge(legacy)
    assert both.count == 1001
    assert both.buckets is not None


def test_legacy_stat_without_buckets_falls_back_to_mean():
    legacy = RunningStat(count=4, total=2.0, minimum=0.1, maximum=1.0)
    assert legacy.p50 == pytest.approx(0.5)  # the mean, clamped to range


def test_ps_metrics_as_dict_has_percentile_keys():
    metrics = PSMetrics()
    metrics.relocation_time.record(1e-3)
    metrics.relocation_time.record(2e-3)
    flat = metrics.as_dict()
    assert "mean_relocation_time" in flat
    assert "p50_relocation_time" in flat
    assert "p99_relocation_time" in flat
    assert flat["p50_relocation_time"] >= flat["mean_relocation_time"] * 0.5
    # Every RunningStat field gets all three prefixes, introspectively.
    for name in ("relocation_time", "blocking_time", "rebalance_time"):
        for prefix in ("mean", "p50", "p99"):
            assert f"{prefix}_{name}" in flat


def test_latency_counters_resolve_in_as_dict():
    flat = PSMetrics().as_dict()
    for counter in LATENCY_COUNTERS:
        assert counter in flat
