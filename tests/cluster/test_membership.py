"""Tests for the membership manager and the scripted cluster schedule."""

import pytest

from repro.cluster import (
    ACTIVE,
    DRAINING,
    FAILED,
    JOINING,
    LEFT,
    ClusterEvent,
    ClusterSchedule,
    Membership,
)
from repro.errors import ClusterError


class TestMembership:
    def test_initial_states(self):
        membership = Membership(4, initial_active=[0, 2])
        assert membership.state_of(0) == ACTIVE
        assert membership.state_of(1) == LEFT
        assert membership.state_of(2) == ACTIVE
        assert membership.state_of(3) == LEFT
        assert membership.active_nodes() == [0, 2]
        assert membership.version == 0

    def test_default_all_active(self):
        membership = Membership(3)
        assert membership.active_nodes() == [0, 1, 2]

    def test_join_lifecycle(self):
        membership = Membership(3, initial_active=[0, 1])
        membership.begin_join(2, time=1.0)
        assert membership.state_of(2) == JOINING
        assert membership.may_own(2)
        assert membership.worker_nodes() == [0, 1]  # no workers until active
        membership.complete_join(2, time=1.5)
        assert membership.state_of(2) == ACTIVE
        assert membership.worker_nodes() == [0, 1, 2]
        assert membership.version == 2
        assert membership.history == [(1.0, 2, LEFT, JOINING), (1.5, 2, JOINING, ACTIVE)]

    def test_drain_lifecycle(self):
        membership = Membership(2)
        membership.begin_drain(1, time=2.0)
        assert membership.state_of(1) == DRAINING
        assert not membership.may_own(1)
        assert membership.worker_nodes() == [0]
        membership.complete_drain(1, time=3.0)
        assert membership.state_of(1) == LEFT

    def test_fail_from_any_live_state(self):
        membership = Membership(4, initial_active=[0, 1, 2])
        membership.begin_drain(1)
        membership.fail(1)
        assert membership.state_of(1) == FAILED
        membership.begin_join(3)
        membership.fail(3)
        assert membership.state_of(3) == FAILED
        membership.fail(2)
        assert membership.state_of(2) == FAILED

    def test_invalid_transitions_rejected(self):
        membership = Membership(3, initial_active=[0, 1])
        with pytest.raises(ClusterError):
            membership.begin_join(1)  # already active
        with pytest.raises(ClusterError):
            membership.complete_join(2)  # never began joining
        with pytest.raises(ClusterError):
            membership.begin_drain(2)  # not a member
        membership.fail(1)
        with pytest.raises(ClusterError):
            membership.fail(1)  # terminal

    def test_seed_node_protected(self):
        membership = Membership(2)
        with pytest.raises(ClusterError):
            membership.begin_drain(0)
        with pytest.raises(ClusterError):
            membership.fail(0)
        with pytest.raises(ClusterError):
            Membership(2, initial_active=[1])

    def test_validation(self):
        with pytest.raises(ClusterError):
            Membership(0)
        with pytest.raises(ClusterError):
            Membership(2, initial_active=[])
        with pytest.raises(ClusterError):
            Membership(2, initial_active=[0, 0])
        with pytest.raises(ClusterError):
            Membership(2, initial_active=[0, 5])
        membership = Membership(2)
        with pytest.raises(ClusterError):
            membership.state_of(9)


class TestClusterSchedule:
    def test_builder_chaining_and_order(self):
        schedule = ClusterSchedule().drain(2.0, node=1).join(0.5, node=2).fail(1.0, node=2)
        kinds = [(event.kind, event.time, event.node) for event in schedule]
        assert kinds == [("join", 0.5, 2), ("fail", 1.0, 2), ("drain", 2.0, 1)]
        assert len(schedule) == 3

    def test_tie_break_is_insertion_order(self):
        schedule = ClusterSchedule().join(1.0, node=1).drain(1.0, node=2)
        assert [event.kind for event in schedule] == ["join", "drain"]

    def test_events_constructor(self):
        events = [ClusterEvent(time=1.0, kind="join", node=1)]
        schedule = ClusterSchedule(events)
        assert schedule.events == events

    def test_validation(self):
        with pytest.raises(ClusterError):
            ClusterEvent(time=-1.0, kind="join", node=1)
        with pytest.raises(ClusterError):
            ClusterEvent(time=0.0, kind="explode", node=1)
        with pytest.raises(ClusterError):
            ClusterEvent(time=0.0, kind="join", node=-1)
        with pytest.raises(ClusterError):
            ClusterSchedule().add("not an event")
