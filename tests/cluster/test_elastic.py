"""End-to-end tests for the elastic cluster runtime.

Covers the acceptance shape of the elasticity subsystem: an empty schedule is
bit-identical to a static run, a mid-epoch join migrates keys and speeds up
the DPA systems relative to the static classic PS, drains empty the departing
node, and failures recover replicated keys (hybrid) or report lost keys
(pure relocation).
"""

import numpy as np
import pytest

from repro.cluster import ACTIVE, DRAINING, LEFT, ClusterSchedule, ElasticCluster
from repro.errors import ClusterError
from repro.experiments import (
    MFScale,
    make_elastic_mf,
    run_elastic_mf_experiment,
    run_mf_experiment,
)
from repro.experiments.scenarios import elastic_scaling_scenario

TINY = MFScale(num_rows=48, num_cols=24, num_entries=600, rank=4, compute_time_per_entry=2e-6)
#: Scale for the lifecycle scenario: compute-heavy enough that extra workers
#: outweigh the extra subepoch synchronization.
LIFECYCLE = MFScale(
    num_rows=150, num_cols=24, num_entries=3000, rank=4, compute_time_per_entry=25e-6
)

SEVEN_SYSTEMS = (
    "classic",
    "classic_fast_local",
    "lapse",
    "stale_ssp",
    "stale_ssppush",
    "replica",
    "hybrid",
)


@pytest.fixture(scope="module")
def lifecycle_rows():
    return elastic_scaling_scenario(scale=LIFECYCLE, seed=1, workers_per_node=2)


def row_of(rows, system):
    return next(row for row in rows if row["system"] == system)


class TestEmptyScheduleEquivalence:
    @pytest.mark.parametrize("system", SEVEN_SYSTEMS)
    def test_bit_identical_to_static_run(self, system):
        static = run_mf_experiment(
            system, num_nodes=2, workers_per_node=2, scale=TINY, epochs=2, seed=3
        )
        elastic = run_elastic_mf_experiment(
            system, num_nodes=2, workers_per_node=2, scale=TINY, epochs=2, seed=3
        )
        assert [e.duration for e in static.epochs] == [e.duration for e in elastic.epochs]
        assert static.remote_messages == elastic.remote_messages
        assert static.bytes_sent == elastic.bytes_sent
        assert static.metrics.as_dict() == elastic.metrics.as_dict()

    def test_empty_schedule_model_identical(self):
        kwargs = dict(num_nodes=2, workers_per_node=2, scale=TINY, seed=5)
        elastic, trainer = make_elastic_mf("lapse", **kwargs)
        elastic.run_epoch(trainer, compute_loss=False)
        static = _static_trained_params("lapse", kwargs)
        np.testing.assert_array_equal(elastic.ps.all_parameters(), static)


def _static_trained_params(system, kwargs):
    """Train one epoch on a plain (non-elastic) PS and return the model."""
    from repro.config import ParameterServerConfig
    from repro.data import generate_matrix
    from repro.experiments import make_parameter_server
    from repro.experiments.runner import _cluster
    from repro.ml import MatrixFactorizationConfig, MatrixFactorizationTrainer

    scale = kwargs["scale"]
    matrix = generate_matrix(
        scale.num_rows, scale.num_cols, scale.num_entries, rank=scale.rank,
        seed=kwargs["seed"],
    )
    cluster = _cluster(kwargs["num_nodes"], kwargs["workers_per_node"], kwargs["seed"], None)
    ps = make_parameter_server(
        system, cluster, ParameterServerConfig(num_keys=scale.num_cols, value_length=scale.rank)
    )
    trainer = MatrixFactorizationTrainer(
        ps,
        matrix,
        MatrixFactorizationConfig(
            rank=scale.rank, compute_time_per_entry=scale.compute_time_per_entry
        ),
        seed=kwargs["seed"],
    )
    trainer.run_epoch(compute_loss=False)
    return ps.all_parameters()


class TestJoin:
    def test_join_migrates_keys_and_activates(self):
        schedule = ClusterSchedule().join(0.0, node=1)
        elastic, trainer = make_elastic_mf(
            "lapse", num_nodes=2, initial_nodes=[0], schedule=schedule,
            scale=TINY, workers_per_node=2, seed=0,
        )
        ps = elastic.ps
        assert ps.partitioner.active_nodes == [0]
        assert len(ps.states[1].storage) == 0
        elastic.run_epoch(trainer, compute_loss=False)
        assert elastic.membership.state_of(1) == ACTIVE
        assert ps.partitioner.active_nodes == [0, 1]
        assert ps.partitioner.epoch == 1
        # The joined node received (and the partitioner assigned) its share.
        share = ps.partitioner.keys_of(1)
        assert len(share) == TINY.num_cols // 2
        metrics = ps.metrics()
        assert metrics.rebalanced_keys == len(share)
        assert metrics.rebalance_rounds == 1
        assert metrics.rebalance_time.count == 1

    def test_join_speeds_up_dpa_but_not_classic(self, lifecycle_rows):
        classic = row_of(lifecycle_rows, "classic")
        for system in ("lapse", "hybrid"):
            row = row_of(lifecycle_rows, system)
            # Acceptance: the mid-epoch join strictly reduces the post-join
            # epoch time for the DPA systems, and they beat classic-static.
            assert row["post_join_epoch_s"] < row["baseline_epoch_s"]
            assert row["post_join_epoch_s"] < classic["post_join_epoch_s"]
            assert row["rebalanced_keys"] > 0
        # The static classic PS cannot rebalance: no keys moved.
        assert classic["rebalanced_keys"] == 0

    def test_join_on_static_policy_adds_workers_only(self):
        schedule = ClusterSchedule().join(0.0, node=1)
        elastic, trainer = make_elastic_mf(
            "classic", num_nodes=2, initial_nodes=[0], schedule=schedule,
            scale=TINY, workers_per_node=2, seed=0,
        )
        elastic.run_epoch(trainer, compute_loss=False)
        assert elastic.membership.state_of(1) == ACTIVE
        assert len(elastic.ps.states[1].storage) == 0  # owns nothing
        assert elastic.ps.partitioner.epoch == 0


class TestDrainAndFailure:
    def test_drain_empties_node_and_leaves(self, lifecycle_rows):
        for system in ("lapse", "hybrid"):
            assert row_of(lifecycle_rows, system)["drain_node_state"] == LEFT
        # Static allocation cannot complete a drain: the node keeps serving.
        assert row_of(lifecycle_rows, "classic")["drain_node_state"] == DRAINING

    def test_drained_node_owns_nothing(self):
        schedule = ClusterSchedule().drain(0.0, node=1)
        elastic, trainer = make_elastic_mf(
            "lapse", num_nodes=2, schedule=schedule, scale=TINY,
            workers_per_node=2, seed=0,
        )
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.prepare_epoch()  # boundary: final sweep + completion
        assert elastic.membership.state_of(1) == LEFT
        assert len(elastic.ps.states[1].storage) == 0
        assert elastic.rebalancer.owned_keys(1) == []
        # All parameters remain reachable after the drain.
        assert elastic.ps.all_parameters().shape == (TINY.num_cols, TINY.rank)

    def test_hybrid_recovers_all_lapse_loses(self, lifecycle_rows):
        hybrid = row_of(lifecycle_rows, "hybrid")
        lapse = row_of(lifecycle_rows, "lapse")
        assert hybrid["lost_keys"] == 0
        assert hybrid["recovered_keys"] > 0
        assert lapse["recovered_keys"] == 0
        assert lapse["lost_keys"] > 0

    def test_failed_node_traffic_dropped(self):
        """Traffic to/from a crashed node is blackholed, end to end."""
        elastic, trainer = make_elastic_mf(
            "hybrid", num_nodes=2, scale=TINY, workers_per_node=2, seed=3
        )
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.ensure_backups()
        elastic.fail_at(elastic.ps.simulated_time, 1)
        elastic.run_epoch(trainer, compute_loss=False)
        ps = elastic.ps
        assert not ps.nodes[1].alive
        before = ps.network.stats.dropped_messages
        remote_before = ps.network.stats.remote_messages
        ps.send_to_server(0, 1, "late request", 64)
        assert ps.network.stats.dropped_messages == before + 1
        assert ps.network.stats.remote_messages == remote_before

    def test_mid_epoch_fail_is_held_to_the_boundary(self):
        """Regression: a fail scheduled inside an epoch must not deadlock it.

        The failed node's workers cannot be aborted mid-generator, so the
        runtime holds the event until they finish and injects the crash at
        the next epoch boundary.
        """
        elastic, trainer = make_elastic_mf(
            "hybrid", num_nodes=2, scale=TINY, workers_per_node=2, seed=4
        )
        first = elastic.run_epoch(trainer, compute_loss=False)
        elastic.ensure_backups()
        mid = elastic.ps.simulated_time + 0.5 * first.duration
        elastic.fail_at(mid, 1)
        # The epoch completes normally (run_workers would raise on deadlock);
        # the crash injects only once its workers have finished.
        result = elastic.run_epoch(trainer, compute_loss=False)
        assert result.duration > 0
        assert elastic.membership.state_of(1) == "failed"
        assert not elastic.pending_events
        elastic.run_epoch(trainer, compute_loss=False)  # keeps training
        assert elastic.lost_keys == 0
        assert elastic.recovered_keys > 0

    def test_draining_node_counts_as_recovery_source(self):
        """Regression: a replica held by a DRAINING node must still recover keys.

        The draining node is alive and connected — its replicas are released
        only when the drain completes — so a concurrent failure must recover
        from it instead of declaring the keys lost.
        """
        from repro.config import message_size
        from repro.ps.base import van_address
        from repro.ps.messages import ReplicaRegisterRequest
        from repro.ps.policy import InstallingKey

        elastic, trainer = make_elastic_mf(
            "hybrid", num_nodes=3, scale=TINY, workers_per_node=2, seed=6
        )
        elastic.run_epoch(trainer, compute_loss=False)
        ps = elastic.ps
        # Node 1 (about to drain) is the ONLY replica holder of node 2's keys.
        keys = sorted(ps.states[2].storage.keys())
        assert keys
        for key in keys:
            ps.states[1].installing[key] = InstallingKey(key=key)
        ps.send_to_server(
            1,
            2,
            ReplicaRegisterRequest(keys=tuple(keys), requester_node=1, reply_to=van_address(1)),
            message_size(len(keys), 0),
        )
        elastic.settle()
        assert all(key in ps.states[1].replicas for key in keys)
        # Drain node 1 and fail node 2 at the same boundary: the drain is
        # applied first (script order), so recovery runs while 1 is DRAINING.
        now = ps.simulated_time
        elastic.drain_at(now, 1)
        elastic.fail_at(now, 2)
        elastic.run_epoch(trainer, compute_loss=False)
        assert elastic.lost_keys == 0
        assert elastic.recovered_keys >= len(keys)

    def test_static_policy_cannot_recover(self):
        schedule = ClusterSchedule().fail(0.0, node=1)
        elastic, trainer = make_elastic_mf(
            "classic", num_nodes=2, schedule=schedule, scale=TINY,
            workers_per_node=2, seed=0,
        )
        with pytest.raises(ClusterError):
            elastic.run_epoch(trainer, compute_loss=False)

    def test_model_usable_after_recovery(self):
        elastic, trainer = make_elastic_mf(
            "hybrid", num_nodes=2, scale=TINY, workers_per_node=2, seed=2
        )
        elastic.run_epoch(trainer, compute_loss=False)
        before = elastic.ps.all_parameters()
        installed = elastic.ensure_backups()
        assert installed > 0
        elastic.fail_at(elastic.ps.simulated_time, 1)
        result = elastic.run_epoch(trainer, compute_loss=True)
        assert elastic.lost_keys == 0
        assert elastic.recovered_keys > 0
        after = elastic.ps.all_parameters()
        assert after.shape == before.shape
        assert np.isfinite(after).all()
        assert result.loss is not None


class TestEnsureBackups:
    def test_every_owned_key_gets_a_subscriber(self):
        elastic, trainer = make_elastic_mf(
            "hybrid", num_nodes=2, scale=TINY, workers_per_node=2, seed=0
        )
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.ensure_backups()
        ps = elastic.ps
        for node in (0, 1):
            state = ps.states[node]
            for key in state.storage.keys():
                assert state.subscribers.get(key), f"key {key} on node {node} unprotected"

    def test_unsupported_policies_are_noops(self):
        elastic, trainer = make_elastic_mf(
            "lapse", num_nodes=2, scale=TINY, workers_per_node=2, seed=0
        )
        elastic.run_epoch(trainer, compute_loss=False)
        assert elastic.ensure_backups() == 0


class TestDeterminism:
    def test_same_seed_same_lifecycle(self):
        runs = [
            elastic_scaling_scenario(
                systems=("lapse",), scale=TINY, seed=9, workers_per_node=2
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
