"""Tests for the synthetic dataset generators and partitioning utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    generate_corpus,
    generate_knowledge_graph,
    generate_matrix,
    partition_by_key_function,
    partition_contiguous,
    partition_round_robin,
)
from repro.errors import DataGenerationError


class TestSyntheticMatrix:
    def test_basic_shape(self):
        matrix = generate_matrix(num_rows=50, num_cols=40, num_entries=300, rank=4, seed=0)
        assert matrix.num_rows == 50
        assert matrix.num_cols == 40
        assert 0 < matrix.num_entries <= 300
        assert matrix.rows.max() < 50
        assert matrix.cols.max() < 40
        assert matrix.true_row_factors.shape == (50, 4)

    def test_deterministic_per_seed(self):
        a = generate_matrix(20, 20, 100, seed=1)
        b = generate_matrix(20, 20, 100, seed=1)
        c = generate_matrix(20, 20, 100, seed=2)
        np.testing.assert_array_equal(a.rows, b.rows)
        np.testing.assert_allclose(a.values, b.values)
        assert not np.array_equal(a.rows, c.rows) or not np.allclose(a.values, c.values)

    def test_values_close_to_low_rank_model(self):
        matrix = generate_matrix(30, 30, 200, rank=4, noise=0.01, seed=0)
        predicted = np.einsum(
            "ij,ij->i",
            matrix.true_row_factors[matrix.rows],
            matrix.true_col_factors[matrix.cols],
        )
        assert np.abs(matrix.values - predicted).mean() < 0.05

    def test_entries_for_rows_and_columns(self):
        matrix = generate_matrix(20, 20, 150, seed=0)
        rows, cols, values = matrix.entries_for_rows(0, 10)
        assert (rows < 10).all()
        rows, cols, values = matrix.entries_for_columns(5, 15)
        assert ((cols >= 5) & (cols < 15)).all()

    def test_no_duplicate_positions(self):
        matrix = generate_matrix(10, 10, 80, seed=3)
        positions = set(zip(matrix.rows.tolist(), matrix.cols.tolist()))
        assert len(positions) == matrix.num_entries

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            generate_matrix(0, 10, 10)
        with pytest.raises(DataGenerationError):
            generate_matrix(10, 10, 0)
        with pytest.raises(DataGenerationError):
            generate_matrix(10, 10, 1000)
        with pytest.raises(DataGenerationError):
            generate_matrix(10, 10, 10, rank=0)


class TestSyntheticKnowledgeGraph:
    def test_basic_shape(self):
        graph = generate_knowledge_graph(num_entities=100, num_relations=8, num_triples=500, seed=0)
        assert graph.num_triples == 500
        assert graph.subjects.max() < 100
        assert graph.relations.max() < 8
        assert graph.triples().shape == (500, 3)

    def test_skewed_entity_usage(self):
        graph = generate_knowledge_graph(
            num_entities=200, num_relations=4, num_triples=5000, entity_skew=1.0, seed=0
        )
        frequencies = np.sort(graph.entity_frequencies())[::-1]
        # The most frequent entity should appear far more often than the median.
        assert frequencies[0] > 10 * max(1, np.median(frequencies))

    def test_uniform_when_skew_zero(self):
        graph = generate_knowledge_graph(
            num_entities=50, num_relations=4, num_triples=5000, entity_skew=0.0, seed=0
        )
        frequencies = graph.entity_frequencies()
        assert frequencies.max() < 5 * frequencies.mean()

    def test_no_self_loops(self):
        graph = generate_knowledge_graph(num_entities=10, num_relations=2, num_triples=1000, seed=1)
        assert (graph.subjects != graph.objects).all()

    def test_triples_of_relation(self):
        graph = generate_knowledge_graph(num_entities=50, num_relations=5, num_triples=300, seed=0)
        for relation in range(5):
            triples = graph.triples_of_relation(relation)
            assert (triples[:, 1] == relation).all()

    def test_deterministic(self):
        a = generate_knowledge_graph(seed=7)
        b = generate_knowledge_graph(seed=7)
        np.testing.assert_array_equal(a.triples(), b.triples())

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            generate_knowledge_graph(num_entities=1)
        with pytest.raises(DataGenerationError):
            generate_knowledge_graph(num_relations=0)
        with pytest.raises(DataGenerationError):
            generate_knowledge_graph(num_triples=0)
        with pytest.raises(DataGenerationError):
            generate_knowledge_graph(entity_skew=-1)


class TestSyntheticCorpus:
    def test_basic_shape(self):
        corpus = generate_corpus(vocabulary_size=100, num_sentences=20, seed=0)
        assert corpus.num_sentences == 20
        assert corpus.num_tokens > 0
        assert all(sentence.max() < 100 for sentence in corpus.sentences)
        assert all(len(sentence) >= 2 for sentence in corpus.sentences)

    def test_zipf_skew(self):
        corpus = generate_corpus(vocabulary_size=500, num_sentences=400, skew=1.0, seed=0)
        frequencies = np.sort(corpus.word_frequencies())[::-1]
        assert frequencies[0] > 20 * max(1.0, np.median(frequencies))

    def test_unigram_distribution_sums_to_one(self):
        corpus = generate_corpus(vocabulary_size=50, num_sentences=30, seed=0)
        distribution = corpus.unigram_distribution()
        assert distribution.shape == (50,)
        assert distribution.sum() == pytest.approx(1.0)

    def test_deterministic(self):
        a = generate_corpus(seed=3)
        b = generate_corpus(seed=3)
        assert all(np.array_equal(x, y) for x, y in zip(a.sentences, b.sentences))

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            generate_corpus(vocabulary_size=1)
        with pytest.raises(DataGenerationError):
            generate_corpus(num_sentences=0)
        with pytest.raises(DataGenerationError):
            generate_corpus(mean_sentence_length=1)
        with pytest.raises(DataGenerationError):
            generate_corpus(skew=-0.5)


class TestPartitioning:
    def test_round_robin(self):
        parts = partition_round_robin(list(range(10)), 3)
        assert parts[0] == [0, 3, 6, 9]
        assert parts[1] == [1, 4, 7]
        assert sum(len(p) for p in parts) == 10

    def test_contiguous(self):
        parts = partition_contiguous(list(range(10)), 3)
        assert parts[0] == [0, 1, 2, 3]
        assert parts[2] == [7, 8, 9]

    def test_by_key_function(self):
        items = [(i, i % 4) for i in range(20)]
        parts = partition_by_key_function(items, 2, key_fn=lambda item: item[1])
        assert all(item[1] % 2 == 0 for item in parts[0])
        assert all(item[1] % 2 == 1 for item in parts[1])

    def test_validation(self):
        with pytest.raises(DataGenerationError):
            partition_round_robin([1], 0)
        with pytest.raises(DataGenerationError):
            partition_contiguous([1], 0)
        with pytest.raises(DataGenerationError):
            partition_by_key_function([1], 0, key_fn=lambda x: x)

    @settings(max_examples=30, deadline=None)
    @given(
        num_items=st.integers(min_value=0, max_value=100),
        num_parts=st.integers(min_value=1, max_value=10),
    )
    def test_property_partitions_cover_all_items(self, num_items, num_parts):
        items = list(range(num_items))
        for strategy in (partition_round_robin, partition_contiguous):
            parts = strategy(items, num_parts)
            assert sorted(sum(parts, [])) == items
            assert len(parts) == num_parts
            sizes = [len(p) for p in parts]
            assert max(sizes) - min(sizes) <= 1
