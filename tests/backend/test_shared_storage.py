"""Shared-memory building blocks of the real backend.

``SharedDenseStorage`` must behave exactly like ``DenseStorage`` (same
layout, same batch API, same check-then-apply error contract) while making
writes visible across ``fork``; ``SharedDirectory`` is the cross-process
location record and ``DirectoryHomeView`` adapts it to the
``home_location`` mapping interface of ``RelocationPolicy``.
"""

import multiprocessing

import numpy as np
import pytest

from repro.backend import DirectoryHomeView, SharedDenseStorage, SharedDirectory
from repro.errors import StorageError
from repro.ps.partition import RangePartitioner
from repro.ps.storage import DenseStorage

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the real backend requires the fork start method",
)


@pytest.fixture()
def shared_store():
    store = SharedDenseStorage(16, 4, initial_keys=range(8))
    yield store
    store.detach()


def test_shared_dense_matches_dense_semantics(shared_store):
    reference = DenseStorage(16, 4, initial_keys=range(8))
    rng = np.random.default_rng(0)
    keys = [0, 3, 5, 7]
    values = rng.normal(size=(len(keys), 4))
    updates = rng.normal(size=(len(keys), 4))
    for store in (shared_store, reference):
        store.set_many(keys, values)
        store.add_many(keys, updates)
    np.testing.assert_array_equal(
        shared_store.get_many(keys), reference.get_many(keys)
    )
    assert sorted(shared_store.keys()) == sorted(reference.keys())
    assert len(shared_store) == len(reference)
    shared_values, shared_present = shared_store.snapshot()
    reference_values, reference_present = reference.snapshot()
    np.testing.assert_array_equal(shared_values, reference_values)
    np.testing.assert_array_equal(shared_present, reference_present)


def test_shared_dense_error_contract(shared_store):
    # Check-then-apply: the batch fails before any row is written.
    before = shared_store.get_many([0, 1])
    with pytest.raises(StorageError, match="key 9 is not resident"):
        shared_store.set_many([0, 9], np.ones((2, 4)))
    np.testing.assert_array_equal(shared_store.get_many([0, 1]), before)
    with pytest.raises(StorageError, match="already resident"):
        shared_store.insert(3, np.ones(4))


def test_shared_dense_cross_fork_visibility(shared_store):
    ctx = multiprocessing.get_context("fork")
    done = ctx.Event()
    stop = ctx.Event()

    def child():
        shared_store.set_many([2], np.full((1, 4), 7.25))
        done.set()
        stop.wait(10.0)

    process = ctx.Process(target=child, daemon=True)
    process.start()
    try:
        assert done.wait(10.0), "child never wrote"
        # The parent sees the child's write while the child is still alive.
        np.testing.assert_array_equal(shared_store.get(2), np.full(4, 7.25))
    finally:
        stop.set()
        process.join(10.0)
        if process.is_alive():  # pragma: no cover - cleanup on failure
            process.terminate()


def test_shared_dense_detach_is_idempotent_and_keeps_state(shared_store):
    shared_store.set_many([4], np.full((1, 4), 3.0))
    shared_store.detach()
    shared_store.detach()  # idempotent
    np.testing.assert_array_equal(shared_store.get(4), np.full(4, 3.0))


def test_shared_directory_ops():
    ctx = multiprocessing.get_context("fork")
    directory = SharedDirectory(10, [key % 2 for key in range(10)], ctx.Lock())
    try:
        assert directory.owner_of(3) == 1
        np.testing.assert_array_equal(directory.owners_of([0, 1, 2]), [0, 1, 0])
        with directory.lock:
            directory.set_owners([0, 2], 1)
        assert directory.owner_of(0) == 1
        snapshot = directory.snapshot()
        # The snapshot is a private copy, detached from later updates.
        with directory.lock:
            directory.set_owners([4], 1)
        assert snapshot[4] == 0
    finally:
        directory.detach()
        directory.detach()  # idempotent


def test_directory_home_view_restricts_to_home_keys():
    ctx = multiprocessing.get_context("fork")
    partitioner = RangePartitioner(10, 2)  # node 0 homes keys 0..4
    directory = SharedDirectory(10, [partitioner.node_of(k) for k in range(10)], ctx.Lock())
    try:
        view = DirectoryHomeView(directory, partitioner, node_id=0)
        assert 2 in view and 7 not in view
        assert view[2] == 0
        with directory.lock:
            directory.set_owners([2], 1)
        assert view[2] == 1  # the view reads through to the live directory
        with pytest.raises(KeyError):
            view[7]
    finally:
        directory.detach()
