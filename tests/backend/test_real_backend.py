"""End-to-end tests for the real (multiprocessing) execution backend.

The real backend runs the same workloads as the simulator on actual worker
processes with shared-memory parameter shards.  It cannot be bit-identical
run-for-run (the OS schedules the processes), so these tests assert the
statistical-equivalence contract documented in docs/architecture.md: final
MF loss within tolerance of the simulator (bit-equal in practice for
barrier-synchronized DSGD), exact equality of the deterministic
access/relocation counters, and a consistent ownership record (every key
resident at exactly the node the shared directory names).
"""

import multiprocessing

import numpy as np
import pytest

from repro.backend import REAL_BACKEND_SYSTEMS, RealParameterServer
from repro.errors import ExperimentError
from repro.experiments.runner import (
    MFScale,
    make_parameter_server,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)
from repro.ps.base import ClusterConfig, ParameterServerConfig
from repro.ps.partition import RangePartitioner

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the real backend requires the fork start method",
)

#: Tiny but non-trivial MF workload: 2 nodes, keys cross the partition
#: boundary, finishes in well under a second per run.
TINY = MFScale(num_rows=32, num_cols=8, num_entries=200, rank=4, compute_time_per_entry=0.0)

#: Counters that must mirror the simulator exactly (deterministic for
#: barrier-synchronized workloads); timing-dependent counters (queue depths,
#: cache hits, per-channel traffic) are deliberately absent.
MIRRORED_COUNTERS = (
    "localize_calls",
    "localized_keys",
    "relocations",
    "pulls_local",
    "pulls_remote",
    "pushes_local",
    "pushes_remote",
    "key_reads_local",
    "key_reads_remote",
    "key_writes_local",
    "key_writes_remote",
)


def _run(system, backend, **kwargs):
    kwargs.setdefault("num_nodes", 2)
    kwargs.setdefault("workers_per_node", 1)
    kwargs.setdefault("scale", TINY)
    kwargs.setdefault("epochs", 2)
    kwargs.setdefault("compute_loss", True)
    kwargs.setdefault("seed", 0)
    return run_mf_experiment(system, backend=backend, **kwargs)


@pytest.mark.parametrize("system", REAL_BACKEND_SYSTEMS)
def test_mf_statistical_equivalence(system):
    sim = _run(system, "sim")
    real = _run(system, "real")
    assert real.backend == "real" and sim.backend == "sim"
    assert real.final_loss == pytest.approx(sim.final_loss, rel=1e-9)
    for counter in MIRRORED_COUNTERS:
        assert getattr(real.metrics, counter) == getattr(sim.metrics, counter), counter


def test_client_api_and_ownership_consistency():
    cluster = ClusterConfig(num_nodes=2, workers_per_node=1, seed=0)
    ps_config = ParameterServerConfig(num_keys=16, value_length=4)
    with make_parameter_server("lapse", cluster, ps_config, backend="real") as ps:
        assert isinstance(ps, RealParameterServer)

        def worker(client, worker_id):
            # Worker 0 relocates two keys homed on node 1 and writes them.
            if worker_id == 0:
                yield from client.localize([12, 13])
                yield from client.push([12, 13], np.ones((2, 4)))
            yield from client.barrier()
            values = yield from client.pull([12])
            return float(values[0, 0])

        results = ps.run_workers(worker)
        assert results == [1.0, 1.0]
        assert ps.current_owner(12) == 0 and ps.current_owner(13) == 0
        assert ps.metrics().relocations == 2
        # Ownership record is consistent: every key is resident at exactly
        # the node the shared directory names, and nowhere else.
        for key in range(16):
            owner = ps.current_owner(key)
            for node in range(2):
                assert (key in ps.states[node].storage) == (node == owner)
        np.testing.assert_array_equal(ps.parameter(12), np.ones(4))


def test_run_workers_merges_all_worker_metrics():
    cluster = ClusterConfig(num_nodes=2, workers_per_node=2, seed=0)
    ps_config = ParameterServerConfig(num_keys=8, value_length=2)
    with make_parameter_server("classic", cluster, ps_config, backend="real") as ps:

        def worker(client, worker_id):
            yield from client.push([worker_id], np.full((1, 2), 1.0))
            values = yield from client.pull([worker_id])
            return float(values[0, 0])

        results = ps.run_workers(worker)
        assert results == [1.0] * 4
        metrics = ps.metrics()
        assert metrics.pulls_local + metrics.pulls_remote == 4
        assert metrics.pushes_local + metrics.pushes_remote == 4


def test_default_backend_is_sim():
    result = _run("classic", "sim")
    assert result.backend == "sim"
    cluster = ClusterConfig(num_nodes=2, workers_per_node=1, seed=0)
    ps = make_parameter_server(
        "classic", cluster, ParameterServerConfig(num_keys=8, value_length=2)
    )
    assert not isinstance(ps, RealParameterServer)


def test_rejected_configurations():
    cluster = ClusterConfig(num_nodes=2, workers_per_node=1, seed=0)
    ps_config = ParameterServerConfig(num_keys=8, value_length=2)
    with pytest.raises(ExperimentError, match="not available on the real backend"):
        make_parameter_server("replica", cluster, ps_config, backend="real")
    with pytest.raises(ExperimentError, match="custom partitioners"):
        make_parameter_server(
            "lapse", cluster, ps_config,
            partitioner=RangePartitioner(8, 2), backend="real",
        )
    with pytest.raises(ExperimentError, match="durability"):
        make_parameter_server(
            "lapse", cluster, ps_config, durability=object(), backend="real"
        )
    with pytest.raises(ExperimentError, match="unknown backend"):
        make_parameter_server("lapse", cluster, ps_config, backend="threads")
    with pytest.raises(ExperimentError, match="low-level baseline"):
        _run("lowlevel", "real")
    with pytest.raises(ExperimentError, match="KGE"):
        run_kge_experiment("lapse", num_nodes=2, backend="real")
    with pytest.raises(ExperimentError, match="word2vec"):
        run_w2v_experiment("lapse", num_nodes=2, backend="real")
