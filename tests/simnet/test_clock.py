"""Tests for the clock abstraction shared by the execution backends.

The :class:`~repro.simnet.clock.Clock` contract is small but load-bearing:
epoch durations, relocation timestamps, and the parallel engine's window
bookkeeping all reduce to ``end - start`` against ``.now``.  These tests pin
the two implementations' observable guarantees — monotonicity and
cross-process comparability for :class:`WallClock`, and exact kernel-time
tracking (including zero-duration advances and ``until`` cutoffs) for
:class:`SimulatedClock`.
"""

import time

import pytest

from repro.simnet.clock import Clock, SimulatedClock, WallClock
from repro.simnet.kernel import Simulator


def test_base_clock_is_abstract():
    with pytest.raises(NotImplementedError):
        Clock().now


# ------------------------------------------------------------------ wall clock
def test_wallclock_starts_near_zero_and_is_monotonic():
    clock = WallClock()
    first = clock.now
    assert first >= 0.0
    readings = [clock.now for _ in range(100)]
    assert all(b >= a for a, b in zip(readings, readings[1:]))
    assert readings[0] >= first


def test_wallclock_tracks_real_elapsed_time():
    clock = WallClock()
    before = clock.now
    time.sleep(0.02)
    elapsed = clock.now - before
    assert elapsed >= 0.02


def test_wallclock_absolute_is_shared_not_relative():
    """``absolute()`` is the raw monotonic reading: two clocks created at
    different times agree on it even though their relative ``.now`` differ."""
    first = WallClock()
    time.sleep(0.01)
    second = WallClock()
    a, b = first.absolute(), second.absolute()
    assert abs(b - a) < 1.0
    # Relative readings differ by the construction gap; absolute ones do not.
    assert first.now > second.now


# ------------------------------------------------------------- simulated clock
def test_simulated_clock_reads_kernel_time():
    sim = Simulator()
    clock = SimulatedClock(sim)
    assert clock.now == 0.0
    sim.call_later(2.5, lambda _arg: None)
    sim.run()
    assert clock.now == 2.5 == sim.now


def test_simulated_clock_zero_duration_advance():
    """Processing any number of same-instant events advances the clock by
    exactly zero — durations measured around immediate work are 0.0, not a
    tiny epsilon."""
    sim = Simulator()
    clock = SimulatedClock(sim)
    sim.call_later(1.0, lambda _arg: None)
    sim.run()
    before = clock.now
    fired = []
    for index in range(50):
        sim.call_later(0.0, fired.append, index)
    sim.run()
    assert fired == list(range(50))
    assert clock.now == before == 1.0


def test_simulated_clock_respects_run_cutoff():
    """``run(until=...)`` leaves the clock at the cutoff, not at the next
    pending event, and resuming continues from there."""
    sim = Simulator()
    clock = SimulatedClock(sim)
    fired = []
    sim.call_later(1.0, fired.append, "early")
    sim.call_later(3.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert clock.now == 2.0
    sim.run()
    assert fired == ["early", "late"]
    assert clock.now == 3.0
