"""Unit tests for the FIFO message queue."""

import pytest

from repro.simnet import MessageQueue, Simulator


def test_put_then_get_returns_item_immediately():
    sim = Simulator()
    queue = MessageQueue(sim)
    queue.put("hello")

    def consumer():
        item = yield queue.get()
        return item

    assert sim.run_process(consumer()) == "hello"


def test_get_blocks_until_put():
    sim = Simulator()
    queue = MessageQueue(sim)

    def consumer():
        item = yield queue.get()
        return (item, sim.now)

    def producer():
        yield 2.0
        queue.put("late item")

    proc = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert proc.value == ("late item", 2.0)


def test_fifo_order_preserved():
    sim = Simulator()
    queue = MessageQueue(sim)
    for i in range(10):
        queue.put(i)

    def consumer():
        items = []
        for _ in range(10):
            item = yield queue.get()
            items.append(item)
        return items

    assert sim.run_process(consumer()) == list(range(10))


def test_multiple_getters_served_in_order():
    sim = Simulator()
    queue = MessageQueue(sim)
    results = []

    def consumer(tag):
        item = yield queue.get()
        results.append((tag, item))

    def producer():
        yield 1.0
        queue.put("first")
        queue.put("second")

    sim.process(consumer("a"))
    sim.process(consumer("b"))
    sim.process(producer())
    sim.run()
    assert results == [("a", "first"), ("b", "second")]


def test_len_and_counters():
    sim = Simulator()
    queue = MessageQueue(sim)
    assert len(queue) == 0
    queue.put(1)
    queue.put(2)
    assert len(queue) == 2
    assert queue.total_put == 2
    assert queue.peek_all() == [1, 2]

    def consumer():
        yield queue.get()

    sim.run_process(consumer())
    assert len(queue) == 1
    assert queue.total_put == 2


def test_waiting_getters_counter():
    sim = Simulator()
    queue = MessageQueue(sim)

    def consumer():
        yield queue.get()

    sim.process(consumer())
    sim.process(consumer())
    sim.run()
    assert queue.waiting_getters == 2
    queue.put("x")
    assert queue.waiting_getters == 1
