"""Unit tests for the simulated network and node abstractions."""

import pytest

from repro.config import ClusterConfig, CostModel, message_size
from repro.errors import NetworkError
from repro.simnet import Network, Simulator
from repro.simnet.node import Node, server_address, worker_address


def build_cluster(num_nodes=2, workers_per_node=2, cost_model=None, seed=0):
    sim = Simulator()
    config = ClusterConfig(
        num_nodes=num_nodes,
        workers_per_node=workers_per_node,
        cost_model=cost_model or CostModel(),
        seed=seed,
    )
    network = Network(sim, config.cost_model)
    nodes = [Node(sim, network, i, config) for i in range(num_nodes)]
    return sim, network, nodes


def test_register_and_lookup_addresses():
    sim, network, nodes = build_cluster()
    assert network.node_of(server_address(0)) == 0
    assert network.node_of(worker_address(1, 1)) == 1
    with pytest.raises(NetworkError):
        network.node_of(("server", 99))


def test_duplicate_address_rejected():
    sim, network, nodes = build_cluster()
    with pytest.raises(NetworkError):
        network.register(server_address(0), 0)


def test_remote_message_charged_latency_and_bandwidth():
    cost = CostModel(network_latency=1e-3, network_bandwidth=1e6)
    sim, network, nodes = build_cluster(cost_model=cost)
    size = 1000  # bytes -> 1ms transfer at 1 MB/s

    def receiver():
        payload = yield nodes[1].server_inbox.get()
        return (payload, sim.now)

    def sender():
        yield 0.0
        nodes[0].send_to_server(1, "ping", size)

    recv = sim.process(receiver())
    sim.process(sender())
    sim.run()
    payload, arrival = recv.value
    assert payload == "ping"
    assert arrival == pytest.approx(1e-3 + size / 1e6)


def test_local_message_uses_ipc_latency():
    cost = CostModel(ipc_access_latency=5e-6)
    sim, network, nodes = build_cluster(cost_model=cost)

    def receiver():
        yield nodes[0].server_inbox.get()
        return sim.now

    def sender():
        yield 0.0
        nodes[0].send_to_server(0, "local", 10_000)

    recv = sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert recv.value == pytest.approx(5e-6)


def test_fifo_order_on_channel_with_different_sizes():
    # A huge message sent first must not be overtaken by a tiny one sent later.
    cost = CostModel(network_latency=1e-4, network_bandwidth=1e6)
    sim, network, nodes = build_cluster(cost_model=cost)
    received = []

    def receiver():
        for _ in range(2):
            payload = yield nodes[1].server_inbox.get()
            received.append((payload, sim.now))

    def sender():
        nodes[0].send_to_server(1, "big", 1_000_000)  # 1 second of transfer
        yield 1e-6
        nodes[0].send_to_server(1, "small", 1)

    sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert [p for p, _ in received] == ["big", "small"]
    assert received[0][1] <= received[1][1]


def test_network_stats_accounting():
    sim, network, nodes = build_cluster()
    size = message_size(num_keys=2, num_values=16)

    def sender():
        nodes[0].send_to_server(1, "a", size)
        nodes[0].send_to_server(0, "b", size)
        yield 0.0

    def receiver_remote():
        yield nodes[1].server_inbox.get()

    def receiver_local():
        yield nodes[0].server_inbox.get()

    sim.process(receiver_remote())
    sim.process(receiver_local())
    sim.process(sender())
    sim.run()
    assert network.stats.messages_sent == 2
    assert network.stats.remote_messages == 1
    assert network.stats.local_messages == 1
    assert network.stats.bytes_sent == size
    assert network.stats.per_channel_messages == {(0, 1): 1}


def test_negative_message_size_rejected():
    sim, network, nodes = build_cluster()
    with pytest.raises(NetworkError):
        network.send(0, server_address(1), "x", -5)


def test_worker_addressing_and_send_to_worker():
    sim, network, nodes = build_cluster(num_nodes=2, workers_per_node=3)

    def receiver():
        payload = yield nodes[1].worker_inboxes[2].get()
        return payload

    def sender():
        yield 0.0
        nodes[0].send_to_worker(1, 2, "for worker 2", 100)

    recv = sim.process(receiver())
    sim.process(sender())
    sim.run()
    assert recv.value == "for worker 2"


def test_node_rng_deterministic_per_seed():
    _, _, nodes_a = build_cluster(seed=7)
    _, _, nodes_b = build_cluster(seed=7)
    _, _, nodes_c = build_cluster(seed=8)
    a = nodes_a[0].rng.integers(0, 1_000_000, size=5)
    b = nodes_b[0].rng.integers(0, 1_000_000, size=5)
    c = nodes_c[0].rng.integers(0, 1_000_000, size=5)
    assert list(a) == list(b)
    assert list(a) != list(c)


def test_worker_rngs_independent():
    _, _, nodes = build_cluster()
    r0 = nodes[0].worker_rng(0).integers(0, 1_000_000, size=5)
    r1 = nodes[0].worker_rng(1).integers(0, 1_000_000, size=5)
    assert list(r0) != list(r1)
    with pytest.raises(NetworkError):
        nodes[0].worker_rng(99)


def test_invalid_node_id_rejected():
    sim = Simulator()
    config = ClusterConfig(num_nodes=2, workers_per_node=1)
    network = Network(sim, config.cost_model)
    with pytest.raises(NetworkError):
        Node(sim, network, 5, config)


# ----------------------------------------------------------- node lifecycle
def test_failed_node_drops_incoming_messages():
    sim, network, nodes = build_cluster()
    network.fail_node(1)
    assert not nodes[1].alive
    nodes[0].send_to_server(1, "lost", 100)
    sim.run()
    assert network.stats.dropped_messages == 1
    assert network.stats.messages_sent == 0
    assert network.stats.bytes_sent == 0
    assert sim.now == 0.0  # nothing was scheduled


def test_failed_node_drops_outgoing_messages():
    sim, network, nodes = build_cluster()
    network.fail_node(0)
    nodes[0].send_to_server(1, "from the dead", 100)
    sim.run()
    assert network.stats.dropped_messages == 1
    assert network.stats.remote_messages == 0


def test_restore_node_reconnects():
    sim, network, nodes = build_cluster()
    nodes[1].fail()
    network.restore_node(1)
    assert nodes[1].alive

    def receiver():
        payload = yield nodes[1].server_inbox.get()
        return payload

    recv = sim.process(receiver())
    nodes[0].send_to_server(1, "hello again", 50)
    sim.run()
    assert recv.value == "hello again"
    assert network.stats.dropped_messages == 0


def test_healthy_traffic_unaffected_by_other_failures():
    sim, network, nodes = build_cluster(num_nodes=3)
    network.fail_node(2)

    def receiver():
        payload = yield nodes[1].server_inbox.get()
        return payload

    recv = sim.process(receiver())
    nodes[0].send_to_server(1, "fine", 50)
    sim.run()
    assert recv.value == "fine"
    assert network.stats.remote_messages == 1
