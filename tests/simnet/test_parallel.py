"""Unit tests for the parallel shard engine building blocks.

The end-to-end bit-identity bar lives in
``tests/experiments/test_parallel_identity.py``; this file covers the
pieces in isolation: the node partition, the kernel's shard mode (lineage
keys, ``run_window`` bounds), and the eligibility gate that decides when a
workload falls back to the sequential engine.
"""

import warnings

import pytest

from repro.config import ClusterConfig, ParameterServerConfig
from repro.errors import ExperimentError, SimulationError
from repro.experiments import make_parameter_server
from repro.simnet.kernel import Simulator
from repro.simnet.parallel import (
    make_shard_plan,
    parallel_fallback_reason,
    warn_parallel_fallback,
)


# ------------------------------------------------------------------ shard plan
def test_plan_partitions_nodes_into_contiguous_blocks():
    plan = make_shard_plan(num_nodes=8, jobs=4, lookahead=0.5)
    assert plan.num_shards == 4
    assert plan.shard_nodes == [[0, 1], [2, 3], [4, 5], [6, 7]]
    assert plan.node_ranks == {n: n // 2 for n in range(8)}
    assert plan.lookahead == 0.5


def test_plan_caps_shards_at_node_count():
    plan = make_shard_plan(num_nodes=3, jobs=8, lookahead=0.1)
    assert plan.num_shards == 3
    assert plan.shard_nodes == [[0], [1], [2]]


def test_plan_spreads_uneven_remainders():
    plan = make_shard_plan(num_nodes=5, jobs=2, lookahead=0.1)
    assert plan.num_shards == 2
    # Every node appears exactly once and blocks stay contiguous.
    assert sorted(n for nodes in plan.shard_nodes for n in nodes) == [0, 1, 2, 3, 4]
    assert all(nodes == sorted(nodes) for nodes in plan.shard_nodes)
    assert max(len(nodes) for nodes in plan.shard_nodes) <= 3


# ------------------------------------------------------------------ simulator
def test_simulator_rejects_invalid_jobs():
    with pytest.raises(SimulationError):
        Simulator(jobs=0)


def test_make_parameter_server_rejects_invalid_engine_combinations():
    cluster = ClusterConfig(num_nodes=2, workers_per_node=1)
    config = ParameterServerConfig(num_keys=4, value_length=2)
    with pytest.raises(ExperimentError):
        make_parameter_server("lapse", cluster, config, engine="bogus")
    with pytest.raises(ExperimentError):
        make_parameter_server("lapse", cluster, config, jobs=0)
    with pytest.raises(ExperimentError):
        make_parameter_server(
            "lapse", cluster, config, backend="real", engine="parallel"
        )


def test_jobs_flow_into_the_simulator():
    cluster = ClusterConfig(num_nodes=4, workers_per_node=1)
    config = ParameterServerConfig(num_keys=4, value_length=2)
    ps = make_parameter_server("lapse", cluster, config, jobs=3)
    assert ps.jobs == 3
    assert ps.sim.jobs == 3


# ------------------------------------------------------------------ shard mode
def test_enter_shard_mode_requires_a_drained_ring():
    sim = Simulator()
    order = []
    sim.call_later(0.0, order.append, "immediate")
    with pytest.raises(SimulationError):
        sim.enter_shard_mode(0)


def test_enter_shard_mode_is_not_reentrant():
    sim = Simulator()
    sim.enter_shard_mode(0)
    with pytest.raises(SimulationError):
        sim.enter_shard_mode(1)


def test_run_window_requires_shard_mode():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run_window(1.0)


def test_run_window_upper_bound_is_exclusive():
    sim = Simulator()
    order = []
    sim.call_later(1.0, order.append, "at-bound")
    sim.call_later(0.5, order.append, "inside")
    sim.enter_shard_mode(0)
    sim.run_window(1.0)
    assert order == ["inside"]
    assert sim.now == 0.5  # the clock does not jump to an empty bound
    sim.run_window(1.5)
    assert order == ["inside", "at-bound"]
    assert sim.now == 1.0


def test_run_window_preserves_pre_fork_order_and_cascades():
    """Pre-fork heap entries keep their global order; same-instant children
    scheduled during the window run after every older heap entry at that
    instant — exactly like the sequential fastpath (ring entries are newer
    than any heap entry at the current time)."""
    sim = Simulator()
    order = []

    def cascade(tag):
        order.append(tag)
        if tag == "a":
            sim.call_later(0.0, order.append, "a-child")

    sim.call_later(1.0, cascade, "a")
    sim.call_later(1.0, cascade, "b")
    sim.enter_shard_mode(0)
    sim.run_window(2.0)
    assert order == ["a", "b", "a-child"]


def test_schedule_foreign_merges_by_sender_lineage():
    """A foreign record scheduled at an earlier instant sorts ahead of a
    local event at the same delivery time (smaller sched_time => smaller
    sequential sequence number)."""
    sim = Simulator()
    order = []
    sim.call_later(1.0, order.append, "local")  # pre-fork, sched_time -1.0
    sim.enter_shard_mode(0)
    # Sender lineage: scheduled at t=0.2 by another shard's root context.
    sim.schedule_foreign(1.0, (0.2, (), 1, 7, 0), order.append, "foreign")
    sim.run_window(2.0)
    assert order == ["local", "foreign"]


# ------------------------------------------------------------------ fallbacks
def _make_ps(num_nodes=4, **kwargs):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=1)
    config = ParameterServerConfig(num_keys=4, value_length=2)
    return make_parameter_server("lapse", cluster, config, **kwargs)


def test_eligible_workload_has_no_fallback_reason():
    assert parallel_fallback_reason(_make_ps()) is None


def test_fallback_on_time_cutoff():
    assert "cutoff" in parallel_fallback_reason(_make_ps(), until=1.0)


def test_fallback_on_single_node_cluster():
    assert "single node" in parallel_fallback_reason(_make_ps(num_nodes=1))


def test_fallback_on_reference_engine(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "1")
    assert "reference engine" in parallel_fallback_reason(_make_ps())


def test_fallback_on_failed_nodes():
    ps = _make_ps()
    ps.network.fail_node(3)
    assert "failed nodes" in parallel_fallback_reason(ps)


def test_fallback_on_elastic_membership():
    from repro.cluster import ClusterSchedule
    from repro.experiments.runner import make_elastic_mf

    elastic, _trainer = make_elastic_mf(
        "lapse", num_nodes=2, schedule=ClusterSchedule(), workers_per_node=1
    )
    assert "elastic" in parallel_fallback_reason(elastic.ps)


def test_fallback_warning_fires_once_per_server():
    ps = _make_ps(num_nodes=1)
    ps.jobs = 2

    def idle_worker(client, worker_id):
        return
        yield  # pragma: no cover - makes this a generator function

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ps.run_workers(idle_worker)
        ps.run_workers(idle_worker)
    messages = [w for w in caught if w.category is RuntimeWarning]
    assert len(messages) == 1
    assert "single node" in str(messages[0].message)


def test_warn_parallel_fallback_mentions_the_reason():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_parallel_fallback("it is raining")
    assert any("it is raining" in str(w.message) for w in caught)
