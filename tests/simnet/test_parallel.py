"""Unit tests for the parallel shard engine building blocks.

The end-to-end bit-identity bar lives in
``tests/experiments/test_parallel_identity.py``; this file covers the
pieces in isolation: the node partition, the kernel's shard mode (lineage
keys, ``run_window`` bounds), and the eligibility gate that decides when a
workload falls back to the sequential engine.
"""

import warnings

import pytest

from repro.config import ClusterConfig, CostModel, ParameterServerConfig
from repro.errors import ExperimentError, SimulationError
from repro.experiments import make_parameter_server
from repro.simnet.kernel import Simulator
from repro.simnet.parallel import (
    make_shard_plan,
    parallel_fallback_reason,
    rebalance_shard_plan,
    reset_fallback_warnings,
    warn_parallel_fallback,
)


# ------------------------------------------------------------------ shard plan
def test_plan_partitions_nodes_into_contiguous_blocks():
    plan = make_shard_plan(num_nodes=8, jobs=4, lookahead=0.5)
    assert plan.num_shards == 4
    assert plan.shard_nodes == [[0, 1], [2, 3], [4, 5], [6, 7]]
    assert plan.node_ranks == {n: n // 2 for n in range(8)}
    assert plan.lookahead == 0.5


def test_plan_caps_shards_at_node_count():
    plan = make_shard_plan(num_nodes=3, jobs=8, lookahead=0.1)
    assert plan.num_shards == 3
    assert plan.shard_nodes == [[0], [1], [2]]


def test_plan_spreads_uneven_remainders():
    plan = make_shard_plan(num_nodes=5, jobs=2, lookahead=0.1)
    assert plan.num_shards == 2
    # Every node appears exactly once and blocks stay contiguous.
    assert sorted(n for nodes in plan.shard_nodes for n in nodes) == [0, 1, 2, 3, 4]
    assert all(nodes == sorted(nodes) for nodes in plan.shard_nodes)
    assert max(len(nodes) for nodes in plan.shard_nodes) <= 3


@pytest.mark.parametrize("num_nodes", (7, 11, 13))
@pytest.mark.parametrize("jobs", (2, 3, 4))
def test_plan_prime_node_counts_stay_contiguous_and_complete(num_nodes, jobs):
    """Prime node counts (worst case for even splits) still partition cleanly."""
    plan = make_shard_plan(num_nodes=num_nodes, jobs=jobs, lookahead=0.1)
    assert plan.num_shards == jobs
    flat = [n for nodes in plan.shard_nodes for n in nodes]
    assert sorted(flat) == list(range(num_nodes))
    assert all(nodes == sorted(nodes) for nodes in plan.shard_nodes)
    assert all(nodes for nodes in plan.shard_nodes)  # no empty shard
    # Contiguous blocks within one node of the even share.
    sizes = [len(nodes) for nodes in plan.shard_nodes]
    assert max(sizes) - min(sizes) <= 1
    assert plan.node_ranks == {n: plan.node_ranks[n] for n in range(num_nodes)}


def test_plan_with_more_jobs_than_nodes_caps_and_covers():
    plan = make_shard_plan(num_nodes=2, jobs=16, lookahead=0.2)
    assert plan.num_shards == 2
    assert plan.shard_nodes == [[0], [1]]
    assert plan.node_ranks == {0: 0, 1: 1}


def test_plan_lookahead_derives_from_the_cost_model():
    """The conservative lookahead follows the cluster's cost model, so two
    clusters with differing channel cost models get differing window sizes."""
    from repro.simnet.parallel import run_workers_parallel  # noqa: F401  (import check)

    for factor in (0.5, 1.0, 4.0):
        cost_model = CostModel().scaled(factor)
        cluster = ClusterConfig(
            num_nodes=4, workers_per_node=1, cost_model=cost_model
        )
        config = ParameterServerConfig(num_keys=4, value_length=2)
        ps = make_parameter_server("lapse", cluster, config)
        plan = make_shard_plan(
            cluster.num_nodes, 2, ps.cluster.cost_model.network_latency
        )
        assert plan.lookahead == cost_model.network_latency
        assert plan.lookahead == pytest.approx(150e-6 * factor)


# ------------------------------------------------------------------ rebalance
def _contiguous_plan():
    return make_shard_plan(num_nodes=4, jobs=2, lookahead=0.1)


def test_rebalance_keeps_the_plan_below_the_skew_threshold():
    plan = _contiguous_plan()
    new_plan, skew = rebalance_shard_plan(plan, [100, 100], {0: 50, 1: 50, 2: 50, 3: 50})
    assert new_plan is plan
    assert skew == 1.0


def test_rebalance_moves_nodes_off_the_hot_shard():
    plan = _contiguous_plan()  # {0,1} | {2,3}
    # Shard 0 executed nearly everything; nodes 0 and 1 carry the load.
    new_plan, skew = rebalance_shard_plan(
        plan, [1000, 50], {0: 100, 1: 100, 2: 5, 3: 5}
    )
    assert skew > 1.5
    assert new_plan is not plan
    ranks = new_plan.node_ranks
    # The two heavy nodes end up on different shards.
    assert ranks[0] != ranks[1]
    # Every node still assigned, no empty shard.
    assert sorted(n for nodes in new_plan.shard_nodes for n in nodes) == [0, 1, 2, 3]
    assert all(nodes for nodes in new_plan.shard_nodes)
    # Movement-minimizing: node 0 (heaviest, placed first) stays put.
    assert ranks[0] == plan.node_ranks[0]
    assert new_plan.lookahead == plan.lookahead


def test_rebalance_is_deterministic():
    plan = _contiguous_plan()
    args = ([900, 100], {0: 80, 1: 80, 2: 10, 3: 10})
    first, _ = rebalance_shard_plan(plan, *args)
    second, _ = rebalance_shard_plan(plan, *args)
    assert first.node_ranks == second.node_ranks
    assert first.shard_nodes == second.shard_nodes


def test_rebalance_keeps_the_plan_on_degenerate_weights():
    plan = _contiguous_plan()
    # Skewed events but no delivery signal at all: nothing to balance on.
    new_plan, skew = rebalance_shard_plan(plan, [1000, 1], {})
    assert new_plan is plan
    assert skew > 1.5
    # Zero events: trivially unchanged.
    unchanged, skew = rebalance_shard_plan(plan, [0, 0], {})
    assert unchanged is plan and skew == 1.0


# ------------------------------------------------------------------ simulator
def test_simulator_rejects_invalid_jobs():
    with pytest.raises(SimulationError):
        Simulator(jobs=0)


def test_make_parameter_server_rejects_invalid_engine_combinations():
    cluster = ClusterConfig(num_nodes=2, workers_per_node=1)
    config = ParameterServerConfig(num_keys=4, value_length=2)
    with pytest.raises(ExperimentError):
        make_parameter_server("lapse", cluster, config, engine="bogus")
    with pytest.raises(ExperimentError):
        make_parameter_server("lapse", cluster, config, jobs=0)
    with pytest.raises(ExperimentError):
        make_parameter_server(
            "lapse", cluster, config, backend="real", engine="parallel"
        )


def test_jobs_flow_into_the_simulator():
    cluster = ClusterConfig(num_nodes=4, workers_per_node=1)
    config = ParameterServerConfig(num_keys=4, value_length=2)
    ps = make_parameter_server("lapse", cluster, config, jobs=3)
    assert ps.jobs == 3
    assert ps.sim.jobs == 3


# ------------------------------------------------------------------ shard mode
def test_enter_shard_mode_requires_a_drained_ring():
    sim = Simulator()
    order = []
    sim.call_later(0.0, order.append, "immediate")
    with pytest.raises(SimulationError):
        sim.enter_shard_mode(0)


def test_enter_shard_mode_is_not_reentrant():
    sim = Simulator()
    sim.enter_shard_mode(0)
    with pytest.raises(SimulationError):
        sim.enter_shard_mode(1)


def test_run_window_requires_shard_mode():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run_window(1.0)


def test_run_window_upper_bound_is_exclusive():
    sim = Simulator()
    order = []
    sim.call_later(1.0, order.append, "at-bound")
    sim.call_later(0.5, order.append, "inside")
    sim.enter_shard_mode(0)
    sim.run_window(1.0)
    assert order == ["inside"]
    assert sim.now == 0.5  # the clock does not jump to an empty bound
    sim.run_window(1.5)
    assert order == ["inside", "at-bound"]
    assert sim.now == 1.0


def test_run_window_preserves_pre_fork_order_and_cascades():
    """Pre-fork heap entries keep their global order; same-instant children
    scheduled during the window run after every older heap entry at that
    instant — exactly like the sequential fastpath (ring entries are newer
    than any heap entry at the current time)."""
    sim = Simulator()
    order = []

    def cascade(tag):
        order.append(tag)
        if tag == "a":
            sim.call_later(0.0, order.append, "a-child")

    sim.call_later(1.0, cascade, "a")
    sim.call_later(1.0, cascade, "b")
    sim.enter_shard_mode(0)
    sim.run_window(2.0)
    assert order == ["a", "b", "a-child"]


def test_schedule_foreign_merges_by_sender_lineage():
    """A foreign record scheduled at an earlier instant sorts ahead of a
    local event at the same delivery time (smaller sched_time => smaller
    sequential sequence number)."""
    sim = Simulator()
    order = []
    sim.call_later(1.0, order.append, "local")  # pre-fork, sched_time -1.0
    sim.enter_shard_mode(0)
    # Sender lineage: scheduled at t=0.2 by another shard's root context.
    sim.schedule_foreign(1.0, (0.2, (), 1, 7, 0), order.append, "foreign")
    sim.run_window(2.0)
    assert order == ["local", "foreign"]


# ------------------------------------------------------------------ fallbacks
def _make_ps(num_nodes=4, **kwargs):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=1)
    config = ParameterServerConfig(num_keys=4, value_length=2)
    return make_parameter_server("lapse", cluster, config, **kwargs)


def test_eligible_workload_has_no_fallback_reason():
    assert parallel_fallback_reason(_make_ps()) is None


def test_fallback_on_time_cutoff():
    assert "cutoff" in parallel_fallback_reason(_make_ps(), until=1.0)


def test_fallback_on_single_node_cluster():
    assert "single node" in parallel_fallback_reason(_make_ps(num_nodes=1))


def test_fallback_on_reference_engine(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "1")
    assert "reference engine" in parallel_fallback_reason(_make_ps())


def test_fallback_on_failed_nodes():
    """A currently-failed node means recovery is still in progress; the
    epoch stays sequential.  Once the node is restored, sharding resumes."""
    ps = _make_ps()
    ps.network.fail_node(3)
    assert "failed nodes" in parallel_fallback_reason(ps)
    ps.network.restore_node(3)
    assert parallel_fallback_reason(ps) is None


def test_elastic_membership_no_longer_forces_a_fallback():
    from repro.cluster import ClusterSchedule
    from repro.experiments.runner import make_elastic_mf

    elastic, _trainer = make_elastic_mf(
        "lapse", num_nodes=2, schedule=ClusterSchedule(), workers_per_node=1
    )
    assert parallel_fallback_reason(elastic.ps) is None


def test_fallback_on_pending_fail_event():
    from repro.cluster import ClusterSchedule
    from repro.experiments.runner import make_elastic_mf

    schedule = ClusterSchedule().fail(5.0, node=1)
    elastic, _trainer = make_elastic_mf(
        "lapse", num_nodes=2, schedule=schedule, workers_per_node=1
    )
    assert "fail event" in parallel_fallback_reason(elastic.ps)


def test_fallback_on_membership_event_already_due():
    from repro.cluster import ClusterSchedule
    from repro.experiments.runner import make_elastic_mf

    schedule = ClusterSchedule().join(0.0, node=1)
    elastic, _trainer = make_elastic_mf(
        "lapse", num_nodes=2, initial_nodes=(0,), schedule=schedule,
        workers_per_node=1,
    )
    assert "already due" in parallel_fallback_reason(elastic.ps)


def test_fallback_on_wal_truncation():
    from repro.durability import DurabilityConfig

    ps = _make_ps(
        durability=DurabilityConfig(
            checkpoint_interval=1.0, truncate_on_checkpoint=True
        )
    )
    assert "truncation" in parallel_fallback_reason(ps)


def test_fallback_warning_fires_once_per_reason_per_process():
    reset_fallback_warnings()
    ps = _make_ps(num_nodes=1)
    ps.jobs = 2
    other = _make_ps(num_nodes=1)
    other.jobs = 2

    def idle_worker(client, worker_id):
        return
        yield  # pragma: no cover - makes this a generator function

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ps.run_workers(idle_worker)
        ps.run_workers(idle_worker)
        other.run_workers(idle_worker)  # same reason, different server: still deduped
        warn_parallel_fallback("some other reason")  # distinct reason: warns again
    messages = [w for w in caught if w.category is RuntimeWarning]
    assert len(messages) == 2
    assert "single node" in str(messages[0].message)
    assert "some other reason" in str(messages[1].message)
    # The per-run result record still captures the reason even when the
    # warning itself was deduplicated.
    assert ps._last_fallback_reason is not None
    assert other._last_fallback_reason is not None
    assert ps._last_effective_jobs == 1
    reset_fallback_warnings()


def test_fallback_emits_a_trace_marker():
    from repro.obs import TraceConfig

    reset_fallback_warnings()
    ps = _make_ps(num_nodes=1, trace=TraceConfig())
    ps.jobs = 2

    def idle_worker(client, worker_id):
        return
        yield  # pragma: no cover - makes this a generator function

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ps.run_workers(idle_worker)
    reset_fallback_warnings()
    markers = [
        (name, args)
        for trace in ps.tracer.node_traces()
        for (_at, name, args) in trace.markers
    ]
    fallbacks = [args for name, args in markers if name == "parallel:fallback"]
    assert len(fallbacks) == 1
    assert "single node" in fallbacks[0]["reason"]
    assert fallbacks[0]["jobs"] == 2


def test_warn_parallel_fallback_mentions_the_reason():
    reset_fallback_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_parallel_fallback("it is raining")
    assert any("it is raining" in str(w.message) for w in caught)
    reset_fallback_warnings()
