"""Tests for the simulation-engine fast paths.

Covers the hot-path machinery introduced by the engine overhaul:

* the immediate-dispatch ring (same-time FIFO ordering identical to the
  heap-only reference engine),
* event-pool reuse safety (recycled events never fire stale callbacks or
  leak values),
* message coalescing (one kernel delivery event per (destination, instant),
  logical counters unchanged, delivery order preserved),
* absolute-time wake-ups (``Simulator.wake_at``) used by fused worker steps,
* the ``REPRO_DISABLE_FASTPATH`` toggle itself.

The end-to-end bit-identity sweep across all systems and workloads lives in
``tests/experiments/test_fastpath_identity.py``.
"""

import pytest

from repro.config import CostModel
from repro.errors import SimulationError
from repro.simnet import Event, Network, Simulator
from repro.simnet.kernel import fastpath_disabled


@pytest.fixture(autouse=True)
def _fast_engine(monkeypatch):
    """Default every test to the fast engine, whatever the ambient env says.

    Tests that exercise the reference engine set the variable themselves via
    their own ``monkeypatch`` argument (which layers on top of this one).
    """
    monkeypatch.delenv("REPRO_DISABLE_FASTPATH", raising=False)


# ----------------------------------------------------------------- the toggle
def test_fastpath_toggle_read_at_construction(monkeypatch):
    monkeypatch.delenv("REPRO_DISABLE_FASTPATH", raising=False)
    assert not fastpath_disabled()
    assert Simulator().fastpath
    monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "1")
    assert fastpath_disabled()
    assert not Simulator().fastpath
    # "0" and empty mean enabled (convenient for scripted toggling).
    monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "0")
    assert Simulator().fastpath


# --------------------------------------------------------- same-time ordering
def _trigger_order_scenario(sim):
    """A scenario mixing heap timeouts and zero-delay (ring) events.

    Returns the processing order of tags.  Heap entries scheduled for a past
    instant's future and zero-delay events created while the clock sits at
    that instant must interleave exactly by trigger order.
    """
    order = []

    def waiter(tag, event):
        value = yield event
        order.append((tag, value, sim.now))

    def driver():
        yield 1.0
        # At t=1.0: fire zero-delay events; pre-scheduled timeouts for t=1.0
        # already sit in the heap with older sequence numbers.
        late.succeed("late")
        later.succeed("later")
        order.append(("driver", None, sim.now))
        yield 0.0
        order.append(("driver-after-ring", None, sim.now))

    def timed(tag, delay):
        yield delay
        order.append((tag, None, sim.now))

    late = Event(sim)
    later = Event(sim)
    sim.process(waiter("w1", late))
    sim.process(waiter("w2", later))
    sim.process(timed("t1", 1.0))
    sim.process(driver())
    sim.process(timed("t2", 1.0))
    sim.run()
    return order


def test_same_time_fifo_matches_reference_engine(monkeypatch):
    monkeypatch.delenv("REPRO_DISABLE_FASTPATH", raising=False)
    fast = _trigger_order_scenario(Simulator())
    monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "1")
    reference = _trigger_order_scenario(Simulator())
    assert fast == reference
    assert fast[0][0] == "t1"  # pre-scheduled heap entries first, FIFO


def test_ring_drains_in_fifo_order():
    sim = Simulator()
    order = []

    def root():
        yield 1.0
        for tag in range(5):
            event = Event(sim)
            event.callbacks.append(lambda _e, t=tag: order.append(t))
            event.succeed(None)  # zero delay -> ring
        yield 0.0

    sim.run_process(root())
    assert order == [0, 1, 2, 3, 4]


def test_pending_events_and_peek_time_include_ring():
    sim = Simulator()
    event = Event(sim)
    sim.run(until=2.0)
    event.succeed(None)  # zero delay at t=2 -> ring
    assert sim.pending_events == 1
    assert sim.peek_time() == 2.0
    sim.step()
    assert sim.pending_events == 0
    assert sim.peek_time() is None


# ----------------------------------------------------------------- event pool
def test_pooled_events_are_recycled():
    sim = Simulator()
    event = sim.acquire_event()
    assert event._pooled
    event.succeed("payload")
    sim.run()
    assert sim._event_pool  # recycled after processing
    again = sim.acquire_event()
    assert again is event  # freelist reuse
    assert not again.triggered and not again.processed
    assert again._value is None


def test_recycled_event_drops_stale_callbacks():
    sim = Simulator()
    fired = []
    event = sim.acquire_event()
    event.succeed("first")
    sim.run()
    # Appending to a processed event never fires (documented contract); with
    # pooling, the append must ALSO not leak into the next incarnation.
    event.callbacks.append(lambda _e: fired.append("stale"))
    reused = sim.acquire_event()
    assert reused is event
    reused.callbacks.append(lambda _e: fired.append("fresh"))
    reused.succeed(None)
    sim.run()
    assert fired == ["fresh"]


def test_pool_disabled_under_reference_engine(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "1")
    sim = Simulator()
    event = sim.acquire_event()
    assert not event._pooled
    event.succeed(None)
    sim.run()
    assert not sim._event_pool


def test_pool_is_bounded():
    from repro.simnet.kernel import _POOL_MAX

    sim = Simulator()
    for _ in range(_POOL_MAX + 50):
        sim.acquire_event().succeed(None)
    sim.run()
    assert len(sim._event_pool) <= _POOL_MAX


# -------------------------------------------------------------------- wake_at
def test_wake_at_resumes_at_exact_absolute_time():
    sim = Simulator()

    def proc():
        yield 0.25
        yield sim.wake_at(1.0)
        return sim.now

    assert sim.run_process(proc()) == 1.0


def test_wake_at_rejects_past_times():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.wake_at(4.0)


def test_wake_at_current_instant_processes_after_pending_heap():
    sim = Simulator()
    order = []

    def sleeper():
        yield 1.0
        order.append("timeout")

    def waker():
        yield 1.0 - 0.5
        yield 0.5
        # Now at t=1.0 with sleeper's timeout pending in the heap.
        yield sim.wake_at(1.0)
        order.append("wake")

    sim.process(waker())
    sim.process(sleeper())
    sim.run()
    assert order == ["timeout", "wake"]


# ---------------------------------------------------------- message coalescing
def _flat_cost() -> CostModel:
    return CostModel(network_latency=1e-3, network_bandwidth=1e12)


def test_same_instant_deliveries_share_one_event():
    sim = Simulator()
    network = Network(sim, _flat_cost())
    inbox = network.register("dst", 1)
    network.register("src", 0)
    network.send(0, "dst", "a", 0)
    network.send(0, "dst", "b", 0)  # same size, same instant -> same arrival
    network.send(0, "dst", "c", 0)
    stats = network.stats
    assert stats.messages_sent == 3
    assert stats.remote_messages == 3
    assert stats.delivery_events == 1
    assert stats.coalesced_messages == 2
    sim.run()
    assert inbox.peek_all() == ["a", "b", "c"]
    assert not network._pending_batches  # batch table cleaned on delivery


def test_different_instants_do_not_coalesce():
    sim = Simulator()
    network = Network(sim, _flat_cost())
    network.register("dst", 1)
    network.send(0, "dst", "big", 10_000_000)  # bandwidth-limited arrival
    network.send(0, "dst", "small", 0)  # FIFO clamps it to the same arrival
    network.send(0, "dst", "later", 20_000_000)  # strictly later arrival
    stats = network.stats
    # "small" is clamped onto "big"'s arrival instant and coalesces with it;
    # "later" arrives strictly later and gets its own delivery event.
    assert stats.delivery_events == 2
    assert stats.coalesced_messages == 1
    sim.run()
    assert network.mailbox("dst").peek_all() == ["big", "small", "later"]


def test_coalescing_disabled_under_reference_engine(monkeypatch):
    monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "1")
    sim = Simulator()
    network = Network(sim, _flat_cost())
    inbox = network.register("dst", 1)
    network.send(0, "dst", "a", 0)
    network.send(0, "dst", "b", 0)
    assert network.stats.delivery_events == 2
    assert network.stats.coalesced_messages == 0
    sim.run()
    assert inbox.peek_all() == ["a", "b"]


def test_coalesced_delivery_is_deterministic(monkeypatch):
    """Same scenario, fast vs reference engine: identical order and times."""

    def run_once():
        sim = Simulator()
        network = Network(sim, _flat_cost())
        inbox = network.register("dst", 1)
        network.register("other", 2)
        received = []

        def consumer():
            while True:
                payload = yield inbox.get()
                received.append((payload, sim.now))

        def producer():
            for round_index in range(3):
                for payload in ("x", "y", "z"):
                    network.send(0, "dst", f"{payload}{round_index}", 64)
                yield 5e-4

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        return received

    monkeypatch.delenv("REPRO_DISABLE_FASTPATH", raising=False)
    fast = run_once()
    monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "1")
    reference = run_once()
    assert fast == reference


def test_sink_receives_at_delivery_instant():
    sim = Simulator()
    network = Network(sim, _flat_cost())
    network.register("dst", 1)
    received = []
    network.attach_sink("dst", lambda payload: received.append((payload, sim.now)))
    network.send(0, "dst", "a", 0)
    network.send(0, "dst", "b", 0)
    sim.run()
    assert received == [("a", 1e-3), ("b", 1e-3)]


def test_sink_requires_registered_address():
    sim = Simulator()
    network = Network(sim, _flat_cost())
    from repro.errors import NetworkError

    with pytest.raises(NetworkError):
        network.attach_sink("nowhere", lambda payload: None)
