"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import ProcessError, SimulationError
from repro.simnet import AllOf, AnyOf, Event, Simulator, Timeout


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending_events == 0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield 1.5
        return "done"

    result = sim.run_process(proc())
    assert result == "done"
    assert sim.now == pytest.approx(1.5)


def test_nested_timeouts_accumulate():
    sim = Simulator()

    def proc():
        yield 1.0
        yield 2.0
        yield 0.5
        return sim.now

    result = sim.run_process(proc())
    assert result == pytest.approx(3.5)


def test_zero_delay_timeout_is_allowed():
    sim = Simulator()

    def proc():
        yield 0.0
        return sim.now

    assert sim.run_process(proc()) == 0.0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Timeout(sim, -1.0)


def test_event_succeed_value_passed_to_waiter():
    sim = Simulator()
    event = sim.event()

    def trigger():
        yield 2.0
        event.succeed("payload")

    def waiter():
        value = yield event
        return value

    sim.process(trigger())
    proc = sim.process(waiter())
    sim.run()
    assert proc.value == "payload"
    assert sim.now == pytest.approx(2.0)


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value


def test_event_fail_propagates_to_waiter():
    sim = Simulator()
    event = sim.event()

    def trigger():
        yield 1.0
        event.fail(ValueError("boom"))

    def waiter():
        try:
            yield event
        except ValueError as exc:
            return f"caught {exc}"
        return "not caught"

    sim.process(trigger())
    proc = sim.process(waiter())
    sim.run()
    assert proc.value == "caught boom"


def test_process_exception_without_waiter_raises():
    sim = Simulator()

    def broken():
        yield 1.0
        raise RuntimeError("broken process")

    sim.process(broken())
    with pytest.raises(RuntimeError, match="broken process"):
        sim.run()


def test_process_waits_for_other_process():
    sim = Simulator()

    def child():
        yield 3.0
        return 42

    def parent():
        result = yield sim.process(child())
        return result + 1

    assert sim.run_process(parent()) == 43
    assert sim.now == pytest.approx(3.0)


def test_same_time_events_processed_in_trigger_order():
    sim = Simulator()
    order = []

    def proc(tag):
        yield 1.0
        order.append(tag)

    for tag in range(5):
        sim.process(proc(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_early():
    sim = Simulator()

    def proc():
        yield 10.0
        return "late"

    handle = sim.process(proc())
    sim.run(until=4.0)
    assert sim.now == pytest.approx(4.0)
    assert handle.is_alive
    sim.run()
    assert handle.value == "late"


def test_run_until_in_past_rejected():
    sim = Simulator()
    sim.run_process(iter_timeout(sim, 5.0))
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def iter_timeout(sim, delay):
    yield delay


def test_yielding_unsupported_object_raises():
    sim = Simulator()

    def proc():
        yield "not an event"

    sim.process(proc())
    with pytest.raises(ProcessError):
        sim.run()


def test_yielding_bool_rejected():
    sim = Simulator()

    def proc():
        yield True

    sim.process(proc())
    with pytest.raises(ProcessError):
        sim.run()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(ProcessError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_allof_collects_values_in_order():
    sim = Simulator()

    def child(delay, value):
        yield delay
        return value

    def parent():
        procs = [sim.process(child(d, v)) for d, v in [(3.0, "a"), (1.0, "b"), (2.0, "c")]]
        values = yield AllOf(sim, procs)
        return values

    assert sim.run_process(parent()) == ["a", "b", "c"]
    assert sim.now == pytest.approx(3.0)


def test_allof_empty_completes_immediately():
    sim = Simulator()

    def parent():
        values = yield AllOf(sim, [])
        return values

    assert sim.run_process(parent()) == []


def test_anyof_returns_first_value():
    sim = Simulator()

    def child(delay, value):
        yield delay
        return value

    def parent():
        procs = [sim.process(child(d, v)) for d, v in [(3.0, "slow"), (1.0, "fast")]]
        value = yield AnyOf(sim, procs)
        return value

    assert sim.run_process(parent()) == "fast"


def test_condition_rejects_mixed_simulators():
    sim_a = Simulator()
    sim_b = Simulator()
    event_a = Event(sim_a)
    event_b = Event(sim_b)
    with pytest.raises(SimulationError):
        AllOf(sim_a, [event_a, event_b])


def test_waiting_on_already_processed_event():
    sim = Simulator()
    event = sim.event()
    event.succeed("early")

    def late_waiter():
        yield 5.0
        value = yield event
        return value

    assert sim.run_process(late_waiter()) == "early"


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_run_process_detects_deadlock():
    sim = Simulator()

    def stuck():
        yield sim.event()  # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(stuck())


def test_determinism_across_runs():
    def build_and_run():
        sim = Simulator()
        trace = []

        def proc(tag, delay):
            yield delay
            trace.append((tag, sim.now))
            yield delay
            trace.append((tag, sim.now))

        for tag in range(4):
            sim.process(proc(tag, 0.5 + 0.1 * tag))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()
