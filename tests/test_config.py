"""Unit tests for configuration and cost-model objects."""

import pytest

from repro.config import (
    ClusterConfig,
    CostModel,
    ParameterServerConfig,
    WorkloadConfig,
    derive_seed,
    message_size,
)
from repro.errors import ExperimentError


def test_cost_model_message_time():
    cost = CostModel(network_latency=1e-3, network_bandwidth=1e6)
    assert cost.message_time(0) == pytest.approx(1e-3)
    assert cost.message_time(1_000_000) == pytest.approx(1e-3 + 1.0)
    with pytest.raises(ExperimentError):
        cost.message_time(-1)


def test_cost_model_local_access_time_shared_vs_ipc():
    cost = CostModel()
    shared = cost.local_access_time(shared_memory=True)
    ipc = cost.local_access_time(shared_memory=False)
    # The paper reports shared-memory access to be 71-91x faster than
    # PS-Lite's inter-process access; our defaults keep a similar gap.
    assert ipc / shared > 20


def test_cost_model_scaled():
    cost = CostModel(network_latency=1e-3)
    scaled = cost.scaled(2.0)
    assert scaled.network_latency == pytest.approx(2e-3)
    assert scaled.network_bandwidth == pytest.approx(cost.network_bandwidth / 2)
    with pytest.raises(ExperimentError):
        cost.scaled(0)


def test_message_size_monotone():
    assert message_size(0, 0) > 0
    assert message_size(10, 100) > message_size(1, 1)
    with pytest.raises(ExperimentError):
        message_size(-1, 0)


def test_cluster_config_workers():
    config = ClusterConfig(num_nodes=4, workers_per_node=4)
    assert config.total_workers == 16
    assert config.worker_id(2, 3) == 11
    assert config.node_of_worker(11) == 2
    with pytest.raises(ExperimentError):
        config.worker_id(9, 0)
    with pytest.raises(ExperimentError):
        config.worker_id(0, 9)
    with pytest.raises(ExperimentError):
        config.node_of_worker(99)


def test_cluster_config_validation():
    with pytest.raises(ExperimentError):
        ClusterConfig(num_nodes=0)
    with pytest.raises(ExperimentError):
        ClusterConfig(workers_per_node=0)


def test_parameter_server_config_validation():
    with pytest.raises(ExperimentError):
        ParameterServerConfig(num_keys=0)
    with pytest.raises(ExperimentError):
        ParameterServerConfig(value_length=0)
    with pytest.raises(ExperimentError):
        ParameterServerConfig(num_latches=0)
    with pytest.raises(ExperimentError):
        ParameterServerConfig(staleness_bound=-1)


def test_workload_config_validation():
    with pytest.raises(ExperimentError):
        WorkloadConfig(compute_time_per_datapoint=-1.0)
    with pytest.raises(ExperimentError):
        WorkloadConfig(datapoints_per_worker=0)


def test_derive_seed_deterministic_and_distinct():
    assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)
    assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)
    assert derive_seed(1, 2) != derive_seed(2, 2)
    assert 0 <= derive_seed(123, 456) < 2**32
