"""Bit-identity sweep: engine fast paths vs the reference engine.

The hot-path overhaul (immediate-dispatch ring, event pool, callback tokens,
van/server sinks, message coalescing, fused worker steps) claims to leave
simulated results *bit-identical*.  This sweep runs every system on every
workload twice — once with the fast paths, once under
``REPRO_DISABLE_FASTPATH=1`` — and requires exact equality of simulated epoch
durations (full float precision), message and byte counts, training losses,
and (for MF) the aggregated PS metric counters.
"""

import numpy as np
import pytest

from repro.experiments import (
    KGEScale,
    MFScale,
    W2VScale,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)

#: Every PS variant of the runner that supports all three workloads.
SYSTEMS = (
    "classic",
    "classic_fast_local",
    "lapse",
    "stale_ssp",
    "stale_ssppush",
    "replica",
    "hybrid",
)

MF = MFScale(num_rows=32, num_cols=16, num_entries=300, rank=4)
KGE = KGEScale(num_entities=40, num_relations=4, num_triples=60, entity_dim=2)
W2V = W2VScale(vocabulary_size=50, num_sentences=8)


def _fingerprint(result):
    """Everything the overhaul must preserve, at full float precision."""
    return {
        "durations": tuple(repr(epoch.duration) for epoch in result.epochs),
        "losses": tuple(repr(epoch.loss) for epoch in result.epochs),
        "remote_messages": result.remote_messages,
        "bytes_sent": result.bytes_sent,
    }


def _run_both(monkeypatch, fn):
    monkeypatch.delenv("REPRO_DISABLE_FASTPATH", raising=False)
    fast = fn()
    monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "1")
    reference = fn()
    monkeypatch.delenv("REPRO_DISABLE_FASTPATH", raising=False)
    return fast, reference


@pytest.mark.parametrize("system", SYSTEMS)
def test_mf_bit_identical(system, monkeypatch):
    def run():
        return run_mf_experiment(
            system, num_nodes=2, workers_per_node=2, scale=MF, epochs=2
        )

    fast, reference = _run_both(monkeypatch, run)
    assert _fingerprint(fast) == _fingerprint(reference)
    # The fused/fast paths must also keep every PS metric counter intact
    # (local/remote split, latch accounting, relocation counts, ...).
    assert fast.metrics.as_dict() == reference.metrics.as_dict()


@pytest.mark.parametrize("system", SYSTEMS)
def test_kge_bit_identical(system, monkeypatch):
    def run():
        return run_kge_experiment(
            system, num_nodes=2, workers_per_node=2, scale=KGE, epochs=1
        )

    fast, reference = _run_both(monkeypatch, run)
    assert _fingerprint(fast) == _fingerprint(reference)


@pytest.mark.parametrize("system", SYSTEMS)
def test_w2v_bit_identical(system, monkeypatch):
    def run():
        return run_w2v_experiment(
            system, num_nodes=2, workers_per_node=2, scale=W2V, epochs=1
        )

    fast, reference = _run_both(monkeypatch, run)
    assert _fingerprint(fast) == _fingerprint(reference)


@pytest.mark.parametrize("system", ("lapse", "hybrid"))
def test_elastic_mf_bit_identical(system, monkeypatch):
    """Elastic lifecycles must match too — fusion disables itself.

    The elastic runtime relocates keys *mid-epoch* (joins trigger rebalances
    while workers run), which violates the fused-step privacy window; the
    clients therefore refuse to fuse on elastic clusters, and the remaining
    fast paths (ring, pool, sinks, coalescing) must stay bit-identical.
    """
    from repro.cluster import ClusterSchedule
    from repro.experiments.runner import run_elastic_mf_experiment

    def run():
        schedule = ClusterSchedule().join(0.002, node=2)
        return run_elastic_mf_experiment(
            system,
            num_nodes=3,
            initial_nodes=(0, 1),
            schedule=schedule,
            scale=MF,
            workers_per_node=2,
            epochs=2,
        )

    fast, reference = _run_both(monkeypatch, run)
    assert _fingerprint(fast) == _fingerprint(reference)
    assert fast.metrics.as_dict() == reference.metrics.as_dict()


def test_fusion_disabled_on_elastic_clusters(monkeypatch):
    """The fused-step gate refuses elastic clusters outright."""
    from repro.cluster import ClusterSchedule
    from repro.experiments.runner import make_elastic_mf

    monkeypatch.delenv("REPRO_DISABLE_FASTPATH", raising=False)
    elastic, trainer = make_elastic_mf(
        "lapse", num_nodes=2, schedule=ClusterSchedule(), scale=MF, workers_per_node=2
    )
    assert elastic.ps.clients()[0].fused_local_steps() is None


def test_mf_model_parameters_bit_identical(monkeypatch):
    """Final model parameters match exactly for a fused-path system."""
    from repro.data import generate_matrix
    from repro.experiments import make_parameter_server
    from repro.config import ClusterConfig, ParameterServerConfig
    from repro.ml import MatrixFactorizationConfig, MatrixFactorizationTrainer

    def train():
        cluster = ClusterConfig(num_nodes=2, workers_per_node=2)
        matrix = generate_matrix(
            num_rows=MF.num_rows, num_cols=MF.num_cols, num_entries=MF.num_entries, seed=3
        )
        ps = make_parameter_server(
            "lapse",
            cluster,
            ParameterServerConfig(num_keys=matrix.num_cols, value_length=4),
        )
        trainer = MatrixFactorizationTrainer(
            ps, matrix, MatrixFactorizationConfig(rank=4), seed=3
        )
        trainer.train(num_epochs=2, compute_loss=False)
        return trainer.column_factors(), trainer.row_factors

    (fast_cols, fast_rows), (ref_cols, ref_rows) = _run_both(monkeypatch, train)
    assert np.array_equal(fast_cols, ref_cols)
    assert np.array_equal(fast_rows, ref_rows)
