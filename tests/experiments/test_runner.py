"""Tests for the experiment runner, scenarios, and reporting helpers."""

import pytest

from repro.config import ClusterConfig, ParameterServerConfig
from repro.errors import ExperimentError
from repro.experiments import (
    KGEScale,
    MFScale,
    W2VScale,
    format_table,
    make_parameter_server,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
    speedup,
)
from repro.experiments.scenarios import epoch_time, matrix_factorization_scenario
from repro.ps import (
    ClassicIPCPS,
    ClassicSharedMemoryPS,
    HybridPS,
    LapsePS,
    ReplicaPS,
    StalePS,
)

TINY_MF = MFScale(num_rows=24, num_cols=16, num_entries=120, rank=4, compute_time_per_entry=1e-6)
TINY_KGE = KGEScale(num_entities=30, num_relations=4, num_triples=40, entity_dim=2,
                    compute_time_per_triple=1e-6)
TINY_W2V = W2VScale(vocabulary_size=40, num_sentences=10, mean_sentence_length=4,
                    dim=4, compute_time_per_pair=1e-6, presample_size=10, presample_refresh=8)


class TestMakeParameterServer:
    def test_known_systems(self):
        cluster = ClusterConfig(num_nodes=2, workers_per_node=1)
        config = ParameterServerConfig(num_keys=8, value_length=2)
        assert isinstance(make_parameter_server("classic", cluster, config), ClassicIPCPS)
        assert isinstance(
            make_parameter_server("classic_fast_local", cluster, config), ClassicSharedMemoryPS
        )
        assert isinstance(make_parameter_server("lapse", cluster, config), LapsePS)
        ssp = make_parameter_server("stale_ssp", cluster, config)
        ssppush = make_parameter_server("stale_ssppush", cluster, config)
        assert isinstance(ssp, StalePS) and not ssp.server_push
        assert isinstance(ssppush, StalePS) and ssppush.server_push
        replica = make_parameter_server("replica", cluster, config)
        replica_clock = make_parameter_server("replica_clock", cluster, config)
        assert isinstance(replica, ReplicaPS)
        assert replica.ps_config.replica_sync_trigger == "time"
        assert isinstance(replica_clock, ReplicaPS)
        assert replica_clock.ps_config.replica_sync_trigger == "clock"
        hybrid = make_parameter_server("hybrid", cluster, config)
        assert isinstance(hybrid, HybridPS)
        assert hybrid.ps_config.hot_key_threshold > 1

    def test_unknown_system_rejected(self):
        cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
        config = ParameterServerConfig(num_keys=8, value_length=2)
        with pytest.raises(ExperimentError):
            make_parameter_server("mystery", cluster, config)


class TestRunners:
    @pytest.mark.parametrize(
        "system",
        ["classic", "classic_fast_local", "lapse", "stale_ssp", "lowlevel", "replica", "replica_clock", "hybrid"],
    )
    def test_mf_runs_on_every_system(self, system):
        result = run_mf_experiment(system, num_nodes=2, workers_per_node=1, scale=TINY_MF)
        assert result.task == "matrix_factorization"
        assert result.system == system
        assert result.epoch_duration > 0
        assert result.parallelism == "2x1"

    @pytest.mark.parametrize(
        "system", ["classic_fast_local", "lapse", "lapse_clustering_only", "replica", "hybrid"]
    )
    def test_kge_runs(self, system):
        result = run_kge_experiment(system, num_nodes=2, workers_per_node=1, scale=TINY_KGE)
        assert result.task == "kge_complex"
        assert result.epoch_duration > 0

    def test_kge_rescal_model(self):
        result = run_kge_experiment("lapse", num_nodes=1, workers_per_node=1, model="rescal", scale=TINY_KGE)
        assert result.task == "kge_rescal"

    @pytest.mark.parametrize("system", ["lapse", "replica", "hybrid"])
    def test_w2v_runs(self, system):
        result = run_w2v_experiment(system, num_nodes=2, workers_per_node=1, scale=TINY_W2V)
        assert result.task == "word2vec"
        assert result.epoch_duration > 0

    def test_replica_reports_replication_metrics(self):
        result = run_mf_experiment("replica", num_nodes=2, workers_per_node=1, scale=TINY_MF)
        assert result.metrics.replica_creates > 0
        assert result.metrics.replica_sync_rounds > 0
        assert result.metrics.replica_sync_bytes > 0

    def test_loss_computation_optional(self):
        with_loss = run_mf_experiment(
            "lapse", num_nodes=1, workers_per_node=1, scale=TINY_MF, compute_loss=True
        )
        without_loss = run_mf_experiment(
            "lapse", num_nodes=1, workers_per_node=1, scale=TINY_MF, compute_loss=False
        )
        assert with_loss.final_loss is not None
        assert without_loss.final_loss is None

    def test_lowlevel_has_no_ps_metrics(self):
        result = run_mf_experiment("lowlevel", num_nodes=2, workers_per_node=1, scale=TINY_MF)
        assert result.metrics is None

    def test_deterministic_given_seed(self):
        a = run_mf_experiment("lapse", num_nodes=2, workers_per_node=1, scale=TINY_MF, seed=5)
        b = run_mf_experiment("lapse", num_nodes=2, workers_per_node=1, scale=TINY_MF, seed=5)
        assert a.epoch_duration == pytest.approx(b.epoch_duration)
        assert a.remote_messages == b.remote_messages


class TestScenarios:
    def test_scenario_rows_and_lookup(self):
        rows = matrix_factorization_scenario(
            systems=["lapse", "classic_fast_local"],
            parallelism=(1, 2),
            scale=TINY_MF,
            epochs=1,
        )
        assert len(rows) == 4
        assert {row["system"] for row in rows} == {"lapse", "classic_fast_local"}
        value = epoch_time(rows, "lapse", "2x4")
        assert value > 0
        with pytest.raises(ExperimentError):
            epoch_time(rows, "lapse", "16x4")

    def test_empty_systems_rejected(self):
        with pytest.raises(ExperimentError):
            matrix_factorization_scenario(systems=[], scale=TINY_MF)


class TestReporting:
    def test_format_table(self):
        rows = [
            {"system": "lapse", "time": 0.5},
            {"system": "classic", "time": 12.25},
        ]
        text = format_table(rows, title="Example")
        assert "Example" in text
        assert "lapse" in text and "classic" in text
        assert "12.25" in text

    def test_format_table_empty_rejected(self):
        with pytest.raises(ExperimentError):
            format_table([])

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        with pytest.raises(ExperimentError):
            speedup(1.0, 0.0)


class TestMergeMetrics:
    """Regression tests: merging asymmetric per-node metrics (elastic clusters)."""

    def test_merges_full_metrics(self):
        from repro.experiments import merge_metrics
        from repro.ps import PSMetrics

        a = PSMetrics(pulls_local=3, relocations=1)
        b = PSMetrics(pulls_local=2, recovered_keys=4)
        merged = merge_metrics([a, b])
        assert merged.pulls_local == 5
        assert merged.relocations == 1
        assert merged.recovered_keys == 4

    def test_skips_none_entries_from_absent_nodes(self):
        from repro.experiments import merge_metrics
        from repro.ps import PSMetrics

        # A node that joined late (or left early) reports nothing.
        merged = merge_metrics([PSMetrics(pushes_remote=7), None, None])
        assert merged.pushes_remote == 7

    def test_merges_partial_counter_mappings(self):
        from repro.experiments import merge_metrics
        from repro.ps import PSMetrics

        # A partial as_dict-style mapping: only the counters the node touched.
        partial = {"pulls_local": 10, "lost_keys": 2}
        merged = merge_metrics([PSMetrics(pulls_local=1), partial])
        assert merged.pulls_local == 11
        assert merged.lost_keys == 2
        assert merged.pushes_local == 0

    def test_full_as_dict_round_trips(self):
        from repro.experiments import merge_metrics
        from repro.ps import PSMetrics

        metrics = PSMetrics(pulls_local=4, rebalanced_keys=3)
        metrics.relocation_time.record(0.5)
        merged = merge_metrics([metrics.as_dict()])
        # Scalar counters survive; derived mean_* projections are ignored
        # (a mean cannot be merged without its sample count).
        assert merged.pulls_local == 4
        assert merged.rebalanced_keys == 3
        assert merged.relocation_time.count == 0

    def test_unknown_counters_rejected(self):
        from repro.experiments import merge_metrics

        with pytest.raises(ExperimentError):
            merge_metrics([{"warp_factor": 9}])
        with pytest.raises(ExperimentError):
            merge_metrics([object()])

    def test_new_counters_participate_in_psmetrics_merge(self):
        from repro.ps import PSMetrics

        a = PSMetrics(rebalance_rounds=1, recovered_keys=2, lost_keys=1)
        a.rebalance_time.record(0.25)
        b = PSMetrics(rebalance_rounds=2)
        merged = a.merge(b)
        assert merged.rebalance_rounds == 3
        assert merged.recovered_keys == 2
        assert merged.lost_keys == 1
        assert merged.rebalance_time.count == 1
        assert merged.as_dict()["mean_rebalance_time"] == pytest.approx(0.25)
