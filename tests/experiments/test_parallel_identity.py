"""Bit-identity sweep: parallel shard engine vs the sequential kernel.

The parallel engine (``repro.simnet.parallel``) claims that forking the
simulated nodes across shard processes leaves results *bit-identical* to the
single-process kernel.  This sweep runs every system on every workload twice
— once with ``jobs=1``, once with ``jobs=2`` — and requires exact equality
of simulated epoch durations (full float precision), message and byte
counts, training losses, the aggregated PS metric counters, and (for MF)
the final model parameters.

``jobs=2`` forks two shard processes regardless of host core count, so the
determinism bar holds even on single-core CI runners; only the *speedup*
claims (``benchmarks/bench_perf.py``) need real parallel hardware.
"""

import warnings

import numpy as np
import pytest

from repro.experiments import (
    KGEScale,
    MFScale,
    W2VScale,
    make_parameter_server,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)

#: Every PS variant of the runner that supports all three workloads.
SYSTEMS = (
    "classic",
    "classic_fast_local",
    "lapse",
    "stale_ssp",
    "stale_ssppush",
    "replica",
    "hybrid",
)

MF = MFScale(num_rows=32, num_cols=16, num_entries=300, rank=4)
KGE = KGEScale(num_entities=40, num_relations=4, num_triples=60, entity_dim=2)
W2V = W2VScale(vocabulary_size=50, num_sentences=8)

#: Cluster shape shared by the sweep: four nodes so that jobs=2 gives each
#: shard two nodes (exercising both intra- and cross-shard traffic).
NODES = dict(num_nodes=4, workers_per_node=2, epochs=2, seed=3)


def _fingerprint(result):
    return (
        tuple(repr(epoch.duration) for epoch in result.epochs),
        tuple(repr(epoch.loss) for epoch in result.epochs),
        result.remote_messages,
        result.bytes_sent,
        result.metrics.as_dict() if result.metrics else None,
    )


@pytest.mark.parametrize("system", SYSTEMS)
def test_mf_identical(system):
    seq = run_mf_experiment(system, scale=MF, compute_loss=True, **NODES)
    par = run_mf_experiment(system, scale=MF, compute_loss=True, jobs=2, **NODES)
    assert par.jobs == 2
    assert _fingerprint(seq) == _fingerprint(par)


@pytest.mark.parametrize("system", SYSTEMS)
def test_kge_identical(system):
    seq = run_kge_experiment(system, scale=KGE, compute_loss=True, **NODES)
    par = run_kge_experiment(system, scale=KGE, compute_loss=True, jobs=2, **NODES)
    assert _fingerprint(seq) == _fingerprint(par)


@pytest.mark.parametrize("system", SYSTEMS)
def test_w2v_identical(system):
    seq = run_w2v_experiment(system, scale=W2V, compute_error=True, **NODES)
    par = run_w2v_experiment(system, scale=W2V, compute_error=True, jobs=2, **NODES)
    assert _fingerprint(seq) == _fingerprint(par)


def _train_mf(system, jobs, plan=None):
    from repro.config import ClusterConfig, ParameterServerConfig
    from repro.data import generate_matrix
    from repro.ml import MatrixFactorizationConfig, MatrixFactorizationTrainer

    cluster = ClusterConfig(num_nodes=4, workers_per_node=2)
    matrix = generate_matrix(num_rows=32, num_cols=16, num_entries=300, seed=3)
    ps = make_parameter_server(
        system,
        cluster,
        ParameterServerConfig(num_keys=matrix.num_cols, value_length=4),
        jobs=jobs,
    )
    if plan is not None:
        ps._adaptive_shard_plan = plan
    trainer = MatrixFactorizationTrainer(
        ps, matrix, MatrixFactorizationConfig(rank=4), seed=3
    )
    trainer.train(num_epochs=2, compute_loss=False)
    return trainer.column_factors(), trainer.row_factors


@pytest.mark.parametrize("system", ("lapse", "hybrid"))
def test_mf_model_parameters_bit_identical(system):
    """Final model parameters match exactly, not just aggregate counters."""
    seq_cols, seq_rows = _train_mf(system, jobs=1)
    par_cols, par_rows = _train_mf(system, jobs=2)
    assert np.array_equal(seq_cols, par_cols)
    assert np.array_equal(seq_rows, par_rows)


def test_four_shards_identical():
    """More shards than strictly divide the cluster still merge identically."""
    seq = run_kge_experiment("lapse", scale=KGE, compute_loss=True, **NODES)
    par = run_kge_experiment("lapse", scale=KGE, compute_loss=True, jobs=4, **NODES)
    assert _fingerprint(seq) == _fingerprint(par)


def test_non_contiguous_plan_refork_identical():
    """A plan that moves nodes between shards (the rebalance/refork path)
    still merges bit-identically: shard membership is a wall-clock detail."""
    from repro.config import CostModel
    from repro.simnet.parallel import ShardPlan

    interleaved = ShardPlan(
        num_shards=2,
        node_ranks={0: 0, 1: 1, 2: 0, 3: 1},
        shard_nodes=[[0, 2], [1, 3]],
        lookahead=CostModel().network_latency,
    )
    seq_cols, seq_rows = _train_mf("lapse", jobs=1)
    par_cols, par_rows = _train_mf("lapse", jobs=2, plan=interleaved)
    assert np.array_equal(seq_cols, par_cols)
    assert np.array_equal(seq_rows, par_rows)


# ------------------------------------------------------------------- elastic
def _run_elastic(jobs, system="lapse", schedule=None):
    from repro.cluster import ClusterSchedule
    from repro.experiments.runner import run_elastic_mf_experiment

    if schedule is None:
        # Join and drain both land mid-epoch, so shards must quiesce at the
        # membership barriers and execute the replicated apply.
        schedule = ClusterSchedule().join(0.002, node=3).drain(0.008, node=1)
    return run_elastic_mf_experiment(
        system,
        num_nodes=4,
        initial_nodes=(0, 1, 2),
        schedule=schedule,
        scale=MF,
        workers_per_node=2,
        epochs=4,
        compute_loss=True,
        jobs=jobs,
    )


@pytest.mark.parametrize("system", ("classic", "lapse", "hybrid"))
def test_elastic_lifecycle_identical(system):
    """Elastic runs shard now: join + drain mid-epoch, bit-identical merge."""
    seq = _run_elastic(1, system=system)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        par = _run_elastic(2, system=system)
    assert not [w for w in caught if w.category is RuntimeWarning]
    assert par.parallel_fallback_reason is None
    assert par.effective_jobs == 2
    assert seq.effective_jobs == 1
    assert _fingerprint(seq) == _fingerprint(par)


def test_elastic_four_shards_identical():
    seq = _run_elastic(1)
    par = _run_elastic(4)
    assert par.effective_jobs == 4
    assert _fingerprint(seq) == _fingerprint(par)


def test_scheduled_failure_falls_back_to_sequential():
    """Scheduled node failures stay sequential: the recovery ladder is not
    shardable, so jobs>1 warns, records the reason, and matches jobs=1."""
    from repro.cluster import ClusterSchedule
    from repro.simnet.parallel import reset_fallback_warnings

    schedule = (
        ClusterSchedule().fail(0.004, node=2).rejoin(0.008, node=2)
    )
    seq = _run_elastic(1, schedule=schedule)
    reset_fallback_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        par = _run_elastic(2, schedule=schedule)
    reset_fallback_warnings()
    messages = [str(w.message) for w in caught if w.category is RuntimeWarning]
    assert any("fail event" in message for message in messages)
    # Once the node is recovered the engine resumes sharding, so the fields
    # on the result reflect the (parallel) final epoch.
    assert par.parallel_fallback_reason is None
    assert par.effective_jobs == 2
    assert _fingerprint(seq) == _fingerprint(par)
