"""Smoke test for the hot-path profiling helper.

``benchmarks/profile_hotpath.py`` is a developer tool, not part of the
library, so nothing else in the suite would notice if a runner-API change
broke it.  This test runs it end-to-end on one system with a tiny workload
and asserts that it completes and prints a profile table.
"""

import os
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BENCHMARKS = os.path.join(ROOT, "benchmarks")


@pytest.fixture()
def profile_hotpath():
    if BENCHMARKS not in sys.path:
        sys.path.insert(0, BENCHMARKS)
    import profile_hotpath

    return profile_hotpath


def test_profile_hotpath_smoke(profile_hotpath, capsys):
    exit_code = profile_hotpath.main(
        ["--systems", "classic", "--top", "3", "--entries", "200"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    # One profile block for the requested system, with the pstats table header.
    assert "=== classic:" in output
    assert "ncalls" in output
