"""Tests for history recording and the update bit-encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import History, Operation, UpdateTagger
from repro.errors import ConsistencyViolation


class TestUpdateTagger:
    def test_unique_increasing_ids(self):
        tagger = UpdateTagger()
        ids = [tagger.next_update()[0] for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_values_are_powers_of_two(self):
        tagger = UpdateTagger()
        values = [tagger.next_update()[1] for _ in range(5)]
        assert values == [1.0, 2.0, 4.0, 8.0, 16.0]

    def test_decode_roundtrip(self):
        assert UpdateTagger.decode(0.0) == frozenset()
        assert UpdateTagger.decode(1.0) == frozenset({0})
        assert UpdateTagger.decode(2.0 + 8.0) == frozenset({1, 3})

    def test_decode_rejects_invalid(self):
        with pytest.raises(ConsistencyViolation):
            UpdateTagger.decode(1.5)
        with pytest.raises(ConsistencyViolation):
            UpdateTagger.decode(-2.0)

    def test_nonzero_initial_rejected(self):
        with pytest.raises(ConsistencyViolation):
            UpdateTagger(initial_value=1.0)

    def test_too_many_pushes_rejected(self):
        tagger = UpdateTagger()
        for _ in range(60):
            tagger.next_update()
        with pytest.raises(ConsistencyViolation):
            tagger.next_update()

    @settings(max_examples=50, deadline=None)
    @given(ids=st.sets(st.integers(min_value=0, max_value=50), max_size=20))
    def test_property_decode_inverts_sum(self, ids):
        value = float(sum(2**i for i in ids))
        assert UpdateTagger.decode(value) == frozenset(ids)


class TestHistory:
    def test_record_and_group_by_worker(self):
        history = History(key=0)
        history.record_push(worker_id=0, sequence=0, invoked_at=0.0, completed_at=1.0, push_id=0)
        history.record_pull(worker_id=1, sequence=0, invoked_at=1.0, completed_at=2.0, value=1.0)
        history.record_pull(worker_id=0, sequence=1, invoked_at=2.0, completed_at=3.0, value=1.0)
        assert len(history) == 3
        assert len(history.pulls) == 2
        assert len(history.pushes) == 1
        assert history.push_ids == frozenset({0})
        grouped = history.by_worker()
        assert [op.kind for op in grouped[0]] == ["push", "pull"]

    def test_wrong_key_rejected(self):
        history = History(key=0)
        op = Operation(worker_id=0, kind="pull", key=1, sequence=0, invoked_at=0, completed_at=1)
        with pytest.raises(ConsistencyViolation):
            history.record(op)

    def test_operation_validation(self):
        with pytest.raises(ConsistencyViolation):
            Operation(worker_id=0, kind="reads", key=0, sequence=0, invoked_at=0, completed_at=1)
        with pytest.raises(ConsistencyViolation):
            Operation(worker_id=0, kind="push", key=0, sequence=0, invoked_at=0, completed_at=1)
