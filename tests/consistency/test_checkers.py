"""Tests for the consistency checkers, including cross-checking against an
exhaustive search and end-to-end checks of the PS implementations (Table 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig, ParameterServerConfig
from repro.consistency import (
    History,
    UpdateTagger,
    check_eventual,
    check_monotonic_reads,
    check_monotonic_writes,
    check_read_your_writes,
    check_sequential,
    check_sequential_exhaustive,
    check_writes_follow_reads,
    consistency_report,
)
from repro.consistency.checkers import check_causal, check_eventual_after
from repro.ps import ClassicPS, LapsePS, StalePS


def _push(history, worker, seq, push_id, t):
    history.record_push(worker_id=worker, sequence=seq, invoked_at=t, completed_at=t + 0.5, push_id=push_id)


def _pull(history, worker, seq, observed_ids, t):
    value = float(sum(2**i for i in observed_ids))
    history.record_pull(worker_id=worker, sequence=seq, invoked_at=t, completed_at=t + 0.5, value=value)


class TestCheckersOnHandCraftedHistories:
    def test_empty_history_satisfies_everything(self):
        history = History(key=0)
        assert check_eventual(history).ok
        assert check_sequential(history).ok
        assert check_sequential_exhaustive(history).ok

    def test_simple_sequential_history(self):
        history = History(key=0)
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _pull(history, worker=1, seq=0, observed_ids=[0], t=1.0)
        _pull(history, worker=1, seq=1, observed_ids=[0], t=2.0)
        assert check_sequential(history).ok
        assert check_sequential_exhaustive(history).ok
        assert check_causal(history).ok

    def test_monotonic_reads_violation(self):
        history = History(key=0)
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _pull(history, worker=1, seq=0, observed_ids=[0], t=1.0)
        _pull(history, worker=1, seq=1, observed_ids=[], t=2.0)  # lost the push
        assert not check_monotonic_reads(history).ok
        assert not check_sequential(history).ok
        assert not check_sequential_exhaustive(history).ok

    def test_read_your_writes_violation(self):
        history = History(key=0)
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _pull(history, worker=0, seq=1, observed_ids=[], t=1.0)
        assert not check_read_your_writes(history).ok
        assert not check_sequential(history).ok

    def test_monotonic_writes_violation(self):
        history = History(key=0)
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _push(history, worker=0, seq=1, push_id=1, t=1.0)
        # A pull that sees the second push but not the first.
        _pull(history, worker=1, seq=0, observed_ids=[1], t=2.0)
        assert not check_monotonic_writes(history).ok
        assert not check_sequential(history).ok

    def test_writes_follow_reads_violation(self):
        history = History(key=0)
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _pull(history, worker=1, seq=0, observed_ids=[0], t=1.0)
        _push(history, worker=1, seq=1, push_id=1, t=2.0)
        # A pull that sees push 1 (which causally depends on push 0) but not push 0.
        _pull(history, worker=2, seq=0, observed_ids=[1], t=3.0)
        assert not check_writes_follow_reads(history).ok
        assert not check_sequential(history).ok

    def test_incomparable_reads_not_sequential_but_eventual(self):
        history = History(key=0)
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _push(history, worker=1, seq=0, push_id=1, t=0.0)
        # Concurrent (non-quiescent) reads that observe incomparable push sets.
        _pull(history, worker=2, seq=0, observed_ids=[0], t=0.1)
        _pull(history, worker=3, seq=0, observed_ids=[1], t=0.1)
        # Final quiescent reads see everything.
        _pull(history, worker=2, seq=1, observed_ids=[0, 1], t=10.0)
        _pull(history, worker=3, seq=1, observed_ids=[0, 1], t=10.0)
        assert check_eventual(history).ok
        assert not check_sequential(history).ok
        assert not check_sequential_exhaustive(history).ok

    def test_eventual_violation(self):
        history = History(key=0)
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _pull(history, worker=1, seq=0, observed_ids=[], t=10.0)  # after quiescence
        assert not check_eventual(history).ok

    def test_eventual_after_ignores_pre_quiescence_reads(self):
        history = History(key=0)
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _pull(history, worker=1, seq=0, observed_ids=[], t=1.0)  # stale, pre-quiescence
        _pull(history, worker=1, seq=1, observed_ids=[0], t=5.0)
        assert not check_eventual(history).ok  # the built-in quiescence point fails
        assert check_eventual_after(history, quiesce_time=2.0).ok

    def test_eventual_after_detects_missed_pushes(self):
        history = History(key=0)
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _pull(history, worker=1, seq=0, observed_ids=[], t=5.0)
        result = check_eventual_after(history, quiesce_time=2.0)
        assert not result.ok
        assert "missed pushes" in result.reason

    def test_eventual_after_vacuous_cases(self):
        history = History(key=0)
        assert check_eventual_after(history, quiesce_time=0.0).ok  # no pushes
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _pull(history, worker=1, seq=0, observed_ids=[], t=1.0)
        # No pull after the quiescence point: nothing to check.
        assert check_eventual_after(history, quiesce_time=10.0).ok

    def test_exhaustive_rejects_large_histories(self):
        history = History(key=0)
        for i in range(7):
            _push(history, worker=0, seq=i, push_id=i, t=float(i))
        for i in range(7):
            _pull(history, worker=1, seq=i, observed_ids=list(range(i + 1)), t=10.0 + i)
        result = check_sequential_exhaustive(history, max_operations=10)
        assert not result.ok
        assert "limited" in result.reason

    def test_consistency_report_structure(self):
        history = History(key=0)
        _push(history, worker=0, seq=0, push_id=0, t=0.0)
        _pull(history, worker=1, seq=0, observed_ids=[0], t=1.0)
        report = consistency_report([history])
        assert report == {
            "eventual": True,
            "client-centric": True,
            "causal": True,
            "sequential": True,
        }


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_property_graph_checker_agrees_with_exhaustive_search(data):
    """The constraint-graph checker and brute-force search agree on small random histories."""
    num_pushes = data.draw(st.integers(min_value=1, max_value=3))
    num_pulls = data.draw(st.integers(min_value=1, max_value=3))
    history = History(key=0)
    sequences = {0: 0, 1: 0, 2: 0}
    for push_id in range(num_pushes):
        worker = data.draw(st.integers(min_value=0, max_value=2))
        _push(history, worker=worker, seq=sequences[worker], push_id=push_id, t=float(push_id))
        sequences[worker] += 1
    for _ in range(num_pulls):
        worker = data.draw(st.integers(min_value=0, max_value=2))
        observed = data.draw(st.sets(st.integers(min_value=0, max_value=num_pushes - 1)))
        _pull(history, worker=worker, seq=sequences[worker], observed_ids=sorted(observed), t=5.0)
        sequences[worker] += 1
    graph_result = check_sequential(history)
    exhaustive_result = check_sequential_exhaustive(history, max_operations=20)
    assert graph_result.ok == exhaustive_result.ok


def run_counter_workload(ps, pushes_per_worker=4, use_localize=False, sync_ops=True):
    """Every worker alternates tagged pushes and pulls on key 0; returns the history."""
    history = History(key=0)
    tagger = UpdateTagger()
    tags = {}
    num_workers = ps.cluster.total_workers
    for worker in range(num_workers):
        for i in range(pushes_per_worker):
            tags[(worker, i)] = tagger.next_update()

    def worker_fn(client, worker_id):
        sequence = 0
        records = []
        for i in range(pushes_per_worker):
            if use_localize and i % 2 == 0:
                yield from client.localize([0])
            push_id, value = tags[(worker_id, i)]
            update = np.zeros((1, ps.ps_config.value_length))
            update[0, 0] = value
            invoked = client.sim.now
            if sync_ops:
                yield from client.push([0], update)
            else:
                handle = client.push_async([0], update, needs_ack=True)
                yield from client.wait(handle)
            records.append(("push", sequence, invoked, client.sim.now, push_id, None))
            sequence += 1
            invoked = client.sim.now
            values = yield from client.pull([0])
            records.append(("pull", sequence, invoked, client.sim.now, None, values[0, 0]))
            sequence += 1
        return records

    results = ps.run_workers(worker_fn)
    for worker_id, records in enumerate(results):
        for kind, sequence, invoked, completed, push_id, value in records:
            if kind == "push":
                history.record_push(worker_id, sequence, invoked, completed, push_id)
            else:
                history.record_pull(worker_id, sequence, invoked, completed, value)
    return history


class TestTable1EndToEnd:
    """Empirical spot checks of the Table 1 consistency claims."""

    def _cluster(self):
        return ClusterConfig(num_nodes=3, workers_per_node=2, seed=5)

    def _config(self, **kwargs):
        return ParameterServerConfig(num_keys=4, value_length=2, **kwargs)

    def test_classic_ps_sync_is_sequential(self):
        ps = ClassicPS(self._cluster(), self._config())
        history = run_counter_workload(ps)
        assert check_sequential(history).ok
        assert check_eventual(history).ok

    def test_lapse_sync_with_relocations_is_sequential(self):
        ps = LapsePS(self._cluster(), self._config())
        history = run_counter_workload(ps, use_localize=True)
        assert check_sequential(history).ok
        assert check_eventual(history).ok
        assert ps.metrics().relocations > 0

    def test_lapse_without_caches_async_is_sequential(self):
        ps = LapsePS(self._cluster(), self._config(location_caches=False))
        history = run_counter_workload(ps, use_localize=True, sync_ops=False)
        assert check_sequential(history).ok

    def test_stale_ps_is_eventual_but_reads_can_be_stale(self):
        ps = StalePS(self._cluster(), self._config(staleness_bound=1))
        # Workload: one worker pushes, another reads without clocking; the
        # reader's replica may legitimately miss the push (bounded staleness),
        # so sequential consistency does not hold in general, while the final
        # state (after clocks) is correct.
        tagger = UpdateTagger()
        push_id, value = tagger.next_update()
        observed = {}

        def worker_fn(client, worker_id):
            if worker_id == 0:
                update = np.zeros((1, 2))
                update[0, 0] = value
                yield from client.push([3], update)
                yield from client.barrier()
                yield from client.clock()
                return None
            values = yield from client.pull([3])
            first = values[0, 0]
            yield from client.barrier()
            yield from client.clock()
            observed[worker_id] = first
            return None

        ps.run_workers(worker_fn)
        # After the clock flush the owner has the update (eventual consistency).
        assert ps.parameter(3)[0] == pytest.approx(value)
