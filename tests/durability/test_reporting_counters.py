"""No counter may be silently dropped from reports.

Regression tests for the reporting gap the durability work exposed:
``merge_metrics`` / ``metrics_rows`` used to surface only the counters named
in hand-maintained tuples like ``MANAGEMENT_COUNTERS``, so a new
:class:`PSMetrics` field (the WAL and checkpoint counters here) would vanish
from reports unless the list was edited in lockstep.  ``all_counters()`` and
``counters="all"`` derive the set from the dataclass itself; these tests pin
that every field participates.
"""

from dataclasses import fields
from types import SimpleNamespace

import pytest

from repro.errors import ExperimentError
from repro.experiments.reporting import (
    DURABILITY_COUNTERS,
    MANAGEMENT_COUNTERS,
    all_counters,
    merge_metrics,
    metrics_rows,
)
from repro.ps.metrics import PSMetrics, RunningStat


def scalar_field_names():
    probe = PSMetrics()
    return [
        spec.name
        for spec in fields(PSMetrics)
        if not isinstance(getattr(probe, spec.name), RunningStat)
    ]


def stat_field_names():
    probe = PSMetrics()
    return [
        spec.name
        for spec in fields(PSMetrics)
        if isinstance(getattr(probe, spec.name), RunningStat)
    ]


class TestEveryFieldSurfaces:
    def test_every_field_appears_in_as_dict(self):
        data = PSMetrics().as_dict()
        for name in scalar_field_names():
            assert name in data
        for name in stat_field_names():
            assert f"mean_{name}" in data

    def test_all_counters_covers_every_field(self):
        names = all_counters()
        for name in scalar_field_names():
            assert name in names
        for name in stat_field_names():
            assert f"mean_{name}" in names

    def test_durability_counters_are_reported(self):
        assert set(DURABILITY_COUNTERS) <= set(all_counters())
        assert set(MANAGEMENT_COUNTERS) <= set(all_counters())

    def test_every_scalar_field_survives_a_merge(self):
        """Set every scalar counter to a distinct nonzero value on two parts;
        the merge must double each one — none may fall back to zero."""
        names = scalar_field_names()
        part = PSMetrics()
        for value, name in enumerate(names, start=1):
            setattr(part, name, value)
        other = PSMetrics()
        for value, name in enumerate(names, start=1):
            setattr(other, name, value)
        merged = merge_metrics([part, other]).as_dict()
        for value, name in enumerate(names, start=1):
            assert merged[name] == 2 * value, name

    def test_partial_mapping_merge_keeps_wal_counters(self):
        merged = merge_metrics(
            [{"wal_appends": 3, "checkpoints": 1}, {"wal_appends": 2}, None]
        )
        assert merged.wal_appends == 5
        assert merged.checkpoints == 1

    def test_unknown_counter_name_raises(self):
        with pytest.raises(ExperimentError):
            merge_metrics([{"wal_append": 3}])  # typo must not pass silently


def _result(metrics):
    return SimpleNamespace(
        task="mf",
        system="lapse",
        parallelism="3x2",
        epoch_duration=1.25,
        metrics=metrics,
        remote_messages=10,
        bytes_sent=1000,
    )


class TestMetricsRows:
    def test_counters_all_includes_every_field(self):
        metrics = PSMetrics()
        metrics.wal_appends = 7
        metrics.checkpoint_bytes = 640
        rows = metrics_rows([_result(metrics)], counters="all")
        row = rows[0]
        for name in all_counters():
            assert name in row
        assert row["wal_appends"] == 7
        assert row["checkpoint_bytes"] == 640

    def test_explicit_durability_counter_list(self):
        metrics = PSMetrics()
        metrics.wal_recovered_keys = 4
        row = metrics_rows([_result(metrics)], counters=DURABILITY_COUNTERS)[0]
        assert row["wal_recovered_keys"] == 4
        assert row["lost_keys"] == 0

    def test_unknown_counter_raises(self):
        with pytest.raises(ExperimentError):
            metrics_rows([_result(PSMetrics())], counters=("wal_append",))

    def test_metricless_result_leaves_cells_empty(self):
        row = metrics_rows([_result(None)], counters="all")[0]
        assert row["wal_appends"] == ""
