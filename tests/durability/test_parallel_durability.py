"""Bit-identity of durable runs on the parallel shard engine.

Durable (WAL + checkpoint) workloads shard since the phase-2 engine: each
shard appends to per-node WAL segments with shard-relative LSNs, and the
epoch merge stitches the segments into the cluster total order via the
two-level ``(window, shard, local)`` order key.  These tests hold the same
bar as ``tests/experiments/test_parallel_identity.py`` — everything the
sequential engine produces, including the WAL itself and a recovery from a
crash at an epoch boundary, must be bit-identical at ``jobs>1``.
"""

import warnings

import numpy as np
import pytest

from repro.durability import DurabilityConfig
from repro.experiments import MFScale
from repro.experiments.runner import make_elastic_mf

MF = MFScale(num_rows=32, num_cols=16, num_entries=300, rank=4)


def _run_durable(system, jobs, fail=True, config=None, epochs=4):
    """Durable MF run; optional crash + restart at the first epoch boundary."""
    if config is None:
        config = DurabilityConfig(checkpoint_interval=0.002)
    elastic, trainer = make_elastic_mf(
        system,
        num_nodes=3,
        scale=MF,
        workers_per_node=2,
        seed=3,
        durability=config,
        jobs=jobs,
    )
    ps = elastic.ps
    results = [elastic.run_epoch(trainer, compute_loss=True)]
    if fail:
        now = ps.simulated_time
        elastic.fail_at(now, 2)
        elastic.rejoin_at(now, 2)
    results += [
        elastic.run_epoch(trainer, compute_loss=True) for _ in range(epochs - 1)
    ]
    return elastic, trainer, results


def _fingerprint(elastic, results):
    ps = elastic.ps
    wal_logs = {
        node: tuple(
            (record.lsn, record.kind, record.keys, record.values.tobytes())
            for record in wal.records
        )
        for node, wal in ps.durability.wals.items()
    }
    return (
        tuple(repr(r.duration) for r in results),
        tuple(repr(r.loss) for r in results),
        ps.network.stats.remote_messages,
        ps.network.stats.bytes_sent,
        ps.metrics().as_dict(),
        elastic.lost_keys,
        elastic.recovered_keys,
        wal_logs,
        ps.all_parameters().tobytes(),
    )


@pytest.mark.parametrize("system", ("lapse", "hybrid"))
def test_durable_recovery_identical_at_two_shards(system):
    """Crash + WAL recovery at an epoch boundary merges bit-identically."""
    seq = _run_durable(system, jobs=1)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        par = _run_durable(system, jobs=2)
    assert not [w for w in caught if w.category is RuntimeWarning]
    assert _fingerprint(seq[0], seq[2]) == _fingerprint(par[0], par[2])
    assert par[0].ps._last_fallback_reason is None
    assert par[0].ps._last_effective_jobs == 2


def test_durable_recovery_identical_at_four_shards():
    seq = _run_durable("lapse", jobs=1)
    par = _run_durable("lapse", jobs=4)
    assert _fingerprint(seq[0], seq[2]) == _fingerprint(par[0], par[2])


def test_durable_plain_run_identical_for_classic():
    """The static classic PS cannot recover a crash, but its durable runs
    (WAL installed, no failure) shard like any other workload."""
    seq = _run_durable("classic", jobs=1, fail=False)
    par = _run_durable("classic", jobs=2, fail=False)
    assert _fingerprint(seq[0], seq[2]) == _fingerprint(par[0], par[2])


def test_wal_truncation_falls_back_to_sequential():
    """Truncation drops the records LSN stitching renumbers; such runs warn
    and stay sequential — and still match jobs=1 exactly."""
    from repro.simnet.parallel import reset_fallback_warnings

    config = DurabilityConfig(checkpoint_interval=0.002, truncate_on_checkpoint=True)
    seq = _run_durable("lapse", jobs=1, fail=False, config=config)
    reset_fallback_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        par = _run_durable("lapse", jobs=2, fail=False, config=config)
    reset_fallback_warnings()
    messages = [str(w.message) for w in caught if w.category is RuntimeWarning]
    assert any("truncation" in message for message in messages)
    assert "truncation" in par[0].ps._last_fallback_reason
    assert par[0].ps._last_effective_jobs == 1
    assert _fingerprint(seq[0], seq[2]) == _fingerprint(par[0], par[2])


def test_parallel_checkpoints_replay_like_sequential():
    """Checkpoint schedules survive the shard merge: the stitched clock and
    per-node ``_next_checkpoint_at`` keep periodic checkpoints firing at the
    same simulated instants as the sequential run."""
    seq = _run_durable("lapse", jobs=1, fail=False)
    par = _run_durable("lapse", jobs=2, fail=False)
    seq_metrics = seq[0].ps.metrics()
    par_metrics = par[0].ps.metrics()
    assert seq_metrics.checkpoints == par_metrics.checkpoints
    assert seq_metrics.wal_appends == par_metrics.wal_appends
    assert seq_metrics.wal_bytes == par_metrics.wal_bytes
