"""Unit tests for the durability primitives: LSN clock, delta WAL, logged store.

Covers the WAL contract the recovery path builds on: globally ordered LSNs,
record kinds, suffix queries and truncation, the transparent
:class:`LoggedStorage` proxy (reads and writes behave exactly like the bare
store while every mutation lands in the log), checkpoint snapshots, and the
metrics plumbing.
"""

import numpy as np
import pytest

from repro.durability import (
    WAL_DELTA,
    WAL_INSERT,
    WAL_KINDS,
    WAL_REMOVE,
    WAL_SET,
    DeltaWAL,
    DurabilityConfig,
    LoggedStorage,
    LSNClock,
    replay_records,
    take_checkpoint,
)
from repro.errors import DurabilityError
from repro.ps.metrics import PSMetrics
from repro.ps.storage import DenseStorage, SparseStorage, make_storage

D = 3


def row(*values):
    return np.asarray(values, dtype=np.float64)


def rows(*value_rows):
    return np.asarray(value_rows, dtype=np.float64)


class TestLSNClock:
    def test_monotone_from_one(self):
        clock = LSNClock()
        assert clock.last == 0
        assert [clock.next() for _ in range(4)] == [1, 2, 3, 4]
        assert clock.last == 4

    def test_shared_clock_gives_cluster_wide_total_order(self):
        clock = LSNClock()
        wal_a = DeltaWAL(node=0, clock=clock)
        wal_b = DeltaWAL(node=1, clock=clock)
        wal_a.append(WAL_INSERT, [0], rows(row(1, 2, 3)))
        wal_b.append(WAL_INSERT, [1], rows(row(4, 5, 6)))
        wal_a.append(WAL_DELTA, [0], rows(row(1, 1, 1)))
        lsns = sorted(
            record.lsn for wal in (wal_a, wal_b) for record in wal.records
        )
        assert lsns == [1, 2, 3]
        assert wal_a.records[0].lsn == 1
        assert wal_b.records[0].lsn == 2
        assert wal_a.records[1].lsn == 3


class TestDeltaWAL:
    def test_unknown_kind_raises(self):
        wal = DeltaWAL()
        with pytest.raises(DurabilityError):
            wal.append("compact", [0], rows(row(0, 0, 0)))

    def test_records_since_and_truncate(self):
        wal = DeltaWAL()
        for i in range(5):
            wal.append(WAL_DELTA, [i], rows(row(i, i, i)))
        assert [r.lsn for r in wal.records_since(0)] == [1, 2, 3, 4, 5]
        assert [r.lsn for r in wal.records_since(3)] == [4, 5]
        assert wal.records_since(5) == []
        dropped = wal.truncate_to(3)
        assert dropped == 3
        assert [r.lsn for r in wal.records] == [4, 5]
        # last_lsn survives truncation: the next checkpoint still covers
        # everything that was ever logged.
        wal.truncate_to(5)
        assert wal.records == []
        assert wal.last_lsn == 5

    def test_records_are_detached_copies(self):
        wal = DeltaWAL()
        update = row(1, 2, 3)
        record = wal.append(WAL_DELTA, [7], rows(update))
        update[:] = 99.0
        np.testing.assert_array_equal(record.values[0], row(1, 2, 3))

    def test_metrics_bumps(self):
        metrics = PSMetrics()
        wal = DeltaWAL(metrics=metrics)
        record = wal.append(WAL_INSERT, [0, 1], rows(row(1, 1, 1), row(2, 2, 2)))
        wal.append(WAL_DELTA, [0], rows(row(1, 0, 0)))
        assert metrics.wal_appends == 2
        assert metrics.wal_bytes > 0
        assert record.nbytes > 0

    def test_after_append_hook_fires(self):
        wal = DeltaWAL()
        fired = []
        wal.after_append = lambda: fired.append(wal.last_lsn)
        wal.append(WAL_SET, [0], rows(row(0, 0, 0)))
        wal.append(WAL_SET, [1], rows(row(1, 1, 1)))
        assert fired == [1, 2]


class TestDurabilityConfig:
    def test_defaults_enabled(self):
        config = DurabilityConfig()
        assert config.enabled
        assert config.checkpoint_interval > 0

    def test_negative_interval_rejected(self):
        with pytest.raises(DurabilityError):
            DurabilityConfig(checkpoint_interval=-1.0)


@pytest.mark.parametrize("dense", [True, False], ids=["dense", "sparse"])
class TestLoggedStorage:
    """The proxy must be observationally identical to the bare store."""

    def _pair(self, dense, num_keys=8):
        bare = make_storage(dense=dense, num_keys=num_keys, value_length=D)
        inner = make_storage(dense=dense, num_keys=num_keys, value_length=D)
        logged = LoggedStorage(inner, DeltaWAL())
        return bare, logged

    def _exercise(self, storage):
        storage.insert(0, row(1, 0, 0))
        storage.insert_many([1, 2, 3], rows(row(1, 1, 1), row(2, 2, 2), row(3, 3, 3)))
        storage.add(1, row(0.5, 0.5, 0.5))
        storage.row_add(2, row(-1, -1, -1))
        # Duplicate keys in one batch accumulate both rows.
        storage.add_many([3, 3], rows(row(1, 0, 0), row(0, 1, 0)))
        storage.set(0, row(9, 9, 9))
        storage.set_many([1, 2], rows(row(7, 7, 7), row(8, 8, 8)))
        removed = storage.remove(3)
        storage.insert(3, row(4, 4, 4))  # reuse the freed slot
        storage.remove_many([0, 3])
        return removed

    def test_reads_and_writes_match_bare_store(self, dense):
        bare, logged = self._pair(dense)
        removed_bare = self._exercise(bare)
        removed_logged = self._exercise(logged)
        np.testing.assert_array_equal(removed_bare, removed_logged)
        assert sorted(bare.keys()) == sorted(logged.keys())
        assert len(bare) == len(logged)
        for key in bare.keys():
            assert logged.contains(key) and key in logged
            np.testing.assert_array_equal(bare.get(key), logged.get(key))
            np.testing.assert_array_equal(bare.row_copy(key), logged.row_copy(key))
        keys_bare, values_bare = bare.snapshot()
        keys_logged, values_logged = logged.snapshot()
        np.testing.assert_array_equal(keys_bare, keys_logged)
        np.testing.assert_array_equal(values_bare, values_logged)

    def test_every_mutation_is_logged(self, dense):
        _, logged = self._pair(dense)
        self._exercise(logged)
        kinds = [record.kind for record in logged.wal.records]
        assert set(kinds) <= set(WAL_KINDS)
        assert kinds.count(WAL_INSERT) == 3  # insert, insert_many, re-insert
        assert kinds.count(WAL_DELTA) == 3  # add, row_add, add_many
        assert kinds.count(WAL_SET) == 2  # set, set_many
        assert kinds.count(WAL_REMOVE) == 2  # remove, remove_many
        lsns = [record.lsn for record in logged.wal.records]
        assert lsns == sorted(lsns)

    def test_remove_record_carries_removed_values(self, dense):
        """REMOVE logs the dropped rows: recovery of an in-flight relocation
        restores the value from the old owner's REMOVE record."""
        _, logged = self._pair(dense)
        logged.insert(5, row(3, 1, 4))
        removed = logged.remove(5)
        np.testing.assert_array_equal(removed, row(3, 1, 4))
        record = logged.wal.records[-1]
        assert record.kind == WAL_REMOVE
        assert record.keys == (5,)
        np.testing.assert_array_equal(record.values[0], row(3, 1, 4))

    def test_checkpoint_plus_replay_equals_live_store(self, dense):
        _, logged = self._pair(dense)
        logged.insert_many([0, 1], rows(row(1, 1, 1), row(2, 2, 2)))
        checkpoint = take_checkpoint(logged, node=0, lsn=logged.wal.last_lsn, now=0.0)
        logged.add(0, row(1, 2, 3))
        logged.remove(1)
        logged.insert(4, row(5, 5, 5))
        state = checkpoint.as_state()
        replay_records(state, logged.wal.records_since(checkpoint.lsn))
        keys, values = logged.snapshot()
        assert sorted(state.keys()) == keys.tolist()
        for index, key in enumerate(keys.tolist()):
            np.testing.assert_array_equal(state[key], values[index])

    def test_delta_replay_onto_missing_key_raises(self, dense):
        _, logged = self._pair(dense)
        logged.insert(0, row(1, 1, 1))
        logged.add(0, row(1, 0, 0))
        delta = logged.wal.records[-1]
        with pytest.raises(DurabilityError):
            replay_records({}, [delta])


class TestSnapshots:
    @pytest.mark.parametrize("dense", [True, False], ids=["dense", "sparse"])
    def test_snapshot_is_detached_and_sorted(self, dense):
        storage = make_storage(dense=dense, num_keys=8, value_length=D)
        for key in (5, 1, 3):
            storage.insert(key, row(key, key, key))
        keys, values = storage.snapshot()
        assert keys.tolist() == [1, 3, 5]
        values[:] = -1.0
        np.testing.assert_array_equal(storage.get(5), row(5, 5, 5))

    def test_storage_classes_direct(self):
        dense = DenseStorage(4, D)
        sparse = SparseStorage(4, D)
        for storage in (dense, sparse):
            keys, values = storage.snapshot()
            assert keys.size == 0
            assert values.shape == (0, D)
