"""Fail/rejoin fault matrix across management policies.

The fast acceptance test pins the PR's headline property at tiny scale:
a lapse (pure relocation, no replicas) crash-and-restart under durability
finishes with ``lost_keys == 0`` and a final model bit-identical to the
failure-free run.  The ``slow``-marked sweep replays the same lifecycle
across every relocation-capable system, several seeds, and several crash
victims at a larger scale (run with ``pytest -m slow``).
"""

import numpy as np
import pytest

from repro.durability import DurabilityConfig
from repro.experiments import MFScale, make_elastic_mf
from repro.experiments.scenarios import (
    DURABILITY_RECOVERY_SYSTEMS,
    durability_recovery_scenario,
)

TINY = MFScale(num_rows=40, num_cols=24, num_entries=300, rank=4)
SWEEP = MFScale(num_rows=120, num_cols=32, num_entries=2000, rank=4)


@pytest.fixture(scope="module")
def recovery_rows():
    return durability_recovery_scenario(scale=TINY, seed=1)


def row_of(rows, system):
    return next(row for row in rows if row["system"] == system)


class TestAcceptance:
    def test_lapse_fail_rejoin_is_lossless_and_bit_identical(self, recovery_rows):
        """The acceptance shape of the PR: pure relocation, no replicas,
        crash + restart — zero lost keys, bit-identical final model."""
        row = row_of(recovery_rows, "lapse")
        assert row["fail_injected"]
        assert row["lost_keys"] == 0
        assert row["wal_recovered_keys"] > 0
        assert row["params_match_reference"]
        assert row["fail_node_state"] == "active"

    def test_hybrid_fail_rejoin_is_lossless_and_bit_identical(self, recovery_rows):
        row = row_of(recovery_rows, "hybrid")
        assert row["fail_injected"]
        assert row["lost_keys"] == 0
        assert row["params_match_reference"]
        assert row["fail_node_state"] == "active"

    def test_classic_gets_inert_wal_and_no_injection(self, recovery_rows):
        """Static partitioning cannot re-home keys, so no failure is
        injected; its row proves the installed WAL is behavior-inert."""
        row = row_of(recovery_rows, "classic")
        assert not row["fail_injected"]
        assert row["lost_keys"] == 0
        assert row["wal_appends"] > 0
        assert row["params_match_reference"]

    def test_scenario_is_deterministic(self):
        first = durability_recovery_scenario(systems=("lapse",), scale=TINY, seed=3)
        second = durability_recovery_scenario(systems=("lapse",), scale=TINY, seed=3)
        assert first == second


@pytest.mark.slow
class TestFaultMatrixSweep:
    @pytest.mark.parametrize("system", DURABILITY_RECOVERY_SYSTEMS)
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("fail_node", [1, 2])
    def test_lifecycle_is_lossless(self, system, seed, fail_node):
        rows = durability_recovery_scenario(
            systems=(system,), scale=SWEEP, seed=seed, fail_node=fail_node
        )
        row = rows[0]
        assert row["lost_keys"] == 0
        assert row["params_match_reference"]
        if row["fail_injected"]:
            assert row["fail_node_state"] == "active"

    @pytest.mark.parametrize("system", ["lapse", "hybrid"])
    def test_repeated_crashes_of_the_same_node(self, system):
        """Crash-and-restart the same machine at two consecutive epoch
        boundaries; the second recovery must replay past the first reset."""
        durability = DurabilityConfig()
        reference, reference_trainer = make_elastic_mf(
            system, num_nodes=3, scale=SWEEP, workers_per_node=2, seed=5
        )
        for _ in range(4):
            reference.run_epoch(reference_trainer, compute_loss=False)
        reference_params = reference.ps.all_parameters()

        elastic, trainer = make_elastic_mf(
            system, num_nodes=3, scale=SWEEP, workers_per_node=2, seed=5,
            durability=durability,
        )
        elastic.run_epoch(trainer, compute_loss=False)
        for _ in range(2):
            now = elastic.ps.simulated_time
            elastic.fail_at(now, 2)
            elastic.rejoin_at(now, 2)
            elastic.run_epoch(trainer, compute_loss=False)
        elastic.run_epoch(trainer, compute_loss=False)
        assert elastic.lost_keys == 0
        assert elastic.membership.state_of(2) == "active"
        np.testing.assert_array_equal(
            elastic.ps.all_parameters(), reference_params
        )
