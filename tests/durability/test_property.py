"""Property tests: checkpoint + WAL-suffix replay reconverges bit-identically.

Hypothesis drives random operation sequences (inserts, additive deltas,
overwrites, removes — including duplicate-key batches and slab free-list
reuse) against a :class:`LoggedStorage`-wrapped store, takes a checkpoint at
a random point, and crashes at a random later point.  The durability
invariant under test: for ANY crash LSN at or after the checkpoint LSN,

    checkpoint.as_state() + replay(wal records in (ckpt_lsn, crash_lsn])

equals the uninterrupted store's state at the crash point exactly — same key
set, bit-identical float64 rows.  Replay applies the same additions in the
same order as the live store did, so no tolerance is needed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import DeltaWAL, LoggedStorage, replay_records, take_checkpoint
from repro.ps.storage import make_storage

NUM_KEYS = 6
D = 2

#: One step: (key, action selector, one value row as small exact integers).
_steps = st.lists(
    st.tuples(
        st.integers(0, NUM_KEYS - 1),
        st.integers(0, 3),
        st.lists(st.integers(-8, 8), min_size=D, max_size=D),
    ),
    min_size=1,
    max_size=40,
)


@st.composite
def scenarios(draw):
    steps = draw(_steps)
    checkpoint_index = draw(st.integers(0, len(steps)))
    crash_index = draw(st.integers(checkpoint_index, len(steps)))
    return steps, checkpoint_index, crash_index


def _apply_step(storage, model, key, action, values):
    """Apply one step to the live store and the mirror model identically.

    Non-resident keys are inserted (odd actions via a duplicate-key batch);
    resident keys cycle through add / duplicate-batch add / set / remove,
    so remove-then-insert sequences exercise sparse slab free-list reuse.
    """
    value = np.asarray(values, dtype=np.float64)
    if key not in model:
        if action % 2 == 0:
            storage.insert(key, value)
        else:
            storage.insert_many([key], value.reshape(1, D))
        model[key] = value.copy()
    elif action == 0:
        storage.add(key, value)
        model[key] = model[key] + value
    elif action == 1:
        # Duplicate keys in one batch: both rows must accumulate.
        storage.add_many([key, key], np.stack([value, value + 1.0]))
        model[key] = model[key] + value + (value + 1.0)
    elif action == 2:
        storage.set(key, value)
        model[key] = value.copy()
    else:
        storage.remove(key)
        del model[key]


def _states_equal(state, other):
    if sorted(state.keys()) != sorted(other.keys()):
        return False
    return all(np.array_equal(state[key], other[key]) for key in state)


@pytest.mark.parametrize("dense", [True, False], ids=["dense", "sparse"])
@given(scenario=scenarios())
@settings(max_examples=60, deadline=None)
def test_any_crash_point_reconverges_bit_identically(dense, scenario):
    steps, checkpoint_index, crash_index = scenario
    storage = LoggedStorage(
        make_storage(dense=dense, num_keys=NUM_KEYS, value_length=D), DeltaWAL()
    )
    model = {}
    # model_at[i] / lsn_at[i]: state and last LSN after the first i steps.
    model_at = [dict(model)]
    lsn_at = [0]
    checkpoint = None
    for index, (key, action, values) in enumerate(steps):
        if index == checkpoint_index:
            checkpoint = take_checkpoint(
                storage, node=0, lsn=storage.wal.last_lsn, now=0.0
            )
        _apply_step(storage, model, key, action, values)
        model_at.append({k: v.copy() for k, v in model.items()})
        lsn_at.append(storage.wal.last_lsn)
    if checkpoint is None:  # checkpoint_index == len(steps)
        checkpoint = take_checkpoint(
            storage, node=0, lsn=storage.wal.last_lsn, now=0.0
        )

    # The live store never diverged from the model (LoggedStorage is a
    # transparent proxy).
    keys, values = storage.snapshot()
    assert keys.tolist() == sorted(model.keys())
    for index, key in enumerate(keys.tolist()):
        assert np.array_equal(values[index], model[key])

    # Crash: restore the checkpoint, replay the WAL suffix up to the crash
    # LSN, compare against the uninterrupted state at that point.
    crash_lsn = lsn_at[crash_index]
    restored = checkpoint.as_state()
    suffix = [
        record
        for record in storage.wal.records_since(checkpoint.lsn)
        if record.lsn <= crash_lsn
    ]
    replay_records(restored, suffix)
    assert _states_equal(restored, model_at[crash_index])


@pytest.mark.parametrize("dense", [True, False], ids=["dense", "sparse"])
@given(scenario=scenarios())
@settings(max_examples=25, deadline=None)
def test_replay_from_baseline_rebuilds_everything(dense, scenario):
    """The degenerate checkpoint (empty store, LSN 0) still recovers fully:
    initial inserts are themselves logged, so replaying the whole WAL from
    nothing rebuilds the final state."""
    steps, _, _ = scenario
    storage = LoggedStorage(
        make_storage(dense=dense, num_keys=NUM_KEYS, value_length=D), DeltaWAL()
    )
    model = {}
    for key, action, values in steps:
        _apply_step(storage, model, key, action, values)
    restored = {}
    replay_records(restored, storage.wal.records_since(0))
    assert _states_equal(restored, model)
