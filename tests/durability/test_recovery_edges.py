"""Fault-injection tests: crashes at adversarial points in the protocols.

Each test drives the simulation to a specific vulnerable interleaving —
a relocation transfer on the wire, a drain half done, a checkpoint far in
the past, the only replica of a key on the crashing machine — injects the
failure there (``ElasticCluster._apply`` with a ``FAIL`` event, exactly what
the driver does at a boundary), and asserts crash consistency: no lost keys,
bit-identical values, and a cluster that keeps training.
"""

import numpy as np
import pytest

from repro.cluster import ClusterSchedule, ElasticCluster
from repro.cluster.schedule import FAIL, ClusterEvent
from repro.durability import DurabilityConfig, LoggedStorage
from repro.experiments import MFScale, make_elastic_mf

TINY = MFScale(num_rows=48, num_cols=24, num_entries=600, rank=4, compute_time_per_entry=2e-6)


def build(system="lapse", capacity=3, seed=1, durability=DurabilityConfig(), scale=TINY):
    elastic, trainer = make_elastic_mf(
        system,
        num_nodes=capacity,
        scale=scale,
        seed=seed,
        workers_per_node=2,
        durability=durability,
    )
    return elastic, trainer


def crash(elastic, node):
    """Inject a crash NOW, the same way the driver applies a due fail event."""
    return elastic._apply(ClusterEvent(time=elastic.ps.sim.now, kind=FAIL, node=node))


def step_until(sim, condition, max_steps=200_000):
    for _ in range(max_steps):
        if condition():
            return
        if sim.peek_time() is None:
            raise AssertionError("simulation drained before the condition held")
        sim.step()
    raise AssertionError("condition never held within the step budget")


def total_lost(ps):
    return ps.metrics().lost_keys


def resident_nodes(ps, key):
    return [n for n in range(ps.cluster.num_nodes) if ps.states[n].storage.contains(key)]


class TestInFlightRelocation:
    """Crashes while a ``RelocationTransfer`` is on the wire (PR 4 edges)."""

    def _open_transfer_window(self, elastic, trainer):
        """Localize a key and stop inside the window where the old owner has
        removed it but the requester has not yet received it."""
        ps = elastic.ps
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.settle()
        old_owner, requester = 1, 2
        key = elastic.rebalancer.owned_keys(old_owner)[0]
        before = ps.states[old_owner].storage.row_copy(key)
        handle = ps.client(requester, 0).localize_async([key])
        step_until(
            ps.sim,
            lambda: not ps.states[old_owner].storage.contains(key)
            and not ps.states[requester].storage.contains(key),
        )
        return key, before, old_owner, requester, handle

    def test_requester_crash_restores_from_remove_record(self):
        """The transfer is scrubbed with the crashing requester; the value
        only exists in the old owner's REMOVE record — recovery must use it."""
        elastic, trainer = build("lapse")
        ps = elastic.ps
        key, before, _old_owner, requester, _handle = self._open_transfer_window(
            elastic, trainer
        )
        crash(elastic, requester)
        elastic.settle()
        assert total_lost(ps) == 0
        homes = resident_nodes(ps, key)
        assert len(homes) == 1 and homes[0] != requester
        np.testing.assert_array_equal(ps.states[homes[0]].storage.get(key), before)
        assert ps.metrics().wal_recovered_keys > 0

    def test_old_owner_crash_delivers_transfer_and_drains_queued_ops(self):
        """The transfer already left the old owner, so it survives the crash;
        an op queued behind the relocation must drain onto the new owner."""
        elastic, trainer = build("lapse")
        ps = elastic.ps
        key, before, old_owner, requester, handle = self._open_transfer_window(
            elastic, trainer
        )
        # Queue a pull behind the in-flight relocation from a third node.
        pull = ps.client(0, 0).pull_async([key])
        crash(elastic, old_owner)
        elastic.settle()
        assert total_lost(ps) == 0
        assert resident_nodes(ps, key) == [requester]
        np.testing.assert_array_equal(ps.states[requester].storage.get(key), before)
        assert handle.done
        assert pull.done
        np.testing.assert_array_equal(pull.values()[0], before)

    def test_each_key_resident_exactly_once_after_crash(self):
        elastic, trainer = build("lapse")
        ps = elastic.ps
        self._open_transfer_window(elastic, trainer)
        crash(elastic, 1)
        elastic.settle()
        counts = np.zeros(ps.ps_config.num_keys, dtype=int)
        for node in range(ps.cluster.num_nodes):
            for key in ps.states[node].storage.keys():
                counts[key] += 1
        assert (counts == 1).all()


class TestSoleReplicaCrash:
    """Crash of the node holding the only replica of a key (hybrid)."""

    def _find_sole_replica(self, ps):
        """Return ``(key, owner, holder)`` where ``holder`` has the only
        replica of ``key``; node 0 is excluded on both sides so both machines
        may crash (recovery always needs a surviving node)."""
        for owner in range(1, ps.cluster.num_nodes):
            subscribers = getattr(ps.states[owner], "subscribers", {})
            for key, holders in subscribers.items():
                holders = [n for n in holders if n != owner]
                if len(holders) == 1 and holders[0] not in (0, owner):
                    return key, owner, holders[0]
        raise AssertionError("no sole-replica key found")

    def test_owner_keeps_serving_bit_identically(self):
        elastic, trainer = build("hybrid")
        ps = elastic.ps
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.ensure_backups()
        elastic.settle()
        key, owner, holder = self._find_sole_replica(ps)
        before = ps.states[owner].storage.row_copy(key)
        crash(elastic, holder)
        elastic.settle()
        assert total_lost(ps) == 0
        np.testing.assert_array_equal(ps.states[owner].storage.get(key), before)

    def test_owner_crash_after_sole_replica_died_recovers_from_wal(self):
        """Double failure: the replica died first, so only the durable log
        can restore the owner's keys."""
        elastic, trainer = build("hybrid")
        ps = elastic.ps
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.ensure_backups()
        elastic.settle()
        key, owner, holder = self._find_sole_replica(ps)
        reference = ps.all_parameters()
        crash(elastic, holder)
        elastic.settle()
        crash(elastic, owner)
        elastic.settle()
        assert total_lost(ps) == 0
        assert ps.metrics().wal_recovered_keys > 0
        np.testing.assert_array_equal(ps.all_parameters(), reference)

    def test_without_durability_double_failure_loses_keys(self):
        """Contrast: the same double failure without the WAL is lossy —
        exactly the gap the durability subsystem closes."""
        elastic, trainer = build("hybrid", durability=None)
        ps = elastic.ps
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.ensure_backups()
        elastic.settle()
        key, owner, holder = self._find_sole_replica(ps)
        crash(elastic, holder)
        elastic.settle()
        crash(elastic, owner)
        elastic.settle()
        assert total_lost(ps) > 0


class TestCheckpointWalBoundary:
    """Crashes between a checkpoint and later WAL appends."""

    def test_checkpoint_plus_replay_equals_live_store(self):
        """Core invariant, checked without crashing: for every node, restore
        latest checkpoint + replay WAL suffix == live store, bit-identical."""
        elastic, trainer = build("lapse")
        ps = elastic.ps
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.settle()
        for node in range(ps.cluster.num_nodes):
            durable, _replayed = ps.durability.recovered_state(node)
            keys, values = ps.states[node].storage.snapshot()
            assert sorted(durable.keys()) == keys.tolist()
            for index, key in enumerate(keys.tolist()):
                assert np.array_equal(durable[key], values[index])

    def test_stale_checkpoint_forces_replay(self):
        """With checkpoints effectively disabled after the baseline, recovery
        must replay the whole epoch's deltas — and still lose nothing."""
        elastic, trainer = build(
            "lapse", durability=DurabilityConfig(checkpoint_interval=1e9)
        )
        ps = elastic.ps
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.settle()
        reference = ps.all_parameters()
        crash(elastic, 2)
        elastic.settle()
        assert total_lost(ps) == 0
        assert ps.metrics().replayed_deltas > 0
        np.testing.assert_array_equal(ps.all_parameters(), reference)

    def test_truncation_does_not_break_recovery(self):
        elastic, trainer = build(
            "lapse",
            durability=DurabilityConfig(
                checkpoint_interval=0.01, truncate_on_checkpoint=True
            ),
        )
        ps = elastic.ps
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.settle()
        reference = ps.all_parameters()
        crash(elastic, 1)
        elastic.settle()
        assert total_lost(ps) == 0
        np.testing.assert_array_equal(ps.all_parameters(), reference)
        assert ps.metrics().checkpoints > ps.cluster.num_nodes  # beyond baseline


class TestCrashDuringDrain:
    def test_drainee_crash_mid_drain_loses_nothing(self):
        elastic, trainer = build("lapse")
        ps = elastic.ps
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.settle()
        reference = ps.all_parameters()
        drainee = 1
        initial = len(ps.states[drainee].storage)
        assert initial > 0
        elastic.membership.begin_drain(drainee, ps.sim.now)
        elastic.rebalancer.rebalance_for_drain(drainee, ps.sim.now)

        def some_key_is_on_the_wire():
            resident = set()
            for node in range(ps.cluster.num_nodes):
                resident.update(ps.states[node].storage.keys())
            return len(resident) < ps.ps_config.num_keys

        step_until(ps.sim, some_key_is_on_the_wire)
        crash(elastic, drainee)
        elastic.settle()
        assert total_lost(ps) == 0
        np.testing.assert_array_equal(ps.all_parameters(), reference)
        assert len(ps.states[drainee].storage) == 0


class TestDisabledPath:
    def test_no_config_means_no_manager_and_bare_storage(self):
        elastic, _trainer = build("lapse", durability=None)
        assert elastic.ps.durability is None
        assert not isinstance(elastic.ps.states[0].storage, LoggedStorage)

    def test_disabled_config_means_no_manager(self):
        elastic, _trainer = build(
            "lapse", durability=DurabilityConfig(enabled=False)
        )
        assert elastic.ps.durability is None
        assert not isinstance(elastic.ps.states[0].storage, LoggedStorage)

    @pytest.mark.parametrize("system", ["lapse", "hybrid"])
    def test_durability_on_is_inert_without_failures(self, system):
        """With no crash, durability must not change simulated behavior at
        all: same epoch times, same traffic, bit-identical model."""
        results = {}
        for label, durability in (("off", None), ("on", DurabilityConfig())):
            elastic, trainer = build(system, durability=durability)
            elastic.run_epoch(trainer, compute_loss=False)
            elastic.run_epoch(trainer, compute_loss=False)
            elastic.settle()
            results[label] = (
                elastic.ps.simulated_time,
                elastic.ps.network.stats.messages_sent,
                elastic.ps.all_parameters(),
            )
        assert results["on"][0] == results["off"][0]
        assert results["on"][1] == results["off"][1]
        np.testing.assert_array_equal(results["on"][2], results["off"][2])


class TestLiveness:
    def test_cluster_keeps_training_after_crash(self):
        elastic, trainer = build("lapse")
        ps = elastic.ps
        elastic.run_epoch(trainer, compute_loss=False)
        crash(elastic, 2)
        elastic.settle()
        before = ps.all_parameters().copy()
        elastic.run_epoch(trainer, compute_loss=False)
        elastic.settle()
        assert total_lost(ps) == 0
        assert not np.array_equal(ps.all_parameters(), before)  # it trained
