"""Tests for the skip-gram word-vector trainer."""

import numpy as np
import pytest

from repro.config import ClusterConfig, ParameterServerConfig
from repro.data import generate_corpus
from repro.errors import ExperimentError
from repro.ml import Word2VecConfig, Word2VecTrainer
from repro.ps import ClassicSharedMemoryPS, LapsePS


def build_trainer(ps_cls, num_nodes=2, workers_per_node=1, vocabulary_size=40,
                  num_sentences=20, seed=0, **config_kwargs):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=workers_per_node, seed=seed)
    corpus = generate_corpus(
        vocabulary_size=vocabulary_size,
        num_sentences=num_sentences,
        mean_sentence_length=6,
        seed=seed,
    )
    config = Word2VecConfig(
        dim=4,
        window=2,
        num_negatives=2,
        presample_size=16,
        presample_refresh=8,
        compute_time_per_pair=2e-6,
        **config_kwargs,
    )
    ps = ps_cls(
        cluster,
        ParameterServerConfig(num_keys=2 * vocabulary_size, value_length=config.dim),
    )
    return Word2VecTrainer(ps, corpus, config, seed=seed), ps, corpus


class TestConfigValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ExperimentError):
            Word2VecConfig(dim=0)
        with pytest.raises(ExperimentError):
            Word2VecConfig(window=0)
        with pytest.raises(ExperimentError):
            Word2VecConfig(num_negatives=0)
        with pytest.raises(ExperimentError):
            Word2VecConfig(learning_rate=0)
        with pytest.raises(ExperimentError):
            Word2VecConfig(num_negatives=10, presample_size=5)
        with pytest.raises(ExperimentError):
            Word2VecConfig(presample_refresh=0)

    def test_key_space_mismatch_rejected(self):
        cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
        corpus = generate_corpus(vocabulary_size=10, num_sentences=5)
        ps = LapsePS(cluster, ParameterServerConfig(num_keys=5, value_length=4))
        with pytest.raises(ExperimentError):
            Word2VecTrainer(ps, corpus, Word2VecConfig(dim=4))


class TestKeyMapping:
    def test_input_output_keys_disjoint(self):
        trainer, _, corpus = build_trainer(LapsePS)
        input_keys = {trainer.input_key(w) for w in range(corpus.vocabulary_size)}
        output_keys = {trainer.output_key(w) for w in range(corpus.vocabulary_size)}
        assert input_keys.isdisjoint(output_keys)
        assert max(output_keys) == 2 * corpus.vocabulary_size - 1


class TestTraining:
    def test_error_decreases_over_epochs(self):
        trainer, ps, _ = build_trainer(LapsePS, num_sentences=30)
        initial_error = trainer.evaluation_error()
        results = trainer.train(num_epochs=3)
        assert results[-1].loss < initial_error

    def test_latency_hiding_keeps_reads_mostly_local(self):
        trainer, ps, _ = build_trainer(LapsePS)
        trainer.train(num_epochs=1, compute_error=False)
        metrics = ps.metrics()
        assert metrics.local_read_fraction > 0.7
        assert metrics.localize_calls > 0

    def test_classic_ps_runs_and_is_slower(self):
        lapse_trainer, _, _ = build_trainer(LapsePS, seed=1)
        classic_trainer, _, _ = build_trainer(ClassicSharedMemoryPS, seed=1, latency_hiding=False)
        lapse_time = lapse_trainer.train(num_epochs=1, compute_error=False)[0].duration
        classic_time = classic_trainer.train(num_epochs=1, compute_error=False)[0].duration
        assert classic_time > lapse_time

    def test_embeddings_shape(self):
        trainer, _, corpus = build_trainer(LapsePS)
        inputs, outputs = trainer.embeddings()
        assert inputs.shape == (corpus.vocabulary_size, 4)
        assert outputs.shape == (corpus.vocabulary_size, 4)

    def test_epoch_results_metadata(self):
        trainer, _, _ = build_trainer(LapsePS)
        results = trainer.train(num_epochs=2, compute_error=False)
        assert [r.epoch for r in results] == [0, 1]
        assert all(r.duration > 0 for r in results)

    def test_invalid_epoch_count(self):
        trainer, _, _ = build_trainer(LapsePS)
        with pytest.raises(ExperimentError):
            trainer.train(num_epochs=0)
