"""Tests for optimizer helpers and loss metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.ml.metrics import log_loss, rmse, sigmoid
from repro.ml.optim import AdaGradPacking, adagrad_update, sgd_update


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_limits(self):
        assert sigmoid(np.array([50.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-50.0]))[0] == pytest.approx(0.0)

    def test_no_overflow_for_large_negative(self):
        values = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.all(np.isfinite(values))

    @settings(max_examples=30, deadline=None)
    @given(x=st.floats(min_value=-30, max_value=30))
    def test_property_symmetry(self, x):
        assert sigmoid(np.array([x]))[0] + sigmoid(np.array([-x]))[0] == pytest.approx(1.0)


class TestLosses:
    def test_log_loss_perfect_predictions(self):
        scores = np.array([20.0, -20.0])
        labels = np.array([1.0, 0.0])
        assert log_loss(scores, labels) < 1e-6

    def test_log_loss_chance_level(self):
        scores = np.zeros(4)
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        assert log_loss(scores, labels) == pytest.approx(np.log(2))

    def test_log_loss_validation(self):
        with pytest.raises(ExperimentError):
            log_loss(np.zeros(2), np.zeros(3))
        with pytest.raises(ExperimentError):
            log_loss(np.zeros(0), np.zeros(0))

    def test_rmse(self):
        assert rmse(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))
        with pytest.raises(ExperimentError):
            rmse(np.zeros(2), np.zeros(3))


class TestAdaGrad:
    def test_packing_roundtrip(self):
        packing = AdaGradPacking(model_dim=3)
        assert packing.value_length == 6
        packed = packing.pack(np.array([1.0, 2.0, 3.0]), np.array([4.0, 5.0, 6.0]))
        parameter, accumulator = packing.unpack(packed)
        np.testing.assert_allclose(parameter, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(accumulator, [4.0, 5.0, 6.0])

    def test_packing_validation(self):
        with pytest.raises(ExperimentError):
            AdaGradPacking(model_dim=0)
        packing = AdaGradPacking(model_dim=2)
        with pytest.raises(ExperimentError):
            packing.unpack(np.zeros(3))
        with pytest.raises(ExperimentError):
            packing.pack(np.zeros(2), np.zeros(3))

    def test_adagrad_update_moves_against_gradient(self):
        packing = AdaGradPacking(model_dim=2)
        packed = packing.pack(np.array([1.0, 1.0]), np.zeros(2))
        gradient = np.array([1.0, -2.0])
        update = adagrad_update(packing, packed, gradient, learning_rate=0.1)
        step, squared = packing.unpack(update)
        assert step[0] < 0 and step[1] > 0
        np.testing.assert_allclose(squared, gradient**2)

    def test_adagrad_step_shrinks_with_history(self):
        packing = AdaGradPacking(model_dim=1)
        gradient = np.array([1.0])
        fresh = adagrad_update(packing, packing.pack([0.0], [0.0]), gradient, 0.1)
        seasoned = adagrad_update(packing, packing.pack([0.0], [100.0]), gradient, 0.1)
        assert abs(seasoned[0]) < abs(fresh[0])

    def test_adagrad_validation(self):
        packing = AdaGradPacking(model_dim=2)
        packed = packing.pack(np.zeros(2), np.zeros(2))
        with pytest.raises(ExperimentError):
            adagrad_update(packing, packed, np.zeros(3), 0.1)
        with pytest.raises(ExperimentError):
            adagrad_update(packing, packed, np.zeros(2), 0.0)

    def test_cumulative_application_matches_sequential_adagrad(self):
        """Applying the returned deltas cumulatively reproduces AdaGrad."""
        packing = AdaGradPacking(model_dim=2)
        stored = packing.pack(np.array([0.5, -0.5]), np.zeros(2))
        reference_param = np.array([0.5, -0.5])
        reference_acc = np.zeros(2)
        rng = np.random.default_rng(0)
        for _ in range(5):
            gradient = rng.normal(size=2)
            update = adagrad_update(packing, stored, gradient, learning_rate=0.1)
            stored = stored + update
            reference_acc += gradient**2
            reference_param -= 0.1 * gradient / np.sqrt(reference_acc + 1e-8)
        parameter, accumulator = packing.unpack(stored)
        np.testing.assert_allclose(parameter, reference_param, rtol=1e-6)
        np.testing.assert_allclose(accumulator, reference_acc, rtol=1e-6)


class TestSGD:
    def test_sgd_update(self):
        np.testing.assert_allclose(sgd_update(np.array([2.0, -4.0]), 0.5), [-1.0, 2.0])
        with pytest.raises(ExperimentError):
            sgd_update(np.zeros(2), 0.0)
