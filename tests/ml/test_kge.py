"""Tests for the knowledge-graph-embedding trainers (RESCAL and ComplEx)."""

import numpy as np
import pytest

from repro.config import ClusterConfig, ParameterServerConfig
from repro.data import generate_knowledge_graph
from repro.errors import ExperimentError
from repro.ml import KGEConfig, KGETrainer
from repro.ml.kge import KGEKeySpace
from repro.ps import ClassicSharedMemoryPS, LapsePS


def build_kge(model="complex", num_nodes=2, workers_per_node=1, num_entities=30,
              num_relations=4, num_triples=80, entity_dim=3, seed=0, **config_kwargs):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=workers_per_node, seed=seed)
    graph = generate_knowledge_graph(
        num_entities=num_entities,
        num_relations=num_relations,
        num_triples=num_triples,
        seed=seed,
    )
    config = KGEConfig(
        model=model,
        entity_dim=entity_dim,
        num_negatives=2,
        compute_time_per_triple=5e-6,
        **config_kwargs,
    )
    keyspace = KGEKeySpace(graph, config)
    ps_config = ParameterServerConfig(
        num_keys=keyspace.num_keys, value_length=config.value_length
    )
    return graph, config


def build_trainer(ps_cls, model="complex", **kwargs):
    graph, config = build_kge(model=model, **kwargs)
    num_nodes = kwargs.get("num_nodes", 2)
    workers_per_node = kwargs.get("workers_per_node", 1)
    seed = kwargs.get("seed", 0)
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=workers_per_node, seed=seed)
    keyspace = KGEKeySpace(graph, config)
    ps = ps_cls(
        cluster,
        ParameterServerConfig(num_keys=keyspace.num_keys, value_length=config.value_length),
    )
    return KGETrainer(ps, graph, config, seed=seed), ps, graph, config


class TestKeySpace:
    def test_complex_layout(self):
        graph, config = build_kge(model="complex", entity_dim=3)
        keyspace = KGEKeySpace(graph, config)
        assert config.base_dim == 6
        assert config.keys_per_relation == 1
        assert keyspace.num_keys == graph.num_entities + graph.num_relations
        assert keyspace.entity_key(5) == 5
        assert keyspace.relation_keys(0) == [graph.num_entities]

    def test_rescal_layout(self):
        graph, config = build_kge(model="rescal", entity_dim=3)
        keyspace = KGEKeySpace(graph, config)
        assert config.base_dim == 3
        assert config.keys_per_relation == 3
        assert keyspace.num_keys == graph.num_entities + 3 * graph.num_relations
        assert len(keyspace.relation_keys(1)) == 3

    def test_out_of_range_rejected(self):
        graph, config = build_kge()
        keyspace = KGEKeySpace(graph, config)
        with pytest.raises(ExperimentError):
            keyspace.entity_key(10_000)
        with pytest.raises(ExperimentError):
            keyspace.relation_keys(10_000)

    def test_config_validation(self):
        with pytest.raises(ExperimentError):
            KGEConfig(model="transe")
        with pytest.raises(ExperimentError):
            KGEConfig(entity_dim=0)
        with pytest.raises(ExperimentError):
            KGEConfig(num_negatives=0)
        with pytest.raises(ExperimentError):
            KGEConfig(learning_rate=0)


class TestGradients:
    def test_rescal_score_matches_bilinear_form(self):
        trainer, _, _, config = build_trainer(LapsePS, model="rescal")
        rng = np.random.default_rng(0)
        d = config.entity_dim
        subject, obj = rng.normal(size=d), rng.normal(size=d)
        relation = rng.normal(size=(d, d))
        score, grad_s, grad_r, grad_o = trainer._score_and_grads(subject, relation, obj)
        assert score == pytest.approx(subject @ relation @ obj)
        np.testing.assert_allclose(grad_s, relation @ obj)
        np.testing.assert_allclose(grad_o, relation.T @ subject)
        np.testing.assert_allclose(grad_r, np.outer(subject, obj))

    def test_complex_gradients_match_numerical(self):
        trainer, _, _, config = build_trainer(LapsePS, model="complex")
        rng = np.random.default_rng(1)
        dim = config.base_dim
        subject, obj = rng.normal(size=dim), rng.normal(size=dim)
        relation = rng.normal(size=(1, dim))

        def score_fn(s, r, o):
            return trainer._score_and_grads(s, r, o)[0]

        score, grad_s, grad_r, grad_o = trainer._score_and_grads(subject, relation, obj)
        epsilon = 1e-6
        for i in range(dim):
            bumped = subject.copy()
            bumped[i] += epsilon
            numerical = (score_fn(bumped, relation, obj) - score) / epsilon
            assert numerical == pytest.approx(grad_s[i], rel=1e-3, abs=1e-5)
        for i in range(dim):
            bumped = obj.copy()
            bumped[i] += epsilon
            numerical = (score_fn(subject, relation, bumped) - score) / epsilon
            assert numerical == pytest.approx(grad_o[i], rel=1e-3, abs=1e-5)


def score_margin(trainer, graph, num_samples=100, seed=3):
    """Mean score of true triples minus mean score of random object corruptions."""
    rng = np.random.default_rng(seed)
    values = trainer._gather_values()
    positives, negatives = [], []
    indices = rng.choice(graph.num_triples, size=min(num_samples, graph.num_triples), replace=False)
    for index in indices:
        subject = int(graph.subjects[index])
        relation = int(graph.relations[index])
        obj = int(graph.objects[index])
        relation_rows = np.vstack(
            [values[key] for key in trainer.keyspace.relation_keys(relation)]
        )
        positives.append(
            trainer._score_and_grads(values[subject], relation_rows, values[obj])[0]
        )
        corrupted = int(rng.integers(0, graph.num_entities))
        negatives.append(
            trainer._score_and_grads(values[subject], relation_rows, values[corrupted])[0]
        )
    return float(np.mean(positives) - np.mean(negatives))


class TestTraining:
    def test_loss_decreases_complex(self):
        trainer, ps, _, _ = build_trainer(LapsePS, model="complex", num_triples=60)
        initial = trainer.evaluation_loss()
        results = trainer.train(num_epochs=2)
        assert results[-1].loss < initial

    @pytest.mark.parametrize("model", ["complex", "rescal"])
    def test_training_separates_true_from_corrupted_triples(self, model):
        trainer, ps, graph, _ = build_trainer(LapsePS, model=model, num_triples=60)
        margin_before = score_margin(trainer, graph)
        trainer.train(num_epochs=2, compute_loss=False)
        margin_after = score_margin(trainer, graph)
        assert margin_after > margin_before + 0.01

    def test_latency_hiding_makes_entity_accesses_mostly_local(self):
        trainer, ps, _, _ = build_trainer(LapsePS, model="complex")
        trainer.train(num_epochs=1, compute_loss=False)
        metrics = ps.metrics()
        assert metrics.local_read_fraction > 0.8
        assert metrics.relocations > 0

    def test_data_clustering_only_variant_runs(self):
        trainer, ps, _, _ = build_trainer(
            LapsePS, model="rescal", latency_hiding=False
        )
        results = trainer.train(num_epochs=1, compute_loss=False)
        assert results[0].duration > 0
        # Entity accesses are remote in this variant, relation accesses local.
        assert ps.metrics().key_reads_remote > 0

    def test_classic_ps_runs_and_is_slower(self):
        lapse_trainer, _, _, _ = build_trainer(LapsePS, model="complex", seed=2)
        classic_trainer, _, _, _ = build_trainer(ClassicSharedMemoryPS, model="complex", seed=2)
        lapse_time = lapse_trainer.train(num_epochs=1, compute_loss=False)[0].duration
        classic_time = classic_trainer.train(num_epochs=1, compute_loss=False)[0].duration
        assert classic_time > lapse_time

    def test_trainer_validation(self):
        graph, config = build_kge()
        cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
        bad_ps = LapsePS(cluster, ParameterServerConfig(num_keys=5, value_length=config.value_length))
        with pytest.raises(ExperimentError):
            KGETrainer(bad_ps, graph, config)
