"""Tests for DSGD matrix factorization on all PS variants and the low-level baseline."""

import numpy as np
import pytest

from repro.config import ClusterConfig, ParameterServerConfig
from repro.data import generate_matrix
from repro.errors import ExperimentError
from repro.manual import LowLevelDSGD, LowLevelDSGDConfig
from repro.ml import MatrixFactorizationConfig, MatrixFactorizationTrainer
from repro.ps import ClassicPS, ClassicSharedMemoryPS, LapsePS, StalePS


RANK = 4


def build_trainer(ps_cls, num_nodes=2, workers_per_node=2, num_rows=24, num_cols=16,
                  num_entries=150, seed=0, **ps_kwargs):
    cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=workers_per_node, seed=seed)
    matrix = generate_matrix(num_rows, num_cols, num_entries, rank=RANK, seed=seed)
    ps_config = ParameterServerConfig(num_keys=num_cols, value_length=RANK, **ps_kwargs)
    ps = ps_cls(cluster, ps_config)
    config = MatrixFactorizationConfig(rank=RANK, learning_rate=0.05, compute_time_per_entry=1e-6)
    return MatrixFactorizationTrainer(ps, matrix, config, seed=seed), ps, matrix


class TestMatrixFactorizationOnLapse:
    def test_loss_decreases_over_epochs(self):
        trainer, ps, matrix = build_trainer(LapsePS)
        initial_loss = trainer.training_rmse()
        results = trainer.train(num_epochs=3)
        assert results[-1].loss < initial_loss
        assert results[0].loss > results[-1].loss or results[-1].loss < 0.5

    def test_epoch_durations_positive_and_monotone_time(self):
        trainer, ps, _ = build_trainer(LapsePS)
        results = trainer.train(num_epochs=2, compute_loss=False)
        assert all(r.duration > 0 for r in results)
        assert results[1].end_time > results[0].end_time

    def test_parameter_blocking_makes_accesses_local(self):
        trainer, ps, _ = build_trainer(LapsePS)
        trainer.train(num_epochs=1, compute_loss=False)
        metrics = ps.metrics()
        assert metrics.local_read_fraction > 0.95
        assert metrics.relocations > 0

    def test_column_factors_shape(self):
        trainer, ps, matrix = build_trainer(LapsePS)
        factors = trainer.column_factors()
        assert factors.shape == (matrix.num_cols, RANK)


class TestMatrixFactorizationOnOtherPS:
    def test_classic_ps_converges_but_uses_remote_access(self):
        trainer, ps, _ = build_trainer(ClassicSharedMemoryPS)
        initial_loss = trainer.training_rmse()
        results = trainer.train(num_epochs=2)
        assert results[-1].loss < initial_loss
        assert ps.metrics().key_reads_remote > 0

    def test_classic_slower_than_lapse(self):
        lapse_trainer, lapse_ps, _ = build_trainer(LapsePS)
        classic_trainer, classic_ps, _ = build_trainer(ClassicSharedMemoryPS)
        lapse_time = lapse_trainer.train(num_epochs=1, compute_loss=False)[0].duration
        classic_time = classic_trainer.train(num_epochs=1, compute_loss=False)[0].duration
        assert classic_time > lapse_time

    def test_stale_ps_converges(self):
        trainer, ps, _ = build_trainer(StalePS, staleness_bound=1)
        initial_loss = trainer.training_rmse()
        results = trainer.train(num_epochs=2)
        assert results[-1].loss < initial_loss
        assert ps.metrics().clock_advances > 0

    def test_same_seed_same_initialization_across_variants(self):
        trainer_a, _, _ = build_trainer(LapsePS, seed=3)
        trainer_b, _, _ = build_trainer(ClassicPS, seed=3)
        np.testing.assert_allclose(trainer_a.row_factors, trainer_b.row_factors)
        np.testing.assert_allclose(trainer_a.column_factors(), trainer_b.column_factors())


class TestTrainerValidation:
    def test_key_space_mismatch_rejected(self):
        cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
        matrix = generate_matrix(10, 10, 40, rank=RANK)
        ps = LapsePS(cluster, ParameterServerConfig(num_keys=99, value_length=RANK))
        with pytest.raises(ExperimentError):
            MatrixFactorizationTrainer(ps, matrix, MatrixFactorizationConfig(rank=RANK))

    def test_value_length_mismatch_rejected(self):
        cluster = ClusterConfig(num_nodes=1, workers_per_node=1)
        matrix = generate_matrix(10, 10, 40, rank=RANK)
        ps = LapsePS(cluster, ParameterServerConfig(num_keys=10, value_length=RANK + 1))
        with pytest.raises(ExperimentError):
            MatrixFactorizationTrainer(ps, matrix, MatrixFactorizationConfig(rank=RANK))

    def test_config_validation(self):
        with pytest.raises(ExperimentError):
            MatrixFactorizationConfig(rank=0)
        with pytest.raises(ExperimentError):
            MatrixFactorizationConfig(learning_rate=0)
        with pytest.raises(ExperimentError):
            MatrixFactorizationConfig(regularization=-1)
        with pytest.raises(ExperimentError):
            MatrixFactorizationTrainer(
                LapsePS(
                    ClusterConfig(num_nodes=1, workers_per_node=1),
                    ParameterServerConfig(num_keys=10, value_length=RANK),
                ),
                generate_matrix(10, 10, 40, rank=RANK),
                MatrixFactorizationConfig(rank=RANK),
            ).train(num_epochs=0)


class TestLowLevelBaseline:
    def _build(self, num_nodes=2):
        cluster = ClusterConfig(num_nodes=num_nodes, workers_per_node=2, seed=0)
        matrix = generate_matrix(24, 16, 150, rank=RANK, seed=0)
        return LowLevelDSGD(cluster, matrix, LowLevelDSGDConfig(rank=RANK, compute_time_per_entry=1e-6))

    def test_loss_decreases(self):
        baseline = self._build()
        initial = baseline.training_rmse()
        results = baseline.train(num_epochs=3)
        assert results[-1].loss < initial

    def test_low_level_faster_than_lapse(self):
        baseline = self._build()
        lapse_trainer, _, _ = build_trainer(LapsePS)
        baseline_time = baseline.train(num_epochs=1, compute_loss=False)[0].duration
        lapse_time = lapse_trainer.train(num_epochs=1, compute_loss=False)[0].duration
        assert baseline_time < lapse_time

    def test_validation(self):
        with pytest.raises(ExperimentError):
            LowLevelDSGDConfig(rank=0)
        with pytest.raises(ExperimentError):
            LowLevelDSGDConfig(learning_rate=0)
        baseline = self._build()
        with pytest.raises(ExperimentError):
            baseline.train(num_epochs=0)
