"""Documentation integrity checks.

CI runs these to make sure the README and the architecture documentation do
not rot: every local file or directory they reference must exist, every
module path they name must be importable from the repository layout, and the
system-name table in the README must match the experiment runner's registry.
"""

import ast
import os
import re

import pytest

from repro.experiments import SYSTEMS

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOC_FILES = ("README.md", "PAPER.md", "docs/architecture.md")

#: Markdown links such as ``[text](examples/quickstart.py)``.
_LINK = re.compile(r"\[[^\]]+\]\(([^)#]+)(?:#[^)]*)?\)")
#: Inline-code references to repository paths such as ```src/repro/ps/replica.py```.
_CODE_PATH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_./-]+?\.(?:py|md))`")


def _read(relpath):
    with open(os.path.join(ROOT, relpath), encoding="utf-8") as handle:
        return handle.read()


@pytest.mark.parametrize("doc", DOC_FILES)
def test_doc_exists(doc):
    assert os.path.isfile(os.path.join(ROOT, doc)), f"{doc} is missing"


@pytest.mark.parametrize("doc", DOC_FILES)
def test_markdown_links_resolve(doc):
    text = _read(doc)
    base = os.path.dirname(os.path.join(ROOT, doc))
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not os.path.exists(os.path.normpath(os.path.join(base, target))):
            broken.append(target)
    assert not broken, f"{doc} references missing paths: {broken}"


@pytest.mark.parametrize("doc", DOC_FILES)
def test_inline_code_paths_resolve(doc):
    # Docs shorten module paths once a package has been introduced, so a
    # reference may be relative to the repo root or to the package root.
    bases = (ROOT, os.path.join(ROOT, "src"), os.path.join(ROOT, "src", "repro"))
    text = _read(doc)
    broken = []
    for target in _CODE_PATH.findall(text):
        if not any(os.path.exists(os.path.join(base, target)) for base in bases):
            broken.append(target)
    assert not broken, f"{doc} names missing files: {broken}"


def test_readme_system_table_matches_runner_registry():
    """Every system name the runner knows must be documented, and vice versa."""
    text = _read("README.md")
    documented = set(re.findall(r"^\| `([a-z_0-9]+)`", text, flags=re.MULTILINE))
    assert documented == set(SYSTEMS), (
        f"README system table ({sorted(documented)}) out of sync with "
        f"repro.experiments.SYSTEMS ({sorted(SYSTEMS)})"
    )


def test_readme_documents_tier1_command():
    assert "python -m pytest -x -q" in _read("README.md")


def test_architecture_doc_names_real_modules():
    """Module paths mentioned in docs/architecture.md must exist on disk."""
    text = _read("docs/architecture.md")
    missing = []
    for match in re.findall(r"`(src/repro/[A-Za-z0-9_/]+?)/`", text):
        if not os.path.isdir(os.path.join(ROOT, match)):
            missing.append(match)
    assert not missing, f"architecture doc names missing packages: {missing}"


def test_examples_name_their_paper_anchor():
    """Each example's module docstring states which figure/table it reproduces."""
    examples_dir = os.path.join(ROOT, "examples")
    for name in sorted(os.listdir(examples_dir)):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(examples_dir, name), encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
        docstring = ast.get_docstring(tree) or ""
        assert re.search(r"(Figure|Table|Appendix|§)\s*\S+", docstring), (
            f"examples/{name} docstring does not name the paper "
            "figure/table/section it corresponds to"
        )
