"""Bit-identity sweep: traced runs vs untraced runs.

The tracing subsystem (``repro.obs``) claims to be *pure observation*: the
hooks read already-computed simulated times and append to Python lists, but
schedule no kernel events, send no messages, and draw from no RNG.  This
sweep runs every system with tracing enabled and requires exact equality of
simulated epoch durations (full float precision), message and byte counts,
training losses, the aggregated PS metric counters, and (spot-checked) the
final model parameters.

It also covers composition with the parallel shard engine: a ``jobs=2``
traced run must merge the shard-recorded span buffers into the same trace a
sequential traced run produces.
"""

import numpy as np
import pytest

from repro.experiments import (
    KGEScale,
    MFScale,
    W2VScale,
    make_parameter_server,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)
from repro.obs import TraceConfig

#: Every PS variant of the runner that supports all three workloads.
SYSTEMS = (
    "classic",
    "classic_fast_local",
    "lapse",
    "stale_ssp",
    "stale_ssppush",
    "replica",
    "hybrid",
)

MF = MFScale(num_rows=32, num_cols=16, num_entries=300, rank=4)
KGE = KGEScale(num_entities=40, num_relations=4, num_triples=60, entity_dim=2)
W2V = W2VScale(vocabulary_size=50, num_sentences=8)

NODES = dict(num_nodes=4, workers_per_node=2, epochs=2, seed=3)


def _fingerprint(result):
    return (
        tuple(repr(epoch.duration) for epoch in result.epochs),
        tuple(repr(epoch.loss) for epoch in result.epochs),
        result.remote_messages,
        result.bytes_sent,
        result.metrics.as_dict() if result.metrics else None,
    )


@pytest.mark.parametrize("system", SYSTEMS)
def test_mf_traced_identical(system):
    plain = run_mf_experiment(system, scale=MF, compute_loss=True, **NODES)
    traced = run_mf_experiment(
        system, scale=MF, compute_loss=True, trace=TraceConfig(), **NODES
    )
    assert plain.tracer is None
    assert traced.tracer is not None
    assert traced.tracer.span_count() > 0
    assert _fingerprint(plain) == _fingerprint(traced)


@pytest.mark.parametrize("system", ("classic", "lapse"))
def test_kge_traced_identical(system):
    plain = run_kge_experiment(system, scale=KGE, compute_loss=True, **NODES)
    traced = run_kge_experiment(
        system, scale=KGE, compute_loss=True, trace=TraceConfig(), **NODES
    )
    assert _fingerprint(plain) == _fingerprint(traced)


@pytest.mark.parametrize("system", ("lapse",))
def test_w2v_traced_identical(system):
    plain = run_w2v_experiment(system, scale=W2V, compute_error=True, **NODES)
    traced = run_w2v_experiment(
        system, scale=W2V, compute_error=True, trace=TraceConfig(), **NODES
    )
    assert _fingerprint(plain) == _fingerprint(traced)


def test_disabled_config_is_untraced():
    """``TraceConfig(enabled=False)`` installs nothing (the off switch)."""
    result = run_mf_experiment(
        "lapse", scale=MF, trace=TraceConfig(enabled=False), **NODES
    )
    assert result.tracer is None


def _train_mf(system, trace):
    from repro.config import ClusterConfig, ParameterServerConfig
    from repro.data import generate_matrix
    from repro.ml import MatrixFactorizationConfig, MatrixFactorizationTrainer

    cluster = ClusterConfig(num_nodes=4, workers_per_node=2)
    matrix = generate_matrix(num_rows=32, num_cols=16, num_entries=300, seed=3)
    ps = make_parameter_server(
        system,
        cluster,
        ParameterServerConfig(num_keys=matrix.num_cols, value_length=4),
        trace=trace,
    )
    trainer = MatrixFactorizationTrainer(
        ps, matrix, MatrixFactorizationConfig(rank=4), seed=3
    )
    trainer.train(num_epochs=2, compute_loss=False)
    return trainer.column_factors(), trainer.row_factors


@pytest.mark.parametrize("system", ("lapse", "hybrid"))
def test_mf_model_parameters_bit_identical(system):
    """Final model parameters match exactly, not just aggregate counters."""
    plain_cols, plain_rows = _train_mf(system, trace=None)
    traced_cols, traced_rows = _train_mf(system, trace=TraceConfig())
    assert np.array_equal(plain_cols, traced_cols)
    assert np.array_equal(plain_rows, traced_rows)


def test_jobs2_traced_identical_and_merged():
    """Tracing composes with the parallel engine: same results, same spans."""
    seq = run_mf_experiment(
        "lapse", scale=MF, compute_loss=True, trace=TraceConfig(), **NODES
    )
    par = run_mf_experiment(
        "lapse", scale=MF, compute_loss=True, trace=TraceConfig(), jobs=2, **NODES
    )
    assert par.jobs == 2
    assert _fingerprint(seq) == _fingerprint(par)
    # The shard processes recorded the spans; the merged driver-side buffers
    # must contain exactly what the sequential run recorded.
    assert par.tracer.span_count() == seq.tracer.span_count()
    seq_traces = {t.node: t for t in seq.tracer.node_traces()}
    par_traces = {t.node: t for t in par.tracer.node_traces()}
    assert set(seq_traces) == set(par_traces) == set(range(4))
    for node, seq_trace in seq_traces.items():
        par_trace = par_traces[node]
        assert sorted(seq_trace.ops) == sorted(par_trace.ops)
        assert sorted(seq_trace.server) == sorted(par_trace.server)
        assert sorted(seq_trace.net) == sorted(par_trace.net)
        assert sorted(seq_trace.reloc) == sorted(par_trace.reloc)
