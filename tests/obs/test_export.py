"""Trace export: Chrome trace-event schema, elastic markers, report CLI.

Covers the Perfetto/Chrome trace-event JSON produced by
``Tracer.export`` — schema validity (``validate_trace``), the span
taxonomy (op/server/net/relocation lanes, instant markers, counter
series), an elastic lifecycle whose relocations and membership events
must appear in the exported timeline, and the ``python -m
repro.obs.report`` command-line summarizer.
"""

import json

import pytest

from repro.cluster import ClusterSchedule
from repro.errors import ObservabilityError
from repro.experiments import MFScale, run_mf_experiment
from repro.experiments.runner import make_elastic_mf
from repro.obs import TraceConfig, load_trace, validate_trace
from repro.obs.export import NETWORK_TID, RELOCATION_TID, SERVER_TID
from repro.obs.report import main as report_main

MF = MFScale(num_rows=32, num_cols=16, num_entries=300, rank=4)
NODES = dict(num_nodes=4, workers_per_node=2, epochs=2, seed=3)


@pytest.fixture(scope="module")
def traced_run():
    return run_mf_experiment("lapse", scale=MF, trace=TraceConfig(), **NODES)


@pytest.fixture(scope="module")
def document(traced_run):
    return traced_run.tracer.to_dict()


def test_export_is_schema_valid(document):
    validate_trace(document)


def test_export_roundtrips_through_file(tmp_path, traced_run):
    path = tmp_path / "trace.json"
    exported = traced_run.tracer.export(str(path))
    validate_trace(exported)
    loaded = load_trace(str(path))
    assert loaded == json.loads(json.dumps(exported))


def test_export_covers_all_lanes(document):
    events = document["traceEvents"]
    phases = {event["ph"] for event in events}
    assert "X" in phases and "M" in phases and "C" in phases
    tids = {event["tid"] for event in events if event["ph"] == "X"}
    assert SERVER_TID in tids  # server handling lane
    assert NETWORK_TID in tids  # wire messages lane
    assert RELOCATION_TID in tids  # lapse relocations lane
    assert 0 in tids  # per-worker op spans
    pids = {event["pid"] for event in events if event["ph"] == "X"}
    assert pids == set(range(NODES["num_nodes"]))


def test_export_metadata_and_summary(document):
    repro = document["repro"]
    assert repro["system"] == "lapse"
    assert repro["time_domain"] == "sim"
    assert repro["summary"]["span_count"] > 0
    assert repro["heatmap"]  # per-key access heatmap present
    assert document["displayTimeUnit"] == "ms"


def test_elastic_lifecycle_markers_and_relocations(tmp_path):
    """A join mid-run shows up as membership markers plus relocation spans."""
    schedule = ClusterSchedule().join(0.002, node=2)
    elastic, trainer = make_elastic_mf(
        "lapse",
        num_nodes=3,
        initial_nodes=(0, 1),
        schedule=schedule,
        scale=MF,
        workers_per_node=2,
        seed=3,
        trace=TraceConfig(),
    )
    for _ in range(2):
        elastic.run_epoch(trainer)
    tracer = elastic.ps.tracer
    document = tracer.export(str(tmp_path / "elastic.json"))
    validate_trace(document)
    instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
    names = {e["name"] for e in instants}
    assert any(name.startswith("membership:join") for name in names), names
    assert any(name.startswith("rebalance:") for name in names), names
    relocations = [
        e
        for e in document["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == "relocation"
    ]
    assert relocations  # ownership moved during the join and the training


def test_report_cli(tmp_path, traced_run, capsys):
    path = tmp_path / "trace.json"
    traced_run.tracer.export(str(path))
    assert report_main([str(path), "--validate", "--top", "3"]) == 0
    output = capsys.readouterr().out
    assert "schema OK" in output
    assert "system=lapse" in output
    assert "Operation latency" in output
    assert "Hottest keys" in output


def test_report_cli_rejects_malformed(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"traceEvents": [{"ph": "Z", "name": 3}]}))
    assert report_main([str(path), "--validate"]) == 1


def test_validate_rejects_malformed_events():
    with pytest.raises(ObservabilityError):
        validate_trace({"traceEvents": [{"ph": "X", "name": "op"}]})
    with pytest.raises(ObservabilityError):
        validate_trace({"traceEvents": "nope"})
    with pytest.raises(ObservabilityError):
        validate_trace([])


def test_selective_kinds():
    """Per-kind switches drop exactly their span families."""
    config = TraceConfig(server=False, network=False, metrics_interval=None)
    result = run_mf_experiment("lapse", scale=MF, trace=config, **NODES)
    for trace in result.tracer.node_traces():
        assert not trace.server
        assert not trace.net
        assert not trace.samples
        assert trace.ops  # op spans still recorded
