"""Wall-clock tracing on the real (multiprocessing) backend.

The real backend's worker processes record op spans with wall-clock
timestamps, reset their forked buffer copies on startup, and report span
deltas back through the parent queue; the parent merges them into its
per-node buffers so export works exactly like on the simulator (with
``time_domain="wall"``).
"""

import multiprocessing

import pytest

from repro.experiments import MFScale, run_mf_experiment
from repro.obs import TraceConfig, validate_trace

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the real backend requires the fork start method",
)

MF = MFScale(num_rows=32, num_cols=16, num_entries=300, rank=4)


def test_real_backend_traced_run(tmp_path):
    result = run_mf_experiment(
        "lapse",
        scale=MF,
        num_nodes=2,
        workers_per_node=2,
        epochs=1,
        seed=3,
        backend="real",
        trace=TraceConfig(),
    )
    tracer = result.tracer
    assert tracer is not None
    assert tracer.time_domain == "wall"
    assert tracer.span_count() > 0
    # Every worker recorded spans and they merged back into the parent.
    workers = {op[1] for trace in tracer.node_traces() for op in trace.ops}
    assert workers == set(range(4))
    # Wall-clock spans have non-negative duration and the histograms agree
    # with the span count per op type.
    histograms = tracer.op_histograms()
    assert histograms
    for trace in tracer.node_traces():
        for _op, _worker, issued, completed, _nkeys in trace.ops:
            assert completed >= issued >= 0.0
    document = tracer.export(str(tmp_path / "real.json"))
    validate_trace(document)
    assert document["repro"]["time_domain"] == "wall"
