"""Checkers for per-key consistency properties of recorded histories.

Terminology follows §3.4 of the paper and the references therein:

* **Sequential consistency** (Lamport): there is a single total order of all
  operations on a key that (1) respects every worker's program order and
  (2) in which every pull returns the cumulative effect of exactly the pushes
  ordered before it.
* **Client-centric (session) guarantees** (Terry et al.): monotonic reads,
  monotonic writes, read your writes, writes follow reads.
* **Causal consistency** is reported as the conjunction of the four session
  guarantees (a per-key approximation adequate for cumulative single-key
  histories).
* **Eventual consistency**: a read issued after the system quiesced (all
  pushes completed) observes all pushes.

Because pushes are tagged with distinct powers of two
(:class:`~repro.consistency.history.UpdateTagger`), every pull's return value
identifies exactly the set of pushes applied when it was served, which makes
all of these properties decidable from the client-observed history alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.consistency.history import History, Operation


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one consistency check."""

    ok: bool
    property_name: str
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


def _ok(name: str) -> CheckResult:
    return CheckResult(ok=True, property_name=name)


def _fail(name: str, reason: str) -> CheckResult:
    return CheckResult(ok=False, property_name=name, reason=reason)


# ------------------------------------------------------------------ eventual
def check_eventual(history: History) -> CheckResult:
    """Quiescent reads observe every push."""
    name = "eventual"
    all_pushes = history.push_ids
    if not all_pushes:
        return _ok(name)
    last_push_completion = max(op.completed_at for op in history.pushes)
    quiescent_pulls = [
        op for op in history.pulls if op.invoked_at >= last_push_completion
    ]
    for pull in quiescent_pulls:
        if pull.observed != all_pushes:
            missing = sorted(all_pushes - pull.observed)
            return _fail(
                name,
                f"quiescent pull by worker {pull.worker_id} missed pushes {missing}",
            )
    return _ok(name)


def check_eventual_after(history: History, quiesce_time: float) -> CheckResult:
    """Eventual consistency relative to an explicit quiescence point.

    :func:`check_eventual` places the quiescence point at the completion of
    the last push — appropriate for systems that apply writes at the owner
    before acknowledging them.  A *replicated* PS acknowledges writes locally
    and propagates them asynchronously, so a read issued right after the last
    push may legitimately miss other nodes' writes while the system is still
    converging; the guarantee it does give is that reads issued after the
    propagation quiesced observe everything.  This checker makes that testable:
    pulls invoked at or after ``quiesce_time`` (a time the caller knows the
    synchronization loop to have drained by, e.g. after a final
    synchronization round plus its network delay) must observe every push.

    The §3.4 discussion predicts exactly this weakening for cached/replicated
    reads: between synchronization rounds the strong per-key properties fail
    (see :func:`check_sequential`), while eventual convergence survives.
    """
    name = "eventual (explicit quiescence)"
    all_pushes = history.push_ids
    if not all_pushes:
        return _ok(name)
    quiescent_pulls = [op for op in history.pulls if op.invoked_at >= quiesce_time]
    for pull in quiescent_pulls:
        if pull.observed != all_pushes:
            missing = sorted(all_pushes - pull.observed)
            return _fail(
                name,
                f"pull by worker {pull.worker_id} invoked at {pull.invoked_at:.6f} "
                f"(after quiescence at {quiesce_time:.6f}) missed pushes {missing}",
            )
    return _ok(name)


# ------------------------------------------------------------- session guarantees
def check_monotonic_reads(history: History) -> CheckResult:
    """Successive reads of one worker never lose previously observed pushes."""
    name = "monotonic reads"
    for worker, ops in history.by_worker().items():
        seen = frozenset()
        for op in ops:
            if op.kind != "pull":
                continue
            if not seen.issubset(op.observed):
                lost = sorted(seen - op.observed)
                return _fail(
                    name, f"worker {worker} lost previously observed pushes {lost}"
                )
            seen = op.observed
    return _ok(name)


def check_read_your_writes(history: History) -> CheckResult:
    """A worker's reads observe all of its own earlier writes."""
    name = "read your writes"
    for worker, ops in history.by_worker().items():
        own_pushes = set()
        for op in ops:
            if op.kind == "push":
                own_pushes.add(op.push_id)
            elif not own_pushes.issubset(op.observed):
                missing = sorted(own_pushes - op.observed)
                return _fail(
                    name, f"worker {worker} did not observe its own pushes {missing}"
                )
    return _ok(name)


def check_monotonic_writes(history: History) -> CheckResult:
    """Writes of one worker become visible in program order."""
    name = "monotonic writes"
    program_order: Dict[int, List[int]] = {}
    for worker, ops in history.by_worker().items():
        program_order[worker] = [op.push_id for op in ops if op.kind == "push"]
    for pull in history.pulls:
        for worker, pushes in program_order.items():
            observed_from_worker = [p for p in pushes if p in pull.observed]
            # If push i from this worker is observed, every earlier push of the
            # same worker must be observed as well.
            expected_prefix = pushes[: len(observed_from_worker)]
            if observed_from_worker != expected_prefix:
                return _fail(
                    name,
                    f"pull by worker {pull.worker_id} observed worker {worker}'s "
                    f"pushes out of program order: {observed_from_worker}",
                )
    return _ok(name)


def check_writes_follow_reads(history: History) -> CheckResult:
    """A write issued after a read is never visible without what that read saw."""
    name = "writes follow reads"
    # For each push, the union of everything its issuing worker had observed
    # before issuing it.
    depends_on: Dict[int, frozenset] = {}
    for worker, ops in history.by_worker().items():
        seen: frozenset = frozenset()
        own: set = set()
        for op in ops:
            if op.kind == "pull":
                seen = seen | op.observed
            else:
                depends_on[op.push_id] = frozenset(seen | own)
                own.add(op.push_id)
    for pull in history.pulls:
        for push_id in pull.observed:
            dependencies = depends_on.get(push_id, frozenset())
            if not dependencies.issubset(pull.observed):
                missing = sorted(dependencies - pull.observed)
                return _fail(
                    name,
                    f"pull by worker {pull.worker_id} observed push {push_id} but "
                    f"not its causal dependencies {missing}",
                )
    return _ok(name)


def check_causal(history: History) -> CheckResult:
    """Per-key causal consistency (conjunction of the session guarantees)."""
    name = "causal"
    for check in (
        check_monotonic_reads,
        check_monotonic_writes,
        check_read_your_writes,
        check_writes_follow_reads,
    ):
        result = check(history)
        if not result.ok:
            return _fail(name, f"{result.property_name} violated: {result.reason}")
    return _ok(name)


# ---------------------------------------------------------------- sequential
def check_sequential(history: History) -> CheckResult:
    """Sequential consistency via a constraint-graph acyclicity test.

    Builds a graph over all operations with (a) program-order edges and
    (b) for every pull/push pair on the key, an edge push→pull if the pull
    observed the push and pull→push otherwise.  A total order satisfying the
    definition exists if and only if this graph is acyclic.
    """
    name = "sequential"
    operations = history.operations
    index = {id(op): i for i, op in enumerate(operations)}
    successors: Dict[int, set] = {i: set() for i in range(len(operations))}

    def add_edge(src: Operation, dst: Operation) -> None:
        successors[index[id(src)]].add(index[id(dst)])

    for worker, ops in history.by_worker().items():
        for earlier, later in zip(ops, ops[1:]):
            add_edge(earlier, later)
    pulls = history.pulls
    pushes = history.pushes
    for pull in pulls:
        for push in pushes:
            if push.push_id in pull.observed:
                add_edge(push, pull)
            else:
                add_edge(pull, push)

    cycle = _find_cycle(successors)
    if cycle is None:
        return _ok(name)
    described = " -> ".join(
        f"{operations[i].kind}(worker {operations[i].worker_id}, seq {operations[i].sequence})"
        for i in cycle
    )
    return _fail(name, f"no total order exists; constraint cycle: {described}")


def _find_cycle(successors: Mapping[int, set]) -> Optional[List[int]]:
    """Return one cycle in the directed graph, or None if it is acyclic."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in successors}
    stack_trace: List[int] = []

    def visit(node: int) -> Optional[List[int]]:
        color[node] = GRAY
        stack_trace.append(node)
        for successor in successors[node]:
            if color[successor] == GRAY:
                start = stack_trace.index(successor)
                return stack_trace[start:] + [successor]
            if color[successor] == WHITE:
                cycle = visit(successor)
                if cycle is not None:
                    return cycle
        stack_trace.pop()
        color[node] = BLACK
        return None

    for node in successors:
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


def check_sequential_exhaustive(history: History, max_operations: int = 12) -> CheckResult:
    """Exhaustively search for a witness total order (small histories only).

    This is an independent (much slower) implementation used to cross-check
    :func:`check_sequential` in the test-suite.
    """
    name = "sequential (exhaustive)"
    if len(history) > max_operations:
        return _fail(
            name,
            f"history has {len(history)} operations; exhaustive search is limited to "
            f"{max_operations}",
        )
    by_worker = history.by_worker()
    workers = sorted(by_worker.keys())
    positions = {worker: 0 for worker in workers}

    def backtrack(applied: frozenset) -> bool:
        finished = all(positions[w] == len(by_worker[w]) for w in workers)
        if finished:
            return True
        for worker in workers:
            pos = positions[worker]
            if pos == len(by_worker[worker]):
                continue
            op = by_worker[worker][pos]
            if op.kind == "pull" and op.observed != applied:
                continue
            positions[worker] += 1
            next_applied = applied | {op.push_id} if op.kind == "push" else applied
            if backtrack(next_applied):
                positions[worker] -= 1
                return True
            positions[worker] -= 1
        return False

    if backtrack(frozenset()):
        return _ok(name)
    return _fail(name, "no interleaving consistent with program order reproduces the reads")


# ------------------------------------------------------------------- reports
#: The properties reported in Table 1 of the paper, in table order.
TABLE1_PROPERTIES = (
    "eventual",
    "client-centric",
    "causal",
    "sequential",
)


def consistency_report(histories: Iterable[History]) -> Dict[str, bool]:
    """Evaluate the Table 1 properties over a collection of per-key histories.

    Returns a mapping from property name to whether the property held for
    *every* history.
    """
    report = {name: True for name in TABLE1_PROPERTIES}
    for history in histories:
        if not check_eventual(history).ok:
            report["eventual"] = False
        client_centric = (
            check_monotonic_reads(history).ok
            and check_monotonic_writes(history).ok
            and check_read_your_writes(history).ok
            and check_writes_follow_reads(history).ok
        )
        if not client_centric:
            report["client-centric"] = False
        if not check_causal(history).ok:
            report["causal"] = False
        if not check_sequential(history).ok:
            report["sequential"] = False
    return report
