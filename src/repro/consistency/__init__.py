"""Consistency analysis of parameter-server executions.

The paper compares the per-key consistency guarantees of classic PSs, Lapse
(with and without location caches) and stale PSs (Table 1, §3.4).  This
package provides the machinery to measure those guarantees empirically:

* :mod:`repro.consistency.history` — recording client-observed operation
  histories, with a bit-encoding of cumulative updates that makes every read
  identify exactly the set of writes it has observed,
* :mod:`repro.consistency.checkers` — checkers for eventual consistency,
  the client-centric session guarantees (monotonic reads/writes, read your
  writes, writes follow reads), causal-per-key, and sequential consistency,
  plus an exhaustive search checker for small histories.
"""

from repro.consistency.checkers import (
    CheckResult,
    check_causal,
    check_eventual,
    check_eventual_after,
    check_monotonic_reads,
    check_monotonic_writes,
    check_read_your_writes,
    check_sequential,
    check_sequential_exhaustive,
    check_writes_follow_reads,
    consistency_report,
)
from repro.consistency.history import History, Operation, UpdateTagger

__all__ = [
    "CheckResult",
    "History",
    "Operation",
    "UpdateTagger",
    "check_causal",
    "check_eventual",
    "check_eventual_after",
    "check_monotonic_reads",
    "check_monotonic_writes",
    "check_read_your_writes",
    "check_sequential",
    "check_sequential_exhaustive",
    "check_writes_follow_reads",
    "consistency_report",
]
