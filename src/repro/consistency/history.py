"""Recording of client-observed operation histories.

The consistency properties studied in the paper (§3.4, Table 1) are per-key
properties over the pull/push operations of all workers.  To decide whether a
recorded execution satisfies them, every push must be identifiable from the
values that later pulls return.  Because PS pushes are *cumulative*, we use a
bit-encoding: the ``i``-th push writes the update value ``2**i``, so a pulled
value's binary representation reveals exactly the set of pushes that had been
applied when the read was served.

:class:`UpdateTagger` hands out those tagged updates, :class:`Operation`
records one completed pull/push, and :class:`History` collects the operations
of all workers for checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ConsistencyViolation


@dataclass(frozen=True)
class Operation:
    """One completed client operation on a single key.

    Attributes:
        worker_id: The worker that issued the operation.
        kind: ``"pull"`` or ``"push"``.
        key: The parameter key.
        sequence: Program-order index of the operation within its worker.
        invoked_at: Simulated time of issue.
        completed_at: Simulated time of completion.
        push_id: For pushes, the unique id assigned by :class:`UpdateTagger`.
        observed: For pulls, the set of push ids whose updates were visible.
    """

    worker_id: int
    kind: str
    key: int
    sequence: int
    invoked_at: float
    completed_at: float
    push_id: Optional[int] = None
    observed: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if self.kind not in ("pull", "push"):
            raise ConsistencyViolation(f"unknown operation kind {self.kind!r}")
        if self.kind == "push" and self.push_id is None:
            raise ConsistencyViolation("push operations require a push_id")


class UpdateTagger:
    """Hands out uniquely identifiable cumulative updates.

    Each push gets a distinct id ``i`` and writes the scalar ``2**i`` (into the
    first component of the value vector), so any later read can be decoded into
    the exact set of pushes it reflects.
    """

    def __init__(self, initial_value: float = 0.0) -> None:
        if initial_value != 0.0:
            raise ConsistencyViolation(
                "UpdateTagger requires the parameter to start at zero"
            )
        self._next_id = 0

    def next_update(self) -> Tuple[int, float]:
        """Return ``(push_id, update_value)`` for the next push."""
        push_id = self._next_id
        self._next_id += 1
        if push_id >= 60:
            raise ConsistencyViolation(
                "UpdateTagger supports at most 60 pushes per key (float64 precision)"
            )
        return push_id, float(2**push_id)

    @staticmethod
    def decode(value: float) -> FrozenSet[int]:
        """Decode a read value into the set of push ids it includes."""
        integer = int(round(value))
        if integer < 0 or abs(value - integer) > 1e-6:
            raise ConsistencyViolation(
                f"value {value} is not a valid sum of distinct powers of two"
            )
        observed = set()
        bit = 0
        while integer:
            if integer & 1:
                observed.add(bit)
            integer >>= 1
            bit += 1
        return frozenset(observed)


class History:
    """A per-key multi-worker operation history."""

    def __init__(self, key: int, num_pushes: Optional[int] = None) -> None:
        self.key = key
        self.operations: List[Operation] = []
        self._num_pushes = num_pushes

    def record(self, operation: Operation) -> None:
        """Append one completed operation."""
        if operation.key != self.key:
            raise ConsistencyViolation(
                f"operation for key {operation.key} recorded in history of key {self.key}"
            )
        self.operations.append(operation)

    def record_pull(
        self,
        worker_id: int,
        sequence: int,
        invoked_at: float,
        completed_at: float,
        value: float,
    ) -> Operation:
        """Record a completed pull, decoding the observed push set from ``value``."""
        operation = Operation(
            worker_id=worker_id,
            kind="pull",
            key=self.key,
            sequence=sequence,
            invoked_at=invoked_at,
            completed_at=completed_at,
            observed=UpdateTagger.decode(value),
        )
        self.record(operation)
        return operation

    def record_push(
        self,
        worker_id: int,
        sequence: int,
        invoked_at: float,
        completed_at: float,
        push_id: int,
    ) -> Operation:
        """Record a completed push."""
        operation = Operation(
            worker_id=worker_id,
            kind="push",
            key=self.key,
            sequence=sequence,
            invoked_at=invoked_at,
            completed_at=completed_at,
            push_id=push_id,
        )
        self.record(operation)
        return operation

    # -------------------------------------------------------------- accessors
    @property
    def pulls(self) -> List[Operation]:
        """All pull operations, in recording order."""
        return [op for op in self.operations if op.kind == "pull"]

    @property
    def pushes(self) -> List[Operation]:
        """All push operations, in recording order."""
        return [op for op in self.operations if op.kind == "push"]

    @property
    def push_ids(self) -> FrozenSet[int]:
        """Ids of all pushes in the history."""
        return frozenset(op.push_id for op in self.pushes)

    def by_worker(self) -> Dict[int, List[Operation]]:
        """Operations grouped by worker, each list sorted by program order."""
        grouped: Dict[int, List[Operation]] = {}
        for op in self.operations:
            grouped.setdefault(op.worker_id, []).append(op)
        for ops in grouped.values():
            ops.sort(key=lambda op: op.sequence)
        return grouped

    def __len__(self) -> int:
        return len(self.operations)
