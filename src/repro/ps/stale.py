"""Stale parameter server (Petuum-style) with bounded-staleness replicas.

The *stale* PS architecture (§2.1) keeps the static parameter allocation of a
classic PS but replicates previously-accessed parameters to the nodes that
accessed them and tolerates bounded staleness in those replicas.  Applications
drive synchronization with an explicit ``clock`` primitive.  Freshness-aware
routing is implemented by :class:`~repro.ps.policy.StaleReplicaPolicy`.

Two synchronization strategies are implemented, mirroring the two Petuum modes
compared in §4.5:

* **Client-based synchronization (SSP)** — replicas are refreshed lazily: a
  read may use a replica only if it was fetched at a clock within the
  staleness bound; otherwise the reading node synchronously fetches a fresh
  value from the owner.  The number of these synchronous fetches per clock is
  constant in the number of workers, which is why this mode does not scale.
* **Server-based synchronization (SSPPush)** — owners remember which nodes
  accessed each parameter (learned during a warm-up epoch) and proactively
  push fresh values to all subscribers after every clock advance.  This
  removes the read latency but causes unnecessary communication because *all*
  previously accessed parameters are pushed, not just the ones needed next.

Local parameters are accessed through the server thread (inter-thread
communication), which the paper reports to be several times slower than
Lapse's shared-memory access — this is captured by
``CostModel.interthread_access_latency``.

The stale PS provides only eventual consistency for reads of remote
parameters (Table 1): reads may return values that are up to ``staleness``
clocks old and writes of other workers become visible only after a flush.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Generator, List, Sequence, Set, Tuple

import numpy as np

from repro.config import message_size
from repro.errors import ParameterServerError
from repro.ps.base import (
    NodeState,
    ParameterServer,
    WorkerClient,
    select_rows,
    van_address,
)
from repro.ps.futures import OperationHandle
from repro.ps.messages import (
    FlushAck,
    ReplicaFetchRequest,
    ReplicaFetchResponse,
    ReplicaPush,
    UpdateFlush,
)
from repro.ps.policy import ROUTE_LOCAL, ROUTE_REPLICA, StaleReplicaPolicy
from repro.ps.storage import gather_rows
from repro.simnet.events import Event


def _gather_replicas(
    replicas: Dict[int, List[Any]], keys: Sequence[int], value_length: int
) -> np.ndarray:
    """Copy replica values for ``keys`` into one (n, d) array in a single walk."""
    out = np.empty((len(keys), value_length), dtype=np.float64)
    for index, key in enumerate(keys):
        out[index] = replicas[key][0]
    return out


class StaleNodeState(NodeState):
    """Replica store, subscription table, and flush bookkeeping.

    The tables are installed by
    :meth:`repro.ps.policy.StaleReplicaPolicy.attach`; the annotations below
    document them.
    """

    replicas: Dict[int, List[Any]]
    subscriptions: Dict[int, Set[int]]
    flush_counts: Dict[int, int]
    pending_flush_acks: Dict[int, Event]
    pending_fetches: Dict[int, Tuple[OperationHandle, Tuple[int, ...]]]


class StaleWorkerClient(WorkerClient):
    """Client of the stale PS: replica reads, buffered writes, clock-driven flushes."""

    state: StaleNodeState

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Updates accumulated since the last clock, keyed by parameter key.
        self._write_buffer: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------- pull
    def _issue_pull(self, handle: OperationHandle, keys: Tuple[int, ...]) -> None:
        state = self.state
        metrics = state.metrics
        cost = self.ps.cluster.cost_model
        local_keys: List[int] = []
        replica_keys: List[int] = []
        fetch_groups: Dict[int, List[int]] = defaultdict(list)
        routes = self.policy.route_many(state, keys, clock=self._clock)
        for key, route in zip(keys, routes):
            if route.kind == ROUTE_LOCAL:
                local_keys.append(key)
            elif route.kind == ROUTE_REPLICA:
                replica_keys.append(key)
            else:
                fetch_groups[route.destination].append(key)
        if local_keys:
            metrics.key_reads_local += len(local_keys)
            delay = cost.interthread_access_latency * len(local_keys)
            self._complete_after(
                delay,
                lambda keys=tuple(local_keys): handle.complete_keys(
                    keys, state.read_local_many(keys)
                ),
            )
        if replica_keys:
            metrics.key_reads_local += len(replica_keys)
            metrics.replica_reads += len(replica_keys)
            delay = cost.interthread_access_latency * len(replica_keys)
            self._complete_after(
                delay,
                lambda keys=tuple(replica_keys): handle.complete_keys(
                    keys, _gather_replicas(state.replicas, keys, self.value_length)
                ),
            )
        for owner, owner_keys in fetch_groups.items():
            metrics.key_reads_remote += len(owner_keys)
            self._send_fetch(handle, owner, owner_keys)
        if fetch_groups:
            metrics.pulls_remote += 1
        else:
            metrics.pulls_local += 1

    def _send_fetch(
        self, handle: OperationHandle, owner: int, keys: List[int]
    ) -> None:
        for chunk in self._chunks(keys):
            op_id = self.ps.next_op_id()
            self.state.pending_fetches[op_id] = (handle, tuple(chunk))
            request = ReplicaFetchRequest(
                op_id=op_id,
                keys=tuple(chunk),
                requester_node=self.node_id,
                reply_to=van_address(self.node_id),
                clock=self._clock,
            )
            self.ps.send_to_server(
                self.node_id, owner, request, message_size(len(chunk), 0)
            )

    # ------------------------------------------------------------------- push
    def _issue_push(
        self,
        handle: OperationHandle,
        keys: Tuple[int, ...],
        updates: np.ndarray,
        needs_ack: bool,
    ) -> None:
        state = self.state
        metrics = state.metrics
        cost = self.ps.cluster.cost_model
        delay = cost.interthread_access_latency * len(keys)
        routes = self.policy.route_many(state, keys, write=True, clock=self._clock)
        local_keys = [
            key for key, route in zip(keys, routes) if route.kind == ROUTE_LOCAL
        ]
        local_rows = [
            index for index, route in enumerate(routes) if route.kind == ROUTE_LOCAL
        ]

        def action() -> None:
            if local_keys:
                state.write_local_many(local_keys, select_rows(updates, local_rows))
            for index, (key, route) in enumerate(zip(keys, routes)):
                if route.kind == ROUTE_LOCAL:
                    metrics.key_writes_local += 1
                    continue
                update = updates[index]
                buffered = self._write_buffer.get(key)
                if buffered is None:
                    self._write_buffer[key] = update.copy()
                else:
                    buffered += update
                # Make own writes visible locally within the staleness window.
                replica = state.replicas.get(key)
                if replica is not None:
                    replica[0] += update
                metrics.key_writes_local += 1
            handle.complete_keys(keys)

        metrics.pushes_local += 1
        self._complete_after(delay, action)

    # ------------------------------------------------------------------ clock
    def clock(self) -> Generator:
        """Advance this worker's clock: flush buffered updates to their owners.

        One (possibly empty) flush message is sent to every other node so that
        owners can track clock progress; the call blocks until all flushes are
        acknowledged.  This per-clock synchronization cost is constant in the
        number of workers, reproducing why client-based synchronization does
        not scale (§4.5).
        """
        self._clock += 1
        self.state.metrics.clock_advances += 1
        groups: Dict[int, Dict[int, np.ndarray]] = defaultdict(dict)
        if self._write_buffer:
            buffer_keys = list(self._write_buffer.keys())
            owners = self.ps.partitioner.nodes_of_list(buffer_keys)
            for key, owner in zip(buffer_keys, owners):
                groups[owner][key] = self._write_buffer[key]
        self._write_buffer = {}
        ack_events: List[Event] = []
        for node in range(self.ps.cluster.num_nodes):
            if node == self.node_id:
                continue
            node_updates = groups.get(node, {})
            keys = tuple(sorted(node_updates.keys()))
            if keys:
                updates = gather_rows(node_updates, keys, self.value_length)
            else:
                updates = np.zeros((0, self.value_length))
            op_id = self.ps.next_op_id()
            event = Event(self.sim)
            self.state.pending_flush_acks[op_id] = event
            ack_events.append(event)
            flush = UpdateFlush(
                op_id=op_id,
                keys=keys,
                updates=updates,
                source_node=self.node_id,
                clock=self._clock,
                reply_to=van_address(self.node_id),
            )
            self.ps.send_to_server(
                self.node_id, node, flush, message_size(len(keys), updates.size)
            )
        # The worker's own node needs no network flush, but its clock arrival
        # still counts toward the per-clock flush quota of the local server.
        self.ps.record_local_clock(self.state, self._clock)
        for event in ack_events:
            yield event
        return None


class StalePS(ParameterServer):
    """Petuum-style stale parameter server with SSP / SSPPush synchronization."""

    client_class = StaleWorkerClient
    policy_class = StaleReplicaPolicy
    name = "stale"

    def _make_node_state(self, node) -> StaleNodeState:
        return StaleNodeState(self, node)

    @property
    def server_push(self) -> bool:
        """Whether server-based synchronization (SSPPush) is enabled."""
        return self.ps_config.stale_server_push

    # ---------------------------------------------------------- server dispatch
    def _server_dispatch(self, state: StaleNodeState):  # type: ignore[override]
        # All stale-PS message types belong to the stale-replica policy.
        return dict(self.management_policy.server_handlers(state))

    def _handle_fetch(self, state: StaleNodeState, request: ReplicaFetchRequest) -> None:
        values = self.management_policy.handle_read(state, request.keys)
        if self.server_push:
            for key in request.keys:
                state.subscriptions[key].add(request.requester_node)
        response = ReplicaFetchResponse(
            op_id=request.op_id,
            keys=request.keys,
            values=values,
            clock=request.clock,
            responder_node=state.node_id,
        )
        size = message_size(len(request.keys), len(request.keys) * self.ps_config.value_length)
        self.network.send(state.node_id, request.reply_to, response, size)

    def _handle_flush(self, state: StaleNodeState, flush: UpdateFlush) -> None:
        if flush.keys:
            self.management_policy.handle_write(
                state, flush.keys, flush.updates, what="received an update for"
            )
        if flush.reply_to is not None:
            ack = FlushAck(
                op_id=flush.op_id, clock=flush.clock, responder_node=state.node_id
            )
            self.network.send(state.node_id, flush.reply_to, ack, message_size(0, 0))
        self._record_clock_arrival(state, flush.clock)

    def record_local_clock(self, state: StaleNodeState, clock: int) -> None:
        """Count a clock arrival from a worker co-located with this server."""
        self._record_clock_arrival(state, clock)

    def _record_clock_arrival(self, state: StaleNodeState, clock: int) -> None:
        state.flush_counts[clock] += 1
        if state.flush_counts[clock] == self.cluster.total_workers and self.server_push:
            self.management_policy.on_sync(state, clock)

    def _push_replicas(self, state: StaleNodeState, clock: int) -> None:
        """SSPPush: send fresh values of all subscribed keys to every subscriber."""
        per_subscriber: Dict[int, List[int]] = defaultdict(list)
        for key, subscribers in state.subscriptions.items():
            for node in subscribers:
                if node != state.node_id:
                    per_subscriber[node].append(key)
        for node, keys in per_subscriber.items():
            keys = sorted(keys)
            values = state.read_local_many(keys)
            push = ReplicaPush(
                keys=tuple(keys),
                values=values,
                clock=clock,
                responder_node=state.node_id,
            )
            self.send_to_server(
                state.node_id, node, push, message_size(len(keys), values.size)
            )

    def _handle_replica_push(self, state: StaleNodeState, push: ReplicaPush) -> None:
        # One bulk copy; each replica row is a view into the node-owned buffer.
        values = np.array(push.values, dtype=np.float64)
        for index, key in enumerate(push.keys):
            state.replicas[key] = [values[index], push.clock]
        state.metrics.replica_refreshes += len(push.keys)

    # -------------------------------------------------------------------- van
    def _handle_extra_van_message(self, state: StaleNodeState, message: Any) -> None:  # type: ignore[override]
        if isinstance(message, ReplicaFetchResponse):
            entry = state.pending_fetches.pop(message.op_id, None)
            if entry is None:
                return
            handle, keys = entry
            values = np.array(message.values, dtype=np.float64)
            for index, key in enumerate(message.keys):
                state.replicas[key] = [values[index], message.clock]
            handle.complete_keys(message.keys, message.values)
        elif isinstance(message, FlushAck):
            event = state.pending_flush_acks.pop(message.op_id, None)
            if event is not None:
                event.succeed(None)
        else:
            raise ParameterServerError(
                f"stale PS van on node {state.node_id} received unexpected "
                f"message {message!r}"
            )
