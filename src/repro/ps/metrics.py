"""Metric counters collected by every parameter-server variant.

The evaluation of the paper reports, besides run times, several operational
metrics: the number of (local vs. non-local) parameter reads, the number of
relocations per second, and mean relocation times (Table 5), plus the message
and traffic volumes implied by the location-management strategies (Table 3).
:class:`PSMetrics` collects exactly these quantities per node;
:meth:`PSMetrics.merge` aggregates them across a cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Optional

#: Histogram geometry: log-spaced buckets with ``_HIST_PER_OCTAVE`` sub-buckets
#: per power of two, anchored at ``_HIST_FLOOR`` (1 ns of simulated time).  160
#: buckets span 1 ns .. ~1100 s with a worst-case relative error of 2^(1/4)-1
#: (~19%), which is plenty for latency percentiles; memory is bounded at one
#: small int list per stat, allocated lazily on the first sample.
_HIST_FLOOR = 1e-9
_HIST_PER_OCTAVE = 4
_HIST_BUCKETS = 160
_HIST_SCALE = _HIST_PER_OCTAVE / math.log(2.0)


def _hist_index(value: float) -> int:
    """Bucket index for ``value`` (clamped to the histogram range)."""
    if value <= _HIST_FLOOR:
        return 0
    index = int(_HIST_SCALE * math.log(value / _HIST_FLOOR))
    if index >= _HIST_BUCKETS:
        return _HIST_BUCKETS - 1
    return index


def _hist_edge(index: int) -> float:
    """Upper edge of bucket ``index``."""
    return _HIST_FLOOR * 2.0 ** ((index + 1) / _HIST_PER_OCTAVE)


@dataclass
class RunningStat:
    """Streaming mean/min/max/count plus a bounded log-spaced histogram.

    The histogram keeps a fixed number of log-spaced buckets (HDR-histogram
    style), so percentile queries (:meth:`percentile`, :attr:`p50`,
    :attr:`p99`) run in O(buckets) with O(buckets) memory regardless of how
    many samples were recorded.  Reported percentiles are bucket upper edges
    clamped to the observed ``[minimum, maximum]`` range.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    buckets: Optional[List[int]] = field(default=None, repr=False)

    def record(self, value: float) -> None:
        """Add one sample."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        buckets = self.buckets
        if buckets is None:
            buckets = [0] * _HIST_BUCKETS
            self.buckets = buckets
        buckets[_hist_index(value)] += 1

    @property
    def mean(self) -> float:
        """Mean of the recorded samples (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """Approximate ``q``-quantile (``q`` in [0, 1]; 0.0 when empty)."""
        if self.count == 0:
            return 0.0
        if self.buckets is None:
            # Legacy stats (e.g. unpickled from an old run) carry no buckets;
            # the mean is the best available point estimate.
            return min(max(self.mean, self.minimum), self.maximum)
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.buckets):
            seen += bucket_count
            if seen >= target and bucket_count:
                return min(max(_hist_edge(index), self.minimum), self.maximum)
        return self.maximum

    @property
    def p50(self) -> float:
        """Median of the recorded samples (0.0 when empty)."""
        return self.percentile(0.50)

    @property
    def p99(self) -> float:
        """99th percentile of the recorded samples (0.0 when empty)."""
        return self.percentile(0.99)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Return a new stat combining this one with ``other``."""
        merged = RunningStat(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )
        if self.buckets is not None or other.buckets is not None:
            mine = self.buckets or [0] * _HIST_BUCKETS
            theirs = other.buckets or [0] * _HIST_BUCKETS
            merged.buckets = [a + b for a, b in zip(mine, theirs)]
        return merged


@dataclass
class PSMetrics:
    """Operation counters for one node (or, after merging, a whole cluster).

    Attributes:
        pulls_local: Pull operations answered from local (owned) parameters.
        pulls_remote: Pull operations that required network communication.
        pushes_local: Push operations applied locally.
        pushes_remote: Push operations that required network communication.
        key_reads_local / key_reads_remote: Per-key counts (a multi-key pull of
            ``n`` keys counts ``n`` key reads); these correspond to the
            "Parameter reads" columns of Table 5.
        localize_calls: Number of localize operations issued.
        localized_keys: Number of keys requested across all localize calls.
        relocations: Number of parameter relocations that actually moved a key.
        relocation_time: Distribution of relocation times (issue → new owner
            starts answering), §3.2.
        blocking_time: Distribution of blocking times (time the key was
            unavailable during relocation), §3.2.
        queued_ops: Operations queued at a new owner while a relocation was in
            flight.
        forwarded_ops: Operations forwarded because they arrived at a node that
            no longer owned the key (includes double-forwards).
        cache_hits / cache_misses / cache_stale: Location-cache outcomes.
        clock_advances: Clock/barrier advances (stale PS and parameter
            blocking).
        server_messages: Messages handled by this node's server thread (the
            generic dispatch loop counts every request/protocol message).
        replica_refreshes: Replica values refreshed from owners (stale and
            replica PS).
        replica_reads: Key reads answered from a local replica.
        replica_writes: Key writes applied to a local replica (replica PS).
        replica_creates: Replicas installed on this node (replica PS).
        replica_sync_rounds: Synchronization-loop firings (replica PS).
        replica_flush_messages: Replica-holder → owner update-flush messages.
        replica_broadcast_messages: Owner → subscriber delta broadcasts.
        replica_sync_keys: Per-key entries carried by flush/broadcast messages.
        replica_sync_bytes: Wire bytes of flush/broadcast messages (the
            replication-maintenance traffic, the replication analogue of
            Table 3's location-management traffic).
        rebalance_rounds: Membership-driven rebalance operations initiated by
            the elastic cluster runtime (join/drain/failure recovery).
        rebalanced_keys: Keys whose ownership the elastic runtime migrated to
            this node (via the relocation protocol) during rebalancing.
        rebalance_time: Distribution of rebalance completion times (membership
            event -> last migrated key installed), the "time-to-rebalance" of
            the elasticity benchmark.
        recovered_keys: Keys this node recovered after another node failed,
            from any source (surviving replicas or the durable log).
        lost_keys: Keys that had to be re-initialized on this node because
            their owner failed and no recovery source (replica, checkpoint,
            or WAL record) survived.
        wal_appends: Write-ahead-log records appended by this node.
        wal_bytes: Serialized size of the appended WAL records (simulated
            bytes: record header plus key and value payload).
        checkpoints: Checkpoints of this node's parameter store taken.
        checkpoint_bytes: Serialized size of the taken checkpoints.
        replayed_deltas: Per-key delta rows replayed from this node's WAL
            suffix during crash recovery (on top of its last checkpoint).
        wal_recovered_keys: Keys installed on this node from a failed node's
            checkpoint + WAL (a subset of ``recovered_keys``).
    """

    pulls_local: int = 0
    pulls_remote: int = 0
    pushes_local: int = 0
    pushes_remote: int = 0
    key_reads_local: int = 0
    key_reads_remote: int = 0
    key_writes_local: int = 0
    key_writes_remote: int = 0
    localize_calls: int = 0
    localized_keys: int = 0
    relocations: int = 0
    relocation_time: RunningStat = field(default_factory=RunningStat)
    blocking_time: RunningStat = field(default_factory=RunningStat)
    queued_ops: int = 0
    forwarded_ops: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stale: int = 0
    clock_advances: int = 0
    server_messages: int = 0
    replica_refreshes: int = 0
    replica_reads: int = 0
    replica_writes: int = 0
    replica_creates: int = 0
    replica_sync_rounds: int = 0
    replica_flush_messages: int = 0
    replica_broadcast_messages: int = 0
    replica_sync_keys: int = 0
    replica_sync_bytes: int = 0
    rebalance_rounds: int = 0
    rebalanced_keys: int = 0
    rebalance_time: RunningStat = field(default_factory=RunningStat)
    recovered_keys: int = 0
    lost_keys: int = 0
    wal_appends: int = 0
    wal_bytes: int = 0
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    replayed_deltas: int = 0
    wal_recovered_keys: int = 0

    @property
    def pulls_total(self) -> int:
        """Total number of pull operations."""
        return self.pulls_local + self.pulls_remote

    @property
    def pushes_total(self) -> int:
        """Total number of push operations."""
        return self.pushes_local + self.pushes_remote

    @property
    def key_reads_total(self) -> int:
        """Total number of per-key reads (local + remote + replica)."""
        return self.key_reads_local + self.key_reads_remote

    @property
    def key_accesses_total(self) -> int:
        """Total key accesses: reads plus writes (Table 4 'key accesses')."""
        return (
            self.key_reads_local
            + self.key_reads_remote
            + self.key_writes_local
            + self.key_writes_remote
        )

    @property
    def local_read_fraction(self) -> float:
        """Fraction of key reads served locally (1.0 when there are none)."""
        total = self.key_reads_total
        if total == 0:
            return 1.0
        return self.key_reads_local / total

    def merge(self, other: "PSMetrics") -> "PSMetrics":
        """Return a new :class:`PSMetrics` summing this and ``other``.

        The merge is introspective (driven by the dataclass fields), so new
        counters participate automatically and partial metrics objects — e.g.
        from nodes that joined late or left early — merge against the zero
        defaults of the counters they never touched.
        """
        merged = PSMetrics()
        for spec in fields(self):
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, RunningStat):
                setattr(merged, spec.name, mine.merge(theirs))
            else:
                setattr(merged, spec.name, mine + theirs)
        return merged

    @staticmethod
    def aggregate(metrics: Iterable["PSMetrics"]) -> "PSMetrics":
        """Sum an iterable of per-node metrics into one cluster-wide object."""
        total = PSMetrics()
        for item in metrics:
            total = total.merge(item)
        return total

    def as_dict(self) -> Dict[str, float]:
        """Return a flat dict of the scalar counters (for reporting).

        Integer counters keep their field names; every :class:`RunningStat`
        field contributes its mean under ``"mean_<field name>"`` (e.g.
        ``mean_relocation_time``) plus its histogram percentiles under
        ``"p50_<field name>"`` / ``"p99_<field name>"``.  Introspective, so
        new counters appear automatically.
        """
        result: Dict[str, float] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, RunningStat):
                result[f"mean_{spec.name}"] = value.mean
                result[f"p50_{spec.name}"] = value.p50
                result[f"p99_{spec.name}"] = value.p99
            else:
                result[spec.name] = value
        return result
