"""Lapse: a parameter server with dynamic parameter allocation (DPA).

This module implements the system described in Section 3 of the paper:

* **localize primitive** (§3.1, Table 2): a worker can request that parameters
  be relocated to its node; subsequent accesses are local.
* **Relocation protocol** (§3.2, Figure 4): three messages — the requester
  informs the *home node*, the home node instructs the current *owner*, the
  owner transfers the parameter to the requester.  The requester queues
  operations for the relocating parameter and processes them once the
  transfer arrives, so relocation never produces wrong results.
* **Parameter access** (§3.3, Figure 5): local parameters are accessed through
  shared memory directly by worker threads; remote accesses use the *forward*
  strategy via the home node, optionally short-cut by *location caches* with a
  double-forward fallback for stale cache entries.
* **Location management** (§3.5): a decentralized home-node strategy; the home
  node of a key is given by the static partitioner, the owner changes at run
  time.
* **Message grouping** (§3.7): multi-key operations send one message per
  destination node.

Per-key routing (shared-memory residency, relocation queueing, home/cache
forwarding) is implemented by :class:`~repro.ps.policy.RelocationPolicy`; the
server loop is the generic dispatch loop of
:class:`~repro.ps.base.ParameterServer`, with the three relocation-protocol
messages contributed by the policy.

The implementation preserves the consistency behaviour analysed in §3.4:
sequential consistency per key for synchronous operations and for
asynchronous operations without location caches; location caches can break
program order for asynchronous operations (Theorem 3), which the consistency
test-suite demonstrates.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.config import message_size
from repro.errors import RelocationError, StorageError
from repro.ps.base import (
    FusedLocalSteps,
    NodeState,
    ParameterServer,
    QueuedOp,
    WorkerClient,
    copy_rows,
    select_rows,
    van_address,
)
from repro.ps.futures import OperationHandle
from repro.ps.messages import (
    LocalizeAck,
    LocalizeRequest,
    PullRequest,
    PullResponse,
    PushAck,
    PushRequest,
    RecoveryInstall,
    RelocateInstruction,
    RelocationTransfer,
)
from repro.ps.policy import ROUTE_LOCAL, ROUTE_QUEUE, RelocationPolicy

__all__ = [
    "LapseNodeState",
    "LapsePS",
    "LapseWorkerClient",
    "QueuedOp",
    "RelocatingKey",
]


@dataclass
class RelocatingKey:
    """State of one key currently relocating *to* this node."""

    key: int
    requested_at: float
    localize_handles: List[OperationHandle] = field(default_factory=list)
    queued_ops: List[QueuedOp] = field(default_factory=list)
    #: Set when a RelocateInstruction for this key arrives before the transfer
    #: (a later localize by another node); the key is passed on immediately
    #: after the transfer completes and queued work is drained.
    pending_new_owner: Optional[int] = None


class LapseNodeState(NodeState):
    """Per-node state of Lapse: location tables, caches, and relocation state.

    The tables themselves (``home_location``, ``relocating_in``,
    ``last_transfer``, ``location_cache``) are installed by
    :meth:`repro.ps.policy.RelocationPolicy.attach`; the annotations below
    document them for readers and type checkers.
    """

    home_location: Dict[int, int]
    relocating_in: Dict[int, "RelocatingKey"]
    last_transfer: Dict[int, int]
    location_cache: Dict[int, int]


class LapseWorkerClient(WorkerClient):
    """Lapse client: shared-memory local access, localize, transparent routing."""

    state: LapseNodeState

    def fused_local_steps(self):
        """Fused local steps for pure relocation (not the hybrid composition).

        Under :class:`RelocationPolicy`, residency in the local store *is*
        the local-route condition and local access touches nothing beyond
        storage, latches, and metrics.  The hybrid policy is excluded: its
        owner-side writes feed replica broadcast buffers that a background
        synchronizer observes mid-window.
        """
        if self._fusion_safe() and type(self.policy) is RelocationPolicy:
            return FusedLocalSteps(self)
        return None

    # ------------------------------------------------------------------- pull
    def _issue_pull(self, handle: OperationHandle, keys: Tuple[int, ...]) -> None:
        state = self.state
        metrics = state.metrics
        local_keys: List[int] = []
        queued_keys: List[int] = []
        remote_groups: Dict[int, List[int]] = defaultdict(list)
        for key, route in zip(keys, self.policy.route_many(state, keys)):
            if route.kind == ROUTE_LOCAL:
                local_keys.append(key)
            elif route.kind == ROUTE_QUEUE:
                queued_keys.append(key)
            else:
                remote_groups[route.destination].append(key)
        if local_keys:
            metrics.key_reads_local += len(local_keys)
            self._local_pull(handle, local_keys)
        for key in queued_keys:
            metrics.key_reads_local += 1
            metrics.queued_ops += 1
            state.relocating_in[key].queued_ops.append(
                QueuedOp(kind="local_pull", key=key, handle=handle)
            )
        for destination, dest_keys in remote_groups.items():
            metrics.key_reads_remote += len(dest_keys)
            self._send_remote(handle, destination, dest_keys, pull=True)
        if remote_groups:
            metrics.pulls_remote += 1
        else:
            metrics.pulls_local += 1

    # ------------------------------------------------------------------- push
    def _issue_push(
        self,
        handle: OperationHandle,
        keys: Tuple[int, ...],
        updates: np.ndarray,
        needs_ack: bool,
    ) -> None:
        state = self.state
        metrics = state.metrics
        key_to_row = {key: index for index, key in enumerate(keys)}
        local_keys: List[int] = []
        queued_keys: List[int] = []
        remote_groups: Dict[int, List[int]] = defaultdict(list)
        for key, route in zip(keys, self.policy.route_many(state, keys, write=True)):
            if route.kind == ROUTE_LOCAL:
                local_keys.append(key)
            elif route.kind == ROUTE_QUEUE:
                queued_keys.append(key)
            else:
                remote_groups[route.destination].append(key)
        if local_keys:
            metrics.key_writes_local += len(local_keys)
            self._local_push(handle, local_keys, updates, key_to_row)
        for key in queued_keys:
            metrics.key_writes_local += 1
            metrics.queued_ops += 1
            state.relocating_in[key].queued_ops.append(
                QueuedOp(
                    kind="local_push",
                    key=key,
                    handle=handle,
                    # Snapshot at issue time: the caller may reuse its update
                    # buffer while the relocation is in flight (see copy_rows).
                    update=updates[key_to_row[key]].copy(),
                )
            )
        for destination, dest_keys in remote_groups.items():
            metrics.key_writes_remote += len(dest_keys)
            self._send_remote(
                handle,
                destination,
                dest_keys,
                pull=False,
                updates=updates,
                key_to_row=key_to_row,
            )
        if remote_groups:
            metrics.pushes_remote += 1
        else:
            metrics.pushes_local += 1

    # --------------------------------------------------------------- localize
    def _issue_localize(self, handle: OperationHandle, keys: Tuple[int, ...]) -> None:
        state = self.state
        ps: "LapsePS" = self.ps  # type: ignore[assignment]
        metrics = state.metrics
        metrics.localize_calls += 1
        metrics.localized_keys += len(keys)
        already_local: List[int] = []
        home_groups: Dict[int, List[int]] = defaultdict(list)
        for key in keys:
            if self._localized_without_move(state, key):
                already_local.append(key)
            elif key in state.relocating_in:
                state.relocating_in[key].localize_handles.append(handle)
            else:
                state.relocating_in[key] = RelocatingKey(
                    key=key,
                    requested_at=self.sim.now,
                    localize_handles=[handle],
                )
                home_groups[ps.home_node(key)].append(key)
        if already_local:
            delay = self.ps.cluster.cost_model.localize_issue_time
            self._complete_after(delay, lambda keys=tuple(already_local): handle.complete_keys(keys))
        for home, home_keys in home_groups.items():
            if home == self.node_id:
                # The home table lives in this node's shared memory: apply the
                # home-side logic directly (saves message 1 of the protocol).
                ps.process_localize_at_home(state, tuple(home_keys), self.node_id)
            else:
                op_id = ps.next_op_id()
                ps.register_op(op_id, handle)
                request = LocalizeRequest(
                    op_id=op_id, keys=tuple(home_keys), requester_node=self.node_id
                )
                ps.send_to_server(
                    self.node_id, home, request, message_size(len(home_keys), 0)
                )

    def _localized_without_move(self, state: LapseNodeState, key: int) -> bool:
        """Whether ``key`` is already local (no relocation needed)."""
        return state.storage.contains(key)

    # ------------------------------------------------------------ local access
    def _local_pull(self, handle: OperationHandle, local_keys: List[int]) -> None:
        cost = self.ps.cluster.cost_model
        delay = cost.local_access_time(shared_memory=True) * len(local_keys)
        state = self.state

        def action() -> None:
            try:
                values = state.read_local_many(local_keys)
            except StorageError:
                # A key was relocated away between issue and the (tiny)
                # shared-memory access delay; split and re-route the misses.
                flags = state.storage.contains_flags(local_keys)
                present = [key for key, ok in zip(local_keys, flags) if ok]
                if present:
                    handle.complete_keys(present, state.read_local_many(present))
                for key, ok in zip(local_keys, flags):
                    if not ok:
                        self._reissue_key(handle, key, pull=True)
                return
            handle.complete_keys(local_keys, values)

        self._complete_after(delay, action)

    def _local_push(
        self,
        handle: OperationHandle,
        local_keys: List[int],
        updates: np.ndarray,
        key_to_row: Dict[int, int],
    ) -> None:
        cost = self.ps.cluster.cost_model
        delay = cost.local_access_time(shared_memory=True) * len(local_keys)
        state = self.state

        local_rows = [key_to_row[key] for key in local_keys]

        def action() -> None:
            try:
                # add_many is check-then-apply, so a relocated-away key raises
                # before any update lands and the per-key fallback stays exact.
                state.write_local_many(local_keys, select_rows(updates, local_rows))
            except StorageError:
                done = []
                for key, ok in zip(local_keys, state.storage.contains_flags(local_keys)):
                    if ok:
                        state.write_local(key, updates[key_to_row[key]])
                        done.append(key)
                    else:
                        self._reissue_key(
                            handle, key, pull=False, update=updates[key_to_row[key]]
                        )
                if done:
                    handle.complete_keys(done)
                return
            handle.complete_keys(local_keys)

        self._complete_after(delay, action)

    def _reissue_key(
        self,
        handle: OperationHandle,
        key: int,
        pull: bool,
        update: Optional[np.ndarray] = None,
    ) -> None:
        """Re-route a key whose local copy disappeared before the access ran."""
        state = self.state
        if key in state.relocating_in:
            state.metrics.queued_ops += 1
            state.relocating_in[key].queued_ops.append(
                QueuedOp(
                    kind="local_pull" if pull else "local_push",
                    key=key,
                    handle=handle,
                    update=None if update is None else update.copy(),
                )
            )
            return
        destination = self._route_destination(key)
        if pull:
            self._send_remote(handle, destination, [key], pull=True)
        else:
            self._send_remote(
                handle,
                destination,
                [key],
                pull=False,
                updates=update.reshape(1, -1),
                key_to_row={key: 0},
            )

    # ---------------------------------------------------------------- routing
    def _route_destination(self, key: int) -> int:
        """Choose the node to contact for a non-local access to ``key``."""
        return self._relocation_policy().route_destination(self.state, key)

    def _relocation_policy(self) -> RelocationPolicy:
        """The relocation policy handling cold keys (overridden by hybrid)."""
        return self.policy  # type: ignore[return-value]

    # _send_remote is inherited from WorkerClient: chunked pull/push requests
    # routed to a destination server, with op ids registered for the van.


class LapsePS(ParameterServer):
    """Parameter server with dynamic parameter allocation (the paper's Lapse)."""

    client_class = LapseWorkerClient
    policy_class = RelocationPolicy
    name = "lapse"

    def _make_node_state(self, node) -> LapseNodeState:
        return LapseNodeState(self, node)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Initialize home-node location tables: at start-up the owner of every
        # key is its home node (the static partition).
        for node in range(self.cluster.num_nodes):
            home_location = self.states[node].home_location  # type: ignore[attr-defined]
            for key in self.partitioner.keys_of(node):
                home_location[key] = node

    # --------------------------------------------------------------- locations
    def home_node(self, key: int) -> int:
        """Home node of ``key`` (static, from the partitioner)."""
        return self.partitioner.node_of(key)

    def current_owner(self, key: int) -> int:
        """Node that currently owns ``key`` according to its home node."""
        home_state: LapseNodeState = self.states[self.home_node(key)]  # type: ignore[assignment]
        return home_state.home_location[key]

    def current_owners(self, keys) -> np.ndarray:
        """Vectorized :meth:`current_owner` via the per-home location tables."""
        keys = np.asarray(keys, dtype=np.int64)
        homes = self.partitioner.nodes_of(keys)
        states = self.states
        return np.fromiter(
            (
                states[home].home_location[key]  # type: ignore[attr-defined]
                for home, key in zip(homes.tolist(), keys.tolist())
            ),
            dtype=np.int64,
            count=keys.size,
        )

    # ---------------------------------------------------------- server dispatch
    def _server_dispatch(self, state: LapseNodeState):  # type: ignore[override]
        cost = self.cluster.cost_model.server_processing_time
        dispatch = {
            PullRequest: (cost, self._handle_access),
            PushRequest: (cost, self._handle_access),
        }
        dispatch.update(self.management_policy.server_handlers(state))
        return dispatch

    # ------------------------------------------------------------ pull / push
    def _handle_access(self, state: LapseNodeState, request: Any) -> None:
        """Handle a pull/push request at the server, forwarding unknown keys."""
        is_pull = isinstance(request, PullRequest)
        owned: List[int] = []
        queued: List[int] = []
        forward_groups: Dict[int, List[int]] = defaultdict(list)
        resident = state.storage.contains_flags(request.keys)
        for key, is_resident in zip(request.keys, resident):
            if is_resident:
                owned.append(key)
            elif key in state.relocating_in:
                queued.append(key)
            else:
                forward_groups[self._forward_destination(state, key)].append(key)
        if owned:
            self._answer_owned(state, request, owned, is_pull)
        for key in queued:
            state.metrics.queued_ops += 1
            state.relocating_in[key].queued_ops.append(
                QueuedOp(
                    kind="remote_pull" if is_pull else "remote_push",
                    key=key,
                    request=request,
                )
            )
        key_to_row = {key: index for index, key in enumerate(request.keys)}
        for destination, keys in forward_groups.items():
            state.metrics.forwarded_ops += 1
            self._forward_access(state, request, destination, keys, key_to_row, is_pull)

    def _answer_owned(
        self, state: LapseNodeState, request: Any, keys: List[int], is_pull: bool
    ) -> None:
        key_to_row = {key: index for index, key in enumerate(request.keys)}
        if is_pull:
            values = state.read_local_many(keys)
            self._respond_pull(state, request, keys, values)
        else:
            state.write_local_many(
                keys, select_rows(request.updates, [key_to_row[key] for key in keys])
            )
            self._ack_push(state, request, keys)

    def _forward_destination(self, state: LapseNodeState, key: int) -> int:
        """Best next hop for a key this node neither owns nor is receiving.

        The home node forwards to the owner recorded in its location table;
        any other node forwards to the home node.  A request that reached a
        stale owner (e.g. through a stale location cache) therefore travels
        requester → stale owner → home → current owner, the double-forward of
        Figure 5d (4 messages in total including the response).
        """
        home = self.home_node(key)
        if home == state.node_id:
            return state.home_location[key]
        return home

    def _forward_access(
        self,
        state: LapseNodeState,
        request: Any,
        destination: int,
        keys: List[int],
        key_to_row: Dict[int, int],
        is_pull: bool,
    ) -> None:
        op_id = request.op_id
        if is_pull:
            forwarded: Any = PullRequest(
                op_id=op_id,
                keys=tuple(keys),
                requester_node=request.requester_node,
                reply_to=request.reply_to,
                hops=request.hops + 1,
            )
            size = message_size(len(keys), 0)
        else:
            updates = copy_rows(request.updates, [key_to_row[key] for key in keys])
            forwarded = PushRequest(
                op_id=op_id,
                keys=tuple(keys),
                updates=updates,
                requester_node=request.requester_node,
                reply_to=request.reply_to,
                needs_ack=request.needs_ack,
                hops=request.hops + 1,
            )
            size = message_size(len(keys), updates.size)
        if request.hops > 0:
            state.metrics.cache_stale += 1
        self.send_to_server(state.node_id, destination, forwarded, size)

    # -------------------------------------------------------------- relocation
    def process_localize_at_home(
        self, home_state: LapseNodeState, keys: Tuple[int, ...], requester: int
    ) -> None:
        """Home-node half of the relocation protocol (message 1 handling).

        Updates the location table immediately and instructs the current owner
        of every key to hand it over.  Keys already owned by the requester are
        acknowledged without a transfer.

        Two elastic-cluster tolerances (no-ops on static clusters):

        * a localize for a key whose home moved to another node while the
          request was in flight (a rebalance bumped the partitioner epoch) is
          *forwarded* to the current home — the stale-location tolerance of
          §3.5, applied to home reassignment instead of caches;
        * a requester that is draining, failed, or has left the cluster must
          not (re)acquire keys: its localize completes without moving anything
          (subsequent accesses route remotely).
        """
        membership = self.membership
        if membership is not None and not membership.may_own(requester):
            self._acknowledge_local_keys(home_state, list(keys), requester)
            return
        instruction_groups: Dict[int, List[int]] = defaultdict(list)
        forward_groups: Dict[int, List[int]] = defaultdict(list)
        ack_keys: List[int] = []
        for key in keys:
            home = self.home_node(key)
            if home != home_state.node_id:
                if key in home_state.home_location:
                    raise RelocationError(
                        f"node {home_state.node_id} received a localize request for "
                        f"key {key}, whose home is node {home}"
                    )
                # The home duty for this key was handed to another node while
                # the request was in flight; forward along the new assignment.
                forward_groups[home].append(key)
                continue
            current_owner = home_state.home_location[key]
            if current_owner == requester:
                ack_keys.append(key)
                continue
            home_state.home_location[key] = requester
            instruction_groups[current_owner].append(key)
        for home, home_keys in forward_groups.items():
            home_state.metrics.forwarded_ops += 1
            forwarded = LocalizeRequest(
                op_id=self.next_op_id(), keys=tuple(home_keys), requester_node=requester
            )
            self.send_to_server(
                home_state.node_id, home, forwarded, message_size(len(home_keys), 0)
            )
        if ack_keys:
            self._acknowledge_local_keys(home_state, ack_keys, requester)
        for old_owner, owner_keys in instruction_groups.items():
            instruction = RelocateInstruction(
                op_id=self.next_op_id(),
                keys=tuple(owner_keys),
                new_owner=requester,
                home_node=home_state.node_id,
            )
            if old_owner == home_state.node_id:
                self._handle_instruction(home_state, instruction)
            else:
                self.send_to_server(
                    home_state.node_id,
                    old_owner,
                    instruction,
                    message_size(len(owner_keys), 0),
                )

    def _acknowledge_local_keys(
        self, home_state: LapseNodeState, keys: List[int], requester: int
    ) -> None:
        """Tell the requester that ``keys`` are already located at its node."""
        requester_state: LapseNodeState = self.states[requester]  # type: ignore[assignment]
        if requester == home_state.node_id:
            self._complete_requester_side(requester_state, keys, values=None)
            return
        ack = LocalizeAck(op_id=0, keys=tuple(keys))
        # The ack is routed through the server so the requester node can clear
        # its relocation bookkeeping before completing worker handles.
        self.send_to_server(
            home_state.node_id,
            requester,
            RelocationTransfer(
                op_id=0,
                keys=tuple(keys),
                values=np.zeros((0, self.ps_config.value_length)),
                old_owner=requester,
                removed_at=self.sim.now,
            ),
            message_size(len(keys), 0),
        )
        del ack  # only the transfer-style notification is used

    def _handle_instruction(
        self, state: LapseNodeState, instruction: RelocateInstruction
    ) -> None:
        """Old-owner half of the protocol (message 2 handling)."""
        membership = self.membership
        if membership is not None and membership.state_of(instruction.new_owner) in (
            "failed",
            "left",
        ):
            # The requester crashed (or left) while the instruction was on
            # the wire: shipping the keys would hand them to a black hole.
            # Keep them — failure recovery's stale-home tolerance re-points
            # their home entries back to this node.
            return
        transfer_keys: List[int] = []
        resident = state.storage.contains_flags(instruction.keys)
        for key, is_resident in zip(instruction.keys, resident):
            if is_resident:
                transfer_keys.append(key)
                state.last_transfer[key] = instruction.new_owner
            elif key in state.relocating_in:
                # The key is still on its way to us; pass it on as soon as it
                # arrives and the queued operations have been drained.
                state.relocating_in[key].pending_new_owner = instruction.new_owner
            else:
                raise RelocationError(
                    f"node {state.node_id} was instructed to relocate key {key} "
                    "it neither owns nor expects"
                )
        if not transfer_keys:
            return
        transfer = self._build_transfer(state, transfer_keys, instruction)
        size = message_size(len(transfer_keys), transfer.values.size)
        if instruction.new_owner == state.node_id:
            self._handle_transfer(state, transfer)
        else:
            self.send_to_server(state.node_id, instruction.new_owner, transfer, size)

    def _build_transfer(
        self,
        state: LapseNodeState,
        transfer_keys: List[int],
        instruction: RelocateInstruction,
    ) -> RelocationTransfer:
        """Remove ``transfer_keys`` from the old owner and build message 3.

        Overridden by the hybrid PS to hand subscriber sets over with the
        parameter values.
        """
        values = state.storage.remove_many(transfer_keys)
        return RelocationTransfer(
            op_id=instruction.op_id,
            keys=tuple(transfer_keys),
            values=values,
            old_owner=state.node_id,
            removed_at=self.sim.now,
        )

    def _handle_transfer(
        self, state: LapseNodeState, transfer: RelocationTransfer
    ) -> None:
        """New-owner half of the protocol (message 3 handling)."""
        if transfer.values.shape[0] == 0:
            # "Already local" notification generated by the home node.
            self._complete_requester_side(state, list(transfer.keys), values=None)
            return
        for index, key in enumerate(transfer.keys):
            if key not in state.relocating_in:
                raise RelocationError(
                    f"node {state.node_id} received a transfer for key {key} "
                    "it did not request"
                )
            state.storage.insert(key, transfer.values[index])
            self._install_transferred(state, transfer, index, key)
            entry = state.relocating_in.pop(key)
            state.metrics.relocations += 1
            state.metrics.relocation_time.record(self.sim.now - entry.requested_at)
            state.metrics.blocking_time.record(self.sim.now - transfer.removed_at)
            trace = state.trace
            if trace is not None:
                trace.relocation(
                    key, entry.requested_at, transfer.removed_at, self.sim.now
                )
            if self.ps_config.location_caches:
                state.location_cache.pop(key, None)
            for handle in entry.localize_handles:
                handle.complete_keys([key])
            self._drain_queue(state, key, entry)
            if entry.pending_new_owner is not None:
                follow_up = RelocateInstruction(
                    op_id=self.next_op_id(),
                    keys=(key,),
                    new_owner=entry.pending_new_owner,
                    home_node=self.home_node(key),
                )
                self._handle_instruction(state, follow_up)

    def _install_transferred(
        self, state: LapseNodeState, transfer: RelocationTransfer, index: int, key: int
    ) -> None:
        """Extra installation work per transferred key (hybrid: subscribers)."""

    def _handle_recovery(self, state: LapseNodeState, install: RecoveryInstall) -> None:
        """Install keys recovered from a surviving replica after an owner failed.

        The elastic runtime re-homes a failed node's keys and, for every key
        some surviving node replicates, has that holder ship its copy to the
        new owner.  Installation mirrors a relocation transfer: queued
        operations drain in order, but the keys count as *recovered* rather
        than relocated.
        """
        for index, key in enumerate(install.keys):
            entry = state.relocating_in.pop(key, None)
            if entry is None:
                raise RelocationError(
                    f"node {state.node_id} received a recovery install for key "
                    f"{key} it does not expect"
                )
            state.storage.insert(key, install.values[index])
            state.metrics.recovered_keys += 1
            self._install_recovered(state, install, index, key)
            for handle in entry.localize_handles:
                handle.complete_keys([key])
            self._drain_queue(state, key, entry)

    def _install_recovered(
        self, state: LapseNodeState, install: RecoveryInstall, index: int, key: int
    ) -> None:
        """Extra installation work per recovered key (hybrid: subscriber takeover)."""

    def _complete_requester_side(
        self, state: LapseNodeState, keys: List[int], values: Optional[np.ndarray]
    ) -> None:
        """Complete localize handles for keys that turned out to be local already."""
        for key in keys:
            entry = state.relocating_in.pop(key, None)
            if entry is None:
                continue
            for handle in entry.localize_handles:
                handle.complete_keys([key])
            self._drain_queue(state, key, entry)

    def _drain_queue(self, state: LapseNodeState, key: int, entry: RelocatingKey) -> None:
        """Process operations queued while ``key`` was relocating, in order."""
        for queued in entry.queued_ops:
            self._drain_one(state, key, queued)

    def _drain_one(self, state: LapseNodeState, key: int, queued: QueuedOp) -> None:
        """Process one queued operation for a key that just became resident."""
        if queued.kind in ("local_pull", "local_push") and not state.storage.contains(key):
            # The relocation completed without the key arriving (e.g. a
            # draining node's localize was acknowledged as a no-op by the
            # elastic drain gate): re-route the queued operation remotely.
            self._redirect_queued(state, key, queued)
            return
        if queued.kind == "local_pull":
            queued.handle.complete_keys([key], state.read_local(key).reshape(1, -1))
        elif queued.kind == "local_push":
            state.write_local(key, queued.update)
            queued.handle.complete_keys([key])
        elif queued.kind in ("remote_pull", "remote_push"):
            request = queued.request
            single = self._single_key_view(request, key)
            self._handle_access(state, single)
        else:  # pragma: no cover - defensive
            raise RelocationError(f"unknown queued op kind {queued.kind!r}")

    def _redirect_queued(self, state: LapseNodeState, key: int, queued: QueuedOp) -> None:
        """Send a queued worker operation to the key's best-known location."""
        destination = self.management_policy.route_destination(state, key)
        op_id = self.next_op_id()
        self.register_op(op_id, queued.handle)
        if queued.kind == "local_pull":
            request: Any = PullRequest(
                op_id=op_id,
                keys=(key,),
                requester_node=state.node_id,
                reply_to=van_address(state.node_id),
            )
            size = message_size(1, 0)
        else:
            request = PushRequest(
                op_id=op_id,
                keys=(key,),
                updates=queued.update.reshape(1, -1),
                requester_node=state.node_id,
                reply_to=van_address(state.node_id),
                needs_ack=True,
            )
            size = message_size(1, queued.update.size)
        self.send_to_server(state.node_id, destination, request, size)

    def _single_key_view(self, request: Any, key: int) -> Any:
        """Build a single-key copy of a multi-key request for queued processing."""
        if isinstance(request, PullRequest):
            return PullRequest(
                op_id=request.op_id,
                keys=(key,),
                requester_node=request.requester_node,
                reply_to=request.reply_to,
                hops=request.hops,
            )
        index = request.keys.index(key)
        return PushRequest(
            op_id=request.op_id,
            keys=(key,),
            updates=request.updates[index].reshape(1, -1),
            requester_node=request.requester_node,
            reply_to=request.reply_to,
            needs_ack=request.needs_ack,
            hops=request.hops,
        )

    # ------------------------------------------------------------------- van
    def _after_response(self, state: LapseNodeState, message: Any) -> None:  # type: ignore[override]
        if not self.ps_config.location_caches:
            return
        if isinstance(message, (PullResponse, PushAck)):
            responder = message.responder_node
            if responder == state.node_id:
                return
            for key in message.keys:
                state.location_cache[key] = responder
