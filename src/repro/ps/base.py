"""Common machinery shared by all parameter-server variants.

This module provides:

* :class:`NodeState` — the per-node state shared (via "shared memory") by the
  node's server thread and its co-located worker threads: the local parameter
  store, outstanding-operation table, metrics, and barrier bookkeeping,
* :class:`WorkerClient` — the application-facing API (Table 2 of the paper):
  ``pull`` / ``push`` / ``localize`` in synchronous and asynchronous flavours,
  plus ``barrier`` and ``clock`` helpers used by the training algorithms,
* :class:`ParameterServer` — the base class that builds the simulated cluster
  (one server thread + several worker threads per node, Figure 2), runs worker
  processes, and exposes metrics and the trained model.

Concrete variants (classic, Lapse, stale, replica, hybrid) subclass
:class:`ParameterServer` and :class:`WorkerClient`.  Since the
management-policy refactor they no longer hand-roll their server loops:
:meth:`ParameterServer._server_loop` is a single generic message loop driven
by a per-variant *dispatch table* (:meth:`ParameterServer._server_dispatch`),
and the per-key routing decisions live in the pluggable
:class:`~repro.ps.policy.ManagementPolicy` objects (``policy_class``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

import numpy as np

from repro.config import ClusterConfig, ParameterServerConfig, message_size
from repro.errors import (
    ParameterServerError,
    StorageError,
    UnknownKeyError,
    UnsupportedOperationError,
)
from repro.ps.futures import OperationHandle
from repro.ps.messages import (
    BarrierArrive,
    BarrierRelease,
    LocalizeAck,
    PullRequest,
    PullResponse,
    PushAck,
    PushRequest,
)
from repro.ps.metrics import PSMetrics
from repro.ps.partition import KeyPartitioner, make_partitioner
from repro.ps.storage import SMALL_BATCH as _SMALL_BATCH
from repro.ps.storage import LatchTable, ParameterStorage, make_storage
from repro.simnet import Network, Node, Simulator
from repro.simnet.events import Event
from repro.simnet.node import server_address


def select_rows(updates: np.ndarray, rows: List[int]) -> np.ndarray:
    """Rows of ``updates`` at ``rows`` — a view for one row, a copy otherwise.

    The single-row view avoids an allocation on the dominant one-key ops.
    Only for immediate read access (e.g. feeding ``add_many``); anything that
    outlives the call — in particular message payloads — must use
    :func:`copy_rows`, because the caller may mutate ``updates`` afterwards.
    """
    if len(rows) == 1:
        row = rows[0]
        return updates[row : row + 1]
    return updates[rows]


def copy_rows(updates: np.ndarray, rows: List[int]) -> np.ndarray:
    """Rows of ``updates`` at ``rows``, always as an owned copy.

    Used for message payloads: the update values must be snapshotted at send
    time (as the replaced per-key ``vstack`` did), since the caller is free to
    reuse its gradient buffer while the message is in flight.
    """
    if len(rows) == 1:
        row = rows[0]
        return updates[row : row + 1].copy()
    return updates[rows]


def first_missing(state: "NodeState", keys) -> Optional[int]:
    """First key of ``keys`` not resident in ``state``, or None (error paths only).

    Server handlers probe whole batches with ``read_local_many`` /
    ``write_local_many`` and only fall back to this per-key scan to name the
    offending key when the batch access raised.
    """
    for key, resident in zip(keys, state.storage.contains_flags(keys)):
        if not resident:
            return key
    return None


@dataclass
class QueuedOp:
    """An operation queued while its key is in flight.

    The relocation protocol (Lapse) and the replica-install protocol both
    leave a key temporarily unanswerable on the node that requested it; the
    runtime queues operations issued for such keys and drains them, in
    program order, once the key arrives (§3.2: relocation never produces
    wrong results).

    ``kind`` is ``"local_pull"`` / ``"local_push"`` for worker-issued
    operations (completed against ``handle``) and ``"remote_pull"`` /
    ``"remote_push"`` / ``"register"`` / ``"flush"`` for server-side requests
    that must be re-processed (``request``) once the key is resident.
    """

    kind: str
    key: int
    handle: Optional["OperationHandle"] = None
    update: Optional[np.ndarray] = None
    request: Optional[Any] = None


def _run_action(action: Callable[[], None]) -> None:
    """Kernel-callback shim: invoke a zero-argument deferred action."""
    action()


def _run_handler(arg: Tuple[Callable, "NodeState", Any]) -> None:
    """Kernel-callback shim: run a scheduled server message handler."""
    handler, state, message = arg
    handler(state, message)


def van_address(node: int) -> Tuple[str, int]:
    """Network address of the client "van" (response demultiplexer) on ``node``."""
    return ("van", node)


def coordinator_address() -> Tuple[str, int]:
    """Network address of the cluster-wide barrier coordinator (on node 0)."""
    return ("coordinator", 0)


class NodeState:
    """State shared by the server thread and worker threads of one node."""

    def __init__(self, ps: "ParameterServer", node: Node) -> None:
        self.ps = ps
        self.node = node
        self.node_id = node.node_id
        self._outstanding_cleanup = self._cleanup_outstanding  # pre-bound, hot
        #: Event-driven server bookkeeping: simulated time until which the
        #: server thread is busy handling already-arrived messages.
        self.server_busy_until = 0.0
        self.metrics = PSMetrics()
        self.latches = LatchTable(ps.ps_config.num_latches)
        #: Parameters currently owned by this node.
        self.storage: ParameterStorage = make_storage(
            dense=ps.ps_config.dense_storage,
            num_keys=ps.ps_config.num_keys,
            value_length=ps.ps_config.value_length,
        )
        #: Tracing buffer (:class:`repro.obs.NodeTrace`), installed by the
        #: tracer when a :class:`~repro.obs.TraceConfig` is passed.  ``None``
        #: (the default) keeps every hook to one attribute check.
        self.trace: Optional[Any] = None
        #: Outstanding operations issued from this node, keyed by op id.
        self.outstanding: Dict[int, OperationHandle] = {}
        #: Barrier waiters: generation -> list of events to release.
        self.barrier_waiters: Dict[int, List[Event]] = {}
        # Let the server's management policy install its per-node tables
        # (location tables, replica stores, subscription sets, ...).
        ps.management_policy.attach(self)

    # ------------------------------------------------------------------ access
    def read_local(self, key: int) -> np.ndarray:
        """Read an owned parameter (acquiring its latch)."""
        self.latches.acquire(key)
        return self.storage.get(key)

    def write_local(self, key: int, update: np.ndarray) -> None:
        """Apply a cumulative update to an owned parameter (acquiring its latch)."""
        self.latches.acquire(key)
        self.storage.add(key, update)

    def read_local_many(self, keys: Sequence[int]) -> np.ndarray:
        """Read a batch of owned parameters (one latch acquisition per key).

        The storage access runs first so that a non-resident key raises
        before any latch acquisition is recorded; callers use this to probe
        the whole batch and fall back to a per-key split only on the rare
        miss (e.g. a key relocated away mid-access).
        """
        if len(keys) == 1:
            key = keys[0]
            storage = self.storage
            if not 0 <= key < storage.num_keys:
                raise StorageError(f"key {key} out of range [0, {storage.num_keys})")
            if not storage.has_row(key):
                raise StorageError(f"key {key} is not resident in this store")
            value = storage.row_copy(key).reshape(1, -1)
            self.latches.acquisitions += 1
            return value
        values = self.storage.get_many(keys)
        self.latches.acquire_many(keys)
        return values

    def write_local_many(self, keys: Sequence[int], updates: np.ndarray) -> None:
        """Apply one cumulative update row per key (duplicate keys accumulate).

        ``add_many`` is check-then-apply, so a batch with a non-resident key
        raises before any update or latch accounting happens.
        """
        storage = self.storage
        if (
            len(keys) == 1
            and updates.__class__ is np.ndarray
            and updates.dtype == np.float64
            and updates.shape == (1, storage.value_length)
        ):
            # Single-key fast lane; anything not already a validated
            # (1, value_length) float64 batch falls through to add_many's
            # check-then-apply coercion.
            key = keys[0]
            if not 0 <= key < storage.num_keys:
                raise StorageError(f"key {key} out of range [0, {storage.num_keys})")
            if not storage.has_row(key):
                raise StorageError(f"key {key} is not resident in this store")
            storage.row_add(key, updates[0])
            self.latches.acquisitions += 1
            return
        storage.add_many(keys, updates)
        self.latches.acquire_many(keys)

    def register_handle(self, handle: OperationHandle) -> None:
        """Track an outstanding operation until its responses arrive.

        Uses one pre-bound cleanup callback instead of a fresh closure per
        operation; the completion event carries the handle (see
        :class:`~repro.ps.futures.OperationHandle`), so the callback can find
        the table entry without captured state.
        """
        self.outstanding[id(handle)] = handle
        handle.completion_event.callbacks.append(self._outstanding_cleanup)

    def _cleanup_outstanding(self, event: Event) -> None:
        self.outstanding.pop(id(event._value), None)


class FusedLocalSteps:
    """Fused purely-local worker steps: zero kernel events per step.

    On a shared-memory PS, one local training step costs the simulator a pull
    handle, two deferred actions, a timeout, and several generator resumes —
    all to model ``read, update, write`` on the worker's own node.  This
    runner performs the same storage reads/writes, latch accounting, and
    metric increments *immediately* and accumulates the simulated time the
    slow path would have taken; the trainer yields the accumulated time to
    the kernel in one piece at its next communication or synchronization
    boundary (:meth:`take_pending`).

    Bit-identity contract (enforced by the test sweep, not checkable here):
    the caller must guarantee that the keys it fuses are **private to this
    worker** until the next drain — no other worker, server handler, or
    background synchronizer reads or writes them inside the deferred-time
    window.  Parameter blocking (§4.1) provides exactly this guarantee for
    matrix factorization, which is why the MF trainer opts in.  Only
    management policies whose local access has no side effects beyond
    storage/latch/metric accounting offer the runner (static allocation and
    pure relocation; replication and bounded staleness keep background
    observers and are excluded).
    """

    __slots__ = ("sim", "storage", "latches", "metrics", "access_delay", "clock", "trace")

    def __init__(self, client: "WorkerClient") -> None:
        state = client.state
        self.sim = client.ps.sim
        self.storage = state.storage
        self.latches = state.latches
        self.metrics = state.metrics
        cost = client.ps.cluster.cost_model
        self.access_delay = cost.local_access_time(shared_memory=True)
        #: Span recorder of the owning worker (None when tracing is off or
        #: fused-step tracing is disabled); fused steps are replayed at the
        #: deferred clock, so their spans carry the exact slow-path times.
        recorder = client._trace
        self.trace = recorder if recorder is not None and recorder.fused_on else None
        #: Replayed worker clock: the simulated time this worker would have
        #: reached had every fused step gone through the kernel.  The deltas
        #: are added one at a time, in slow-path order, so the final resume
        #: timestamp is bit-identical to the event-by-event run (floating-
        #: point addition is not associative; summing first would drift in
        #: the last bits).  ``None`` while no time is deferred.
        self.clock: Optional[float] = None

    def try_pull(self, key: int) -> Optional[np.ndarray]:
        """Fused local pull of one resident key, or None to fall back.

        ``key`` must be in range (trainers pull keys derived from their data
        layout).  Returns a copy of the value row and accrues the
        shared-memory access delay; a non-resident key leaves all state
        untouched so the caller can take the ordinary slow path.
        """
        storage = self.storage
        if not storage.has_row(key):
            return None
        metrics = self.metrics
        metrics.key_reads_local += 1
        metrics.pulls_local += 1
        self.latches.acquisitions += 1
        clock = self.clock
        if clock is None:
            clock = self.sim._now
        self.clock = clock + self.access_delay
        trace = self.trace
        if trace is not None:
            trace.fused("pull", key, clock, self.clock)
        return storage.row_copy(key)

    def push(self, key: int, update: np.ndarray) -> None:
        """Fused local push: cumulative float64 update row for a resident key.

        Only valid directly after a successful :meth:`try_pull` of the same
        key (residency was verified there; the slow path's asynchronous write
        lands inside the privacy window, so applying it immediately is
        equivalent).
        """
        metrics = self.metrics
        metrics.key_writes_local += 1
        metrics.pushes_local += 1
        self.latches.acquisitions += 1
        trace = self.trace
        if trace is not None and self.clock is not None:
            trace.fused("push", key, self.clock, self.clock)
        self.storage.row_add(key, update)

    def advance(self, delta: float) -> None:
        """Accrue compute time (the slow path's per-step compute yield).

        Only meaningful after a :meth:`try_pull` started the deferred window.
        """
        self.clock = self.clock + delta

    def drain(self):
        """Event resuming the worker at the replayed clock, or None if caught up.

        The trainer must ``yield`` the returned event before any non-fused
        operation, synchronization, or the end of its block — that closes the
        privacy window and realigns the worker with the kernel clock.
        """
        clock = self.clock
        if clock is None:
            return None
        self.clock = None
        if clock == self.sim._now:
            return None
        return self.sim.wake_at(clock)


class WorkerClient:
    """Application-facing PS client bound to one worker thread.

    The client exposes the primitives of Table 2.  Synchronous variants are
    generators (to be used with ``yield from`` inside simulation processes);
    asynchronous variants return an :class:`OperationHandle` immediately.
    """

    #: Span recorder (:class:`repro.obs.core._OpRecorder`), attached by
    #: :meth:`ParameterServer.client` when tracing is on.  A class attribute,
    #: so untraced clients carry no extra instance state (and ship nothing
    #: extra through the parallel engine's result payloads).
    _trace: Optional[Any] = None

    def __init__(
        self,
        ps: "ParameterServer",
        state: NodeState,
        worker_id: int,
        local_worker_id: int,
    ) -> None:
        self.ps = ps
        self.state = state
        self.worker_id = worker_id
        self.local_worker_id = local_worker_id
        self.node_id = state.node_id
        self.rng = state.node.worker_rng(local_worker_id)
        self._barrier_generation = 0
        self._clock = 0
        #: Cached reply address (hot: attached to every request message).
        self._van_address = van_address(state.node_id)

    # ------------------------------------------------------------- conveniences
    @property
    def sim(self) -> Simulator:
        """The cluster's simulator (exposed for custom worker logic)."""
        return self.ps.sim

    @property
    def value_length(self) -> int:
        """Number of scalar entries stored per key."""
        return self.ps.ps_config.value_length

    @property
    def num_keys(self) -> int:
        """Size of the key space."""
        return self.ps.ps_config.num_keys

    def _check_keys(self, keys: Sequence[int]) -> Tuple[int, ...]:
        num_keys = self.ps.ps_config.num_keys
        cls = keys.__class__
        if (cls is list or cls is tuple) and len(keys) == 1:
            # Single-key fast lane: the dominant shape on the training hot
            # path (per-entry pulls/pushes).
            key = keys[0]
            if key.__class__ is int:
                if 0 <= key < num_keys:
                    return (key,)
                raise UnknownKeyError(key)
        if not hasattr(keys, "__len__"):
            keys = list(keys)  # accept iterators/generators, as before batching
        if type(keys) is not np.ndarray and len(keys) <= _SMALL_BATCH:
            checked = []
            for key in keys:
                key = int(key)
                if not 0 <= key < num_keys:
                    raise UnknownKeyError(key)
                checked.append(key)
            if not checked:
                raise ParameterServerError("operation requires at least one key")
            return tuple(checked)
        arr = np.asarray(keys, dtype=np.int64)
        if arr.ndim != 1:
            raise ParameterServerError(
                f"keys must be a one-dimensional sequence, got shape {arr.shape}"
            )
        if arr.size == 0:
            raise ParameterServerError("operation requires at least one key")
        out_of_range = (arr < 0) | (arr >= num_keys)
        if out_of_range.any():
            raise UnknownKeyError(int(arr[int(np.argmax(out_of_range))]))
        return tuple(arr.tolist())

    def _prepare_updates(self, keys: Tuple[int, ...], updates: Any) -> np.ndarray:
        updates = np.asarray(updates, dtype=np.float64)
        if updates.ndim == 1:
            updates = updates.reshape(1, -1)
        expected = (len(keys), self.ps.ps_config.value_length)
        if updates.shape != expected:
            raise ParameterServerError(
                f"updates have shape {updates.shape}, expected {expected}"
            )
        return updates

    # ---------------------------------------------------------------- sync API
    def pull(self, keys: Sequence[int]) -> Generator:
        """Synchronously pull ``keys``; returns an array with one row per key."""
        handle = self.pull_async(keys)
        if not handle.done:
            yield handle.completion_event
        return handle.values()

    def push(self, keys: Sequence[int], updates: Any) -> Generator:
        """Synchronously push cumulative ``updates`` for ``keys``."""
        handle = self.push_async(keys, updates, needs_ack=True)
        if not handle.done:
            yield handle.completion_event
        return handle

    def localize(self, keys: Sequence[int]) -> Generator:
        """Synchronously localize ``keys`` to this node (Lapse only)."""
        handle = self.localize_async(keys)
        if not handle.done:
            yield handle.completion_event
        return handle

    # --------------------------------------------------------------- async API
    def pull_async(self, keys: Sequence[int]) -> OperationHandle:
        """Asynchronously pull ``keys``; returns a handle to wait on."""
        keys = self._check_keys(keys)
        handle = OperationHandle(self.sim, "pull", keys, self.value_length)
        recorder = self._trace
        if recorder is not None:
            recorder.issue(handle)
        self.state.register_handle(handle)
        self._issue_pull(handle, keys)
        return handle

    def push_async(
        self, keys: Sequence[int], updates: Any, needs_ack: bool = False
    ) -> OperationHandle:
        """Asynchronously push ``updates`` for ``keys``."""
        keys = self._check_keys(keys)
        updates = self._prepare_updates(keys, updates)
        handle = OperationHandle(self.sim, "push", keys, self.value_length)
        recorder = self._trace
        if recorder is not None:
            recorder.issue(handle)
        self.state.register_handle(handle)
        self._issue_push(handle, keys, updates, needs_ack)
        return handle

    def localize_async(self, keys: Sequence[int]) -> OperationHandle:
        """Asynchronously request local allocation of ``keys`` (Lapse only)."""
        keys = self._check_keys(keys)
        handle = OperationHandle(self.sim, "localize", keys, self.value_length)
        recorder = self._trace
        if recorder is not None:
            recorder.issue(handle)
        self.state.register_handle(handle)
        self._issue_localize(handle, keys)
        return handle

    def fused_local_steps(self) -> Optional[FusedLocalSteps]:
        """Return a :class:`FusedLocalSteps` runner, or None if unsupported.

        The base client never fuses; variants whose local access is pure
        shared memory (classic with fast local access, Lapse) override this.
        Always None under ``REPRO_DISABLE_FASTPATH`` so the reference run
        exercises the event-by-event path.
        """
        return None

    def _fusion_safe(self) -> bool:
        """Engine- and cluster-level preconditions for fused local steps.

        Besides shared-memory access and the fast paths being on, the
        cluster must be *static*: the elastic runtime fires membership
        events and rebalancer-driven relocations mid-epoch, which can move
        a key inside a fused privacy window — exactly what the fusion
        contract forbids.
        """
        ps = self.ps
        return (
            ps.ps_config.shared_memory_local_access
            and self.sim.fastpath
            and ps._elastic_driver is None
            and ps.membership is None
        )

    def pull_if_local(self, key: int) -> Optional[np.ndarray]:
        """Return the value of ``key`` if it is stored locally, else ``None``.

        This is the primitive used by the word-vector latency-hiding scheme
        (Appendix A): negative samples whose parameters are not local are
        skipped and re-sampled rather than fetched remotely.
        """
        key = int(self._check_keys([key])[0])
        if self.state.storage.contains(key):
            self.state.metrics.key_reads_local += 1
            self.state.metrics.pulls_local += 1
            recorder = self._trace
            if recorder is not None:
                recorder.local_read(key, self.sim._now)
            return self.state.read_local(key)
        return None

    # ------------------------------------------------------------------ waiting
    def wait(self, handle: OperationHandle) -> Generator:
        """Wait for one outstanding operation."""
        if not handle.done:
            yield handle.completion_event
        return handle

    def wait_all(self, handles: Iterable[OperationHandle]) -> Generator:
        """Wait for all of ``handles``."""
        for handle in handles:
            if not handle.done:
                yield handle.completion_event
        return None

    # ----------------------------------------------------------- coordination
    def barrier(self) -> Generator:
        """Block until every worker in the cluster reached this barrier."""
        generation = self._barrier_generation
        self._barrier_generation += 1
        release = Event(self.sim)
        self.state.barrier_waiters.setdefault(generation, []).append(release)
        arrive = BarrierArrive(
            worker_id=self.worker_id,
            node=self.node_id,
            reply_to=self._van_address,
            generation=generation,
        )
        self.ps.network.send(
            self.node_id, coordinator_address(), arrive, message_size(0, 0)
        )
        yield release
        return None

    def clock(self) -> Generator:
        """Advance this worker's clock (meaningful for the stale PS).

        The base implementation is a synchronization no-op so that training
        algorithms written against the stale PS also run on classic PSs and
        Lapse without modification.
        """
        self._clock += 1
        self.state.metrics.clock_advances += 1
        return
        yield  # pragma: no cover - makes this function a generator

    # ------------------------------------------------------ variant extension
    def _issue_pull(self, handle: OperationHandle, keys: Tuple[int, ...]) -> None:
        raise NotImplementedError

    def _issue_push(
        self,
        handle: OperationHandle,
        keys: Tuple[int, ...],
        updates: np.ndarray,
        needs_ack: bool,
    ) -> None:
        raise NotImplementedError

    def _issue_localize(self, handle: OperationHandle, keys: Tuple[int, ...]) -> None:
        raise UnsupportedOperationError(
            f"{type(self.ps).__name__} allocates parameters statically and does "
            "not support localize"
        )

    # ------------------------------------------------------------------ policy
    @property
    def policy(self):
        """The server's :class:`~repro.ps.policy.ManagementPolicy`."""
        return self.ps.management_policy

    # --------------------------------------------------------------- internals
    def _complete_after(
        self, delay: float, action: Callable[[], None]
    ) -> None:
        """Run ``action`` after ``delay`` simulated seconds (without blocking)."""
        self.sim.call_later(delay, _run_action, action)

    def _send_remote(
        self,
        handle: OperationHandle,
        destination: int,
        keys: List[int],
        pull: bool,
        updates: Optional[np.ndarray] = None,
        key_to_row: Optional[Dict[int, int]] = None,
    ) -> None:
        """Send a pull/push for ``keys`` to ``destination``'s server thread.

        Chunks according to ``message_grouping`` (§3.7) and registers every
        chunk's op id on ``handle`` so the van can route the responses back.
        Pushes always request an acknowledgement.
        """
        if self.ps.ps_config.message_grouping or len(keys) == 1:
            self._send_chunk(handle, destination, keys, pull, updates, key_to_row)
        else:
            for key in keys:
                self._send_chunk(handle, destination, [key], pull, updates, key_to_row)

    def _send_chunk(
        self,
        handle: OperationHandle,
        destination: int,
        chunk: List[int],
        pull: bool,
        updates: Optional[np.ndarray],
        key_to_row: Optional[Dict[int, int]],
    ) -> None:
        """Send one pull/push chunk (§3.7) with its op id registered."""
        ps = self.ps
        op_id = ps.next_op_id()
        ps.register_op(op_id, handle)
        reply_to = self._van_address
        if pull:
            # Positional construction (keyword parsing is measurable here).
            request: Any = PullRequest(op_id, tuple(chunk), self.node_id, reply_to)
            size = message_size(len(chunk), 0)
        else:
            assert updates is not None and key_to_row is not None
            # One sliced copy instead of a per-key vstack.
            chunk_updates = copy_rows(updates, [key_to_row[key] for key in chunk])
            request = PushRequest(
                op_id, tuple(chunk), chunk_updates, self.node_id, reply_to, True
            )
            size = message_size(len(chunk), chunk_updates.size)
        ps.send_to_server(self.node_id, destination, request, size)

    def _chunks(self, keys: List[int]) -> List[List[int]]:
        """Chunk assembly (§3.7): one chunk per destination when message
        grouping is on, one single-key chunk per key otherwise."""
        if self.ps.ps_config.message_grouping:
            return [keys]
        return [[key] for key in keys]


class ParameterServer:
    """Base class for all simulated parameter servers.

    The server runtime is generic: one message loop per node
    (:meth:`_server_loop`) dispatches over a per-variant table of message
    handlers (:meth:`_server_dispatch`), and per-key routing and residency
    decisions are delegated to a pluggable
    :class:`~repro.ps.policy.ManagementPolicy` (``policy_class``).
    """

    #: Concrete subclasses set this to their client implementation.
    client_class: Type[WorkerClient] = WorkerClient
    #: Concrete subclasses set this to their management-policy implementation.
    policy_class: Optional[type] = None
    #: Human-readable name used in reports.
    name: str = "base"

    _management_policy: Optional[Any] = None
    #: Cluster membership record, attached by the elastic cluster runtime
    #: (:class:`repro.cluster.ElasticCluster`).  ``None`` for static clusters.
    membership: Optional[Any] = None
    #: Simulation driver installed by the elastic runtime (fires scheduled
    #: membership events while the simulation runs).  ``None`` -> plain run.
    _elastic_driver: Optional[Any] = None
    #: Barrier quorum override (the elastic runtime shrinks/grows it with the
    #: participating worker set).  ``None`` -> all configured workers.
    _barrier_expected: Optional[int] = None
    #: Durability manager (WAL + checkpoints), installed only when a
    #: :class:`~repro.durability.DurabilityConfig` is passed and enabled.
    #: ``None`` -> the stores stay unwrapped and no durability code runs.
    durability: Optional[Any] = None
    #: Tracer (:class:`repro.obs.Tracer`), installed only when a
    #: :class:`~repro.obs.TraceConfig` is passed and enabled.  ``None`` ->
    #: every trace hook is a single attribute-load-and-``None`` check.
    tracer: Optional[Any] = None
    #: Shard count for the parallel simulation engine
    #: (:mod:`repro.simnet.parallel`).  ``1`` -> sequential engine.  Set via
    #: ``make_parameter_server(..., engine="parallel", jobs=N)`` or directly.
    jobs: int = 1
    #: Outcome of the most recent :meth:`run_workers` engine selection: the
    #: fallback reason (``None`` when the parallel engine ran, or no parallel
    #: run was requested) and the effective shard count that executed.
    _last_fallback_reason: Optional[str] = None
    _last_effective_jobs: int = 1
    #: Adaptive shard-rebalancing state (:mod:`repro.simnet.parallel`): the
    #: plan the next parallel epoch forks from, and the per-epoch record of
    #: executed-event counts / skew / replans.
    _adaptive_shard_plan: Optional[Any] = None
    shard_load_history: Optional[List[dict]] = None

    def __init__(
        self,
        cluster: ClusterConfig,
        ps_config: Optional[ParameterServerConfig] = None,
        initial_values: Optional[Any] = None,
        partitioner: Optional[KeyPartitioner] = None,
        partitioner_kind: str = "range",
        durability: Optional[Any] = None,
        trace: Optional[Any] = None,
    ) -> None:
        self.cluster = cluster
        self.ps_config = ps_config or ParameterServerConfig()
        self.sim = Simulator()
        self.network = Network(self.sim, cluster.cost_model)
        self.nodes = [Node(self.sim, self.network, i, cluster) for i in range(cluster.num_nodes)]
        self.partitioner = partitioner or make_partitioner(
            partitioner_kind, self.ps_config.num_keys, cluster.num_nodes
        )
        if self.partitioner.num_keys != self.ps_config.num_keys:
            raise ParameterServerError("partitioner key space does not match PS config")
        if self.partitioner.num_nodes != cluster.num_nodes:
            raise ParameterServerError("partitioner node count does not match cluster")
        self._op_counter = 0
        self._op_handle_table: Dict[int, OperationHandle] = {}
        self._op_cleanup_bound = self._cleanup_ops
        #: Interned per-node addresses (tuple construction is measurable on
        #: the per-message hot path).
        self._server_addresses = [server_address(i) for i in range(cluster.num_nodes)]
        self._van_addresses = [van_address(i) for i in range(cluster.num_nodes)]
        self.states: List[NodeState] = [self._make_node_state(node) for node in self.nodes]
        if durability is not None and durability.enabled:
            # Wrap the (still empty) stores before the initial inserts so the
            # baseline state is itself logged; the manager then checkpoints.
            # Imported lazily: the fast path pays nothing when durability is
            # off, and the durability package may import repro.ps first.
            from repro.durability import DurabilityManager

            self.durability = DurabilityManager(self, durability)
        self._initialize_parameters(initial_values)
        self._start_threads()
        self._clients: Dict[Tuple[int, int], WorkerClient] = {}
        if trace is not None and trace.enabled:
            # Observation only (no kernel events, no RNG draws), so traced
            # runs stay bit-identical to untraced ones.  Imported lazily for
            # the same reason as the durability manager above.
            from repro.obs import Tracer

            self.tracer = Tracer(self, trace)

    # ------------------------------------------------------------ construction
    def _make_node_state(self, node: Node) -> NodeState:
        return NodeState(self, node)

    def _initial_owner(self, key: int) -> int:
        """Node that owns ``key`` at start-up (the static partition)."""
        return self.partitioner.node_of(key)

    def _initial_owners(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_initial_owner` (override both together)."""
        return self.partitioner.nodes_of(keys)

    def _initialize_parameters(self, initial_values: Optional[Any]) -> None:
        num_keys = self.ps_config.num_keys
        length = self.ps_config.value_length
        if initial_values is None:
            values = np.zeros((num_keys, length), dtype=np.float64)
        elif callable(initial_values):
            values = np.vstack(
                [np.asarray(initial_values(key), dtype=np.float64) for key in range(num_keys)]
            )
        else:
            values = np.asarray(initial_values, dtype=np.float64)
        if values.shape != (num_keys, length):
            raise ParameterServerError(
                f"initial values have shape {values.shape}, expected {(num_keys, length)}"
            )
        keys = np.arange(num_keys, dtype=np.int64)
        owners = self._initial_owners(keys)
        for node in range(self.cluster.num_nodes):
            node_keys = keys[owners == node]
            if node_keys.size:
                self.states[node].storage.insert_many(node_keys, values[node_keys])

    def _start_threads(self) -> None:
        # Server thread + van (response demux) on every node, barrier
        # coordinator on node 0.
        self._van_inboxes = []
        fastpath = self.sim.fastpath
        for state in self.states:
            if fastpath:
                # Event-driven server: handler timing is fully determined by
                # ``handle_at = max(arrival, busy_until) + cost``, so the
                # receive/wait/handle generator loop can be replaced by one
                # scheduled callback per message (same times, same order).
                self.network.attach_sink(
                    server_address(state.node_id),
                    partial(self._server_receive, state, self._server_dispatch(state)),
                )
            else:
                self.sim.process(
                    self._server_loop(state), name=f"server-{state.node_id}"
                )
            address = van_address(state.node_id)
            inbox = self.network.register(address, state.node_id)
            self._van_inboxes.append(inbox)
            if fastpath:
                # The van charges no processing cost and reacts immediately,
                # so its handler can run directly at the delivery instant —
                # the moment the van process would have been resumed — saving
                # the mailbox/process round trip per response.
                self.network.attach_sink(
                    address, partial(self._handle_van_message, state)
                )
            else:
                self.sim.process(
                    self._van_loop(state, inbox), name=f"van-{state.node_id}"
                )
        self._coordinator_inbox = self.network.register(coordinator_address(), 0)
        self.sim.process(self._coordinator_loop(), name="coordinator")

    # ---------------------------------------------------------------- clients
    def client(self, node: int, local_worker: int) -> WorkerClient:
        """Return (and cache) the client for worker ``local_worker`` on ``node``."""
        key = (node, local_worker)
        if key not in self._clients:
            worker_id = self.cluster.worker_id(node, local_worker)
            client = self.client_class(
                self, self.states[node], worker_id, local_worker
            )
            tracer = self.tracer
            if tracer is not None:
                recorder = tracer.recorder(self.states[node], worker_id)
                if recorder is not None:
                    client._trace = recorder
            self._clients[key] = client
        return self._clients[key]

    def clients(self) -> List[WorkerClient]:
        """Return clients for every worker in the cluster, ordered by worker id."""
        result = []
        for node in range(self.cluster.num_nodes):
            for local_worker in range(self.cluster.workers_per_node):
                result.append(self.client(node, local_worker))
        return result

    def run_workers(
        self,
        worker_fn: Callable[[WorkerClient, int], Generator],
        until: Optional[float] = None,
        clients: Optional[Sequence[WorkerClient]] = None,
    ) -> List[Any]:
        """Spawn one process per worker from ``worker_fn`` and run the simulation.

        Args:
            worker_fn: Called as ``worker_fn(client, worker_id)``; must return a
                generator (the worker's simulated behaviour).
            until: Optional simulated-time cutoff.
            clients: Optional subset of clients to run (elastic clusters run
                only the workers of currently active nodes); defaults to every
                worker in the cluster.

        Returns:
            The return values of all spawned workers, in ``clients`` order.
        """
        if clients is None:
            clients = self.clients()
        jobs = max(self.jobs, self.sim.jobs)
        self._last_fallback_reason = None
        self._last_effective_jobs = 1
        if jobs > 1:
            from repro.simnet.parallel import (
                parallel_fallback_reason,
                run_workers_parallel,
                warn_parallel_fallback,
            )

            reason = parallel_fallback_reason(self, until)
            if reason is None:
                self._last_effective_jobs = min(jobs, self.cluster.num_nodes)
                return run_workers_parallel(self, worker_fn, clients, jobs)
            self._last_fallback_reason = reason
            warn_parallel_fallback(reason)
            if self.tracer is not None:
                self.tracer.marker(
                    0, self.sim.now, "parallel:fallback", reason=reason, jobs=jobs
                )
        processes = []
        for client in clients:
            generator = worker_fn(client, client.worker_id)
            processes.append(
                self.sim.process(generator, name=f"worker-{client.worker_id}")
            )
        self._run_simulation(until=until, processes=processes)
        results = []
        for process in processes:
            if not process.processed:
                raise ParameterServerError(
                    f"worker process {process.name} did not finish "
                    "(deadlock or time limit reached)"
                )
            results.append(process.value)
        return results

    def run(self, until: Optional[float] = None) -> float:
        """Run the simulation (used when worker processes were started manually)."""
        return self._run_simulation(until=until)

    def _run_simulation(
        self, until: Optional[float] = None, processes: Optional[List[Any]] = None
    ) -> float:
        """Advance the simulation; the elastic runtime hooks in here to fire
        scheduled membership events at their simulated times."""
        driver = self._elastic_driver
        if driver is None:
            return self.sim.run(until=until)
        return driver.drive(until=until, processes=processes)

    # ------------------------------------------------------------------ owners
    def current_owner(self, key: int) -> int:
        """Node that currently owns ``key`` (static partition unless overridden)."""
        return self.partitioner.node_of(key)

    def current_owners(self, keys: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`current_owner`: one node id per key."""
        return self.partitioner.nodes_of(keys)

    def parameter(self, key: int) -> np.ndarray:
        """Return the authoritative current value of ``key`` (outside simulation)."""
        owner = self.current_owner(key)
        return self.states[owner].storage.get(key)

    def all_parameters(self) -> np.ndarray:
        """Return the full model as an array of shape (num_keys, value_length).

        Keys are gathered into per-owner groups so that every local store is
        read once with a batched ``get_many`` instead of once per key.
        """
        num_keys = self.ps_config.num_keys
        keys = np.arange(num_keys, dtype=np.int64)
        owners = self.current_owners(keys)
        out = np.empty((num_keys, self.ps_config.value_length), dtype=np.float64)
        for node in range(self.cluster.num_nodes):
            node_keys = keys[owners == node]
            if node_keys.size:
                out[node_keys] = self.states[node].storage.get_many(node_keys)
        return out

    # ----------------------------------------------------------------- metrics
    def metrics(self) -> PSMetrics:
        """Cluster-wide aggregate of all per-node metrics."""
        return PSMetrics.aggregate(state.metrics for state in self.states)

    def node_metrics(self, node: int) -> PSMetrics:
        """Metrics of one node."""
        return self.states[node].metrics

    @property
    def simulated_time(self) -> float:
        """Current simulated time in seconds."""
        return self.sim.now

    # ------------------------------------------------------------- op id pool
    def next_op_id(self) -> int:
        """Return a fresh cluster-unique operation id."""
        self._op_counter += 1
        return self._op_counter

    # ------------------------------------------------------------------ policy
    @property
    def management_policy(self):
        """The :class:`~repro.ps.policy.ManagementPolicy` of this server."""
        if self._management_policy is None:
            policy_class = self.policy_class
            if policy_class is None:
                # Deferred import: policy.py imports from this module.
                from repro.ps.policy import StaticPolicy

                policy_class = StaticPolicy
            self._management_policy = policy_class(self)
        return self._management_policy

    # ------------------------------------------------------------ server loops
    def _server_dispatch(
        self, state: NodeState
    ) -> Dict[type, Tuple[float, Callable[[NodeState, Any], None]]]:
        """Dispatch table of the server thread on ``state``'s node.

        Maps each message type the variant understands to a pair
        ``(processing_cost, handler)``: the loop charges ``processing_cost``
        simulated seconds, then calls ``handler(state, message)``.  Policies
        contribute entries for the message types of their protocols (e.g. the
        three relocation messages, or replica flushes and broadcasts).
        """
        raise NotImplementedError

    def _server_loop(self, state: NodeState) -> Generator:
        """Generic message loop of the server thread (reference engine).

        Replaces the per-variant hand-rolled loops: receive, look the message
        type up in the dispatch table, charge its processing cost, handle.
        Under the fast paths the same semantics run event-driven through
        :meth:`_server_receive` instead.
        """
        dispatch = self._server_dispatch(state)
        inbox = state.node.server_inbox
        metrics = state.metrics
        while True:
            message = yield inbox.get()
            entry = dispatch.get(type(message))
            if entry is None:
                raise ParameterServerError(
                    f"{self.name} PS server on node {state.node_id} received "
                    f"unexpected message {message!r}"
                )
            metrics.server_messages += 1
            cost, handler = entry
            trace = state.trace
            if trace is not None:
                now = self.sim._now
                trace.server_span(type(message).__name__, now, now, now + cost, metrics)
            yield cost
            handler(state, message)

    def _server_receive(self, state: NodeState, dispatch: Dict, message: Any) -> None:
        """Event-driven server thread: one scheduled handler call per message.

        The generator loop's timing collapses to a closed form — a message
        arriving at ``a`` is handled at ``max(a, busy_until) + cost`` with
        FIFO order preserved (``busy_until`` is monotonic) — so the handler
        is scheduled directly at that instant, skipping the mailbox, the
        getter event, and two generator resumes per message.
        """
        entry = dispatch.get(type(message))
        if entry is None:
            raise ParameterServerError(
                f"{self.name} PS server on node {state.node_id} received "
                f"unexpected message {message!r}"
            )
        state.metrics.server_messages += 1
        cost, handler = entry
        sim = self.sim
        now = sim._now
        busy = state.server_busy_until
        start = now if now > busy else busy
        handle_at = start + cost
        state.server_busy_until = handle_at
        trace = state.trace
        if trace is not None:
            trace.server_span(
                type(message).__name__, now, start, handle_at, state.metrics
            )
        sim.call_later(handle_at - now, _run_handler, (handler, state, message))

    # --------------------------------------------- shared server-side replies
    def _respond_pull(
        self, state: NodeState, request: Any, keys: Sequence[int], values: np.ndarray
    ) -> None:
        """Send a :class:`PullResponse` for ``keys`` back to the requester."""
        response = PullResponse(request.op_id, tuple(keys), values, state.node_id)
        size = message_size(len(keys), values.size)
        self.network.send(state.node_id, request.reply_to, response, size)

    def _ack_push(self, state: NodeState, request: Any, keys: Sequence[int]) -> None:
        """Acknowledge an applied push (if the requester asked for an ack)."""
        if request.needs_ack:
            ack = PushAck(request.op_id, tuple(keys), state.node_id)
            self.network.send(
                state.node_id, request.reply_to, ack, message_size(len(keys), 0)
            )

    def _server_pull(self, state: NodeState, request: Any) -> None:
        """Answer a pull for keys this node must own (static-allocation paths)."""
        values = self.management_policy.handle_read(
            state, request.keys, what="asked for"
        )
        self._respond_pull(state, request, request.keys, values)

    def _server_push(self, state: NodeState, request: Any) -> None:
        """Apply a push for keys this node must own (static-allocation paths)."""
        self.management_policy.handle_write(
            state, request.keys, request.updates, what="asked to update"
        )
        self._ack_push(state, request, request.keys)

    def _van_loop(self, state: NodeState, inbox) -> Generator:
        """Demultiplex responses arriving at this node back to operation handles."""
        while True:
            message = yield inbox.get()
            self._handle_van_message(state, message)

    def _handle_van_message(self, state: NodeState, message: Any) -> None:
        if isinstance(message, PullResponse):
            handle = self._find_handle(state, message.op_id)
            if handle is not None:
                handle.complete_keys(message.keys, message.values)
                self._after_response(state, message)
        elif isinstance(message, PushAck):
            handle = self._find_handle(state, message.op_id)
            if handle is not None:
                handle.complete_keys(message.keys)
                self._after_response(state, message)
        elif isinstance(message, LocalizeAck):
            handle = self._find_handle(state, message.op_id)
            if handle is not None:
                handle.complete_keys(message.keys)
        elif isinstance(message, BarrierRelease):
            waiters = state.barrier_waiters.pop(message.generation, [])
            for event in waiters:
                event.succeed(None)
        else:
            self._handle_extra_van_message(state, message)

    def _after_response(self, state: NodeState, message: Any) -> None:
        """Hook for variants (e.g. location-cache updates in Lapse)."""

    def _handle_extra_van_message(self, state: NodeState, message: Any) -> None:
        raise ParameterServerError(
            f"node {state.node_id} van received unexpected message {message!r}"
        )

    def _find_handle(self, state: NodeState, op_id: int) -> Optional[OperationHandle]:
        return self._op_handle_table.get(op_id)

    # The operation-id → handle registry (``_op_handle_table``, initialized in
    # __init__) is cluster global; it models the per-node "customer" tables of
    # PS-Lite without extra bookkeeping in every client.

    def register_op(self, op_id: int, handle: OperationHandle) -> None:
        """Associate ``op_id`` with ``handle`` for response routing.

        Cleanup is one callback per *handle* (popping all of its op ids on
        completion), not one closure per op id.
        """
        self._op_handle_table[op_id] = handle
        ids = handle._op_ids
        if ids is None:
            handle._op_ids = [op_id]
            handle.completion_event.callbacks.append(self._op_cleanup_bound)
        else:
            ids.append(op_id)

    def _cleanup_ops(self, event: Any) -> None:
        table = self._op_handle_table
        for op_id in event._value._op_ids:
            table.pop(op_id, None)

    # ------------------------------------------------------------- coordinator
    @property
    def barrier_size(self) -> int:
        """Workers that must arrive to release a barrier.

        Defaults to every configured worker; the elastic cluster runtime
        overrides it (via ``_barrier_expected``) to the participating worker
        set of the current epoch, so barriers keep working while nodes join
        and leave.
        """
        if self._barrier_expected is not None:
            return self._barrier_expected
        return self.cluster.total_workers

    def _coordinator_loop(self) -> Generator:
        arrivals: Dict[int, List[BarrierArrive]] = {}
        while True:
            message = yield self._coordinator_inbox.get()
            if not isinstance(message, BarrierArrive):
                raise ParameterServerError(
                    f"coordinator received unexpected message {message!r}"
                )
            generation_list = arrivals.setdefault(message.generation, [])
            generation_list.append(message)
            if len(generation_list) == self.barrier_size:
                # Release every node that has waiters for this generation.
                nodes_to_release = sorted({arrive.node for arrive in generation_list})
                for node in nodes_to_release:
                    self.network.send(
                        0,
                        van_address(node),
                        BarrierRelease(generation=message.generation),
                        message_size(0, 0),
                    )
                del arrivals[message.generation]

    # ------------------------------------------------------------------ sending
    def send_to_server(self, src_node: int, dst_node: int, payload: Any, size: int) -> None:
        """Send ``payload`` to the server thread of ``dst_node``."""
        self.network.send(src_node, self._server_addresses[dst_node], payload, size)

    def send_to_van(self, src_node: int, dst_node: int, payload: Any, size: int) -> None:
        """Send ``payload`` to the client van of ``dst_node``."""
        self.network.send(src_node, self._van_addresses[dst_node], payload, size)
