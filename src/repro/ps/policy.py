"""Pluggable parameter-management policies for the PS runtime.

The paper's core contribution is *dynamic parameter allocation* inside the
parameter server (§3); its outlook (realized in the NuPS follow-up) is that a
single server should *combine* management techniques — relocate most keys,
replicate the hot ones.  This module turns each technique into a composable
object so one server runtime can mix them per key:

* :class:`ManagementPolicy` — the interface: per-key routing of client
  accesses (``route`` / ``route_many``), server-side residency handling
  (``handle_read`` / ``handle_write``), and lifecycle hooks for the
  relocation protocol (``on_relocate``) and replica synchronization
  (``on_sync``).  A policy also installs its per-node tables on every
  :class:`~repro.ps.base.NodeState` (``attach``) and contributes its protocol
  messages to the generic server loop's dispatch table
  (``server_handlers``).
* :class:`StaticPolicy` — classic PS: a key is answered by its static
  partition owner, forever (§2.1).
* :class:`RelocationPolicy` — Lapse's dynamic allocation (§3): shared-memory
  access to owned keys, queue-and-drain for keys relocating in, forward
  routing via home nodes, optional location caches (§3.5).
* :class:`StaleReplicaPolicy` — Petuum-style bounded staleness (§2.1): reads
  may be served from a replica fetched within the staleness bound, writes are
  buffered until the next clock.
* :class:`EagerReplicationPolicy` — replication-based management: hot keys
  (per the :mod:`repro.ps.partition` hot-key policies) are copied to the
  accessing node and kept loosely synchronized.
* :class:`HybridManagementPolicy` — the per-key composition: replicate hot
  keys, relocate the long tail (used by :class:`repro.ps.hybrid.HybridPS`).

Every policy carries a ``guarantees`` classification — which of the per-key
consistency properties of §3.4 / Table 1 the technique retains — so that the
consistency test-suite can assert, per key, what a policy mix preserves.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterServerError, StorageError
from repro.ps.base import NodeState, QueuedOp, first_missing
from repro.ps.messages import (
    LocalizeRequest,
    RecoveryInstall,
    RelocateInstruction,
    RelocationTransfer,
    ReplicaDeltaBroadcast,
    ReplicaFetchRequest,
    ReplicaPush,
    ReplicaRegisterRequest,
    ReplicaSyncFlush,
    UpdateFlush,
)
from repro.ps.partition import HotKeyPolicy, make_hot_key_policy

#: Route kinds returned by :meth:`ManagementPolicy.route`.
ROUTE_LOCAL = "local"  #: owned parameter; access through shared memory/queues
ROUTE_REPLICA = "replica"  #: answered from a local replica copy
ROUTE_QUEUE = "queue"  #: key is in flight to this node; queue and drain
ROUTE_REMOTE = "remote"  #: send to the destination node's server thread
ROUTE_SUBSCRIBE = "subscribe"  #: install a replica: register at destination
ROUTE_BUFFER = "buffer"  #: buffer the write locally (stale PS; flush on clock)


@dataclass(frozen=True, slots=True)
class Route:
    """Where one key's access goes: a kind plus an optional destination node."""

    kind: str
    destination: int = -1


@dataclass
class InstallingKey:
    """Queue of operations issued for a key while its replica install is in flight.

    Mirrors the relocation queue (§3.2): accesses issued between the
    subscribe request and the arrival of the snapshot are buffered as
    :class:`~repro.ps.base.QueuedOp` and processed, in program order, once
    the replica is installed.  ``pending_deltas`` holds owner broadcasts that
    overtook the snapshot (a small delta message can be faster than the
    install).
    """

    key: int
    ops: List[QueuedOp] = field(default_factory=list)
    pending_deltas: List[np.ndarray] = field(default_factory=list)


# Shared singleton routes: route objects sit on the per-operation hot path,
# so the destination-less kinds are interned once per process and the
# destination-carrying kinds once per (policy, node).
_LOCAL = Route(ROUTE_LOCAL)
_REPLICA = Route(ROUTE_REPLICA)
_QUEUE = Route(ROUTE_QUEUE)
_BUFFER = Route(ROUTE_BUFFER)


class ManagementPolicy:
    """One parameter-management technique, pluggable into the PS runtime.

    A policy decides *where* every key access goes (client side), *how* the
    server answers for keys it manages (server side), and reacts to the
    lifecycle events of its protocol (relocations, synchronization rounds).
    The :class:`~repro.ps.base.ParameterServer` owns exactly one policy
    object; per-node state lives on the :class:`~repro.ps.base.NodeState`
    (installed by :meth:`attach`), so one policy instance serves all nodes.
    """

    #: Technique name used in reports and docs.
    name: str = "abstract"
    #: Whether the technique implements the ``localize`` primitive (Table 2).
    supports_localize: bool = False
    #: Whether the elastic cluster runtime can migrate key ownership under
    #: this policy (requires the relocation protocol; static/replicated
    #: allocations cannot shed a node's keys).
    supports_rebalance: bool = False
    #: Whether this policy maintains replicas on surviving nodes that failure
    #: recovery can restore keys from.  Actually recovering additionally
    #: requires ``supports_rebalance`` (the failed keys must be re-homed), so
    #: only the hybrid composition recovers end-to-end.
    supports_replica_recovery: bool = False
    #: Whether failure recovery may restore this policy's keys from the
    #: durability subsystem (checkpoint + WAL replay).  Requires the
    #: ``RecoveryInstall`` handler of the relocation protocol plus
    #: ``supports_rebalance`` (recovered keys must be re-homed), so static
    #: allocations stay unrecoverable even with a WAL attached.
    supports_wal_recovery: bool = False
    #: Per-key consistency properties retained (§3.4 / Table 1): ``eventual``,
    #: ``session`` (the four client-centric guarantees), ``causal``, and
    #: ``sequential`` (for synchronous operations).
    guarantees: Dict[str, bool] = {
        "eventual": True,
        "session": True,
        "causal": True,
        "sequential": True,
    }

    def __init__(self, ps: Any) -> None:
        self.ps = ps
        self._remote_routes: Dict[int, Route] = {}
        self._subscribe_routes: Dict[int, Route] = {}

    # ------------------------------------------------------------- lifecycle
    def attach(self, state: NodeState) -> None:
        """Install this policy's per-node tables on ``state`` (default: none)."""

    def server_handlers(
        self, state: NodeState
    ) -> Dict[type, Tuple[float, Callable[[NodeState, Any], None]]]:
        """Dispatch-table entries for this policy's protocol messages."""
        return {}

    # ----------------------------------------------------------- client side
    def route(self, state: NodeState, key: int, *, write: bool = False) -> Route:
        """Route one access to ``key`` issued on ``state``'s node.

        May record bookkeeping as a side effect (location-cache statistics,
        hot-key access counts, replica-install initiation), so callers must
        consult it exactly once per key occurrence, in program order.
        """
        raise NotImplementedError

    def route_many(
        self, state: NodeState, keys: Sequence[int], *, write: bool = False
    ) -> List[Route]:
        """Vectorizable batch :meth:`route` (same per-key order and effects)."""
        return [self.route(state, key, write=write) for key in keys]

    # ----------------------------------------------------------- server side
    def handle_read(
        self, state: NodeState, keys: Sequence[int], what: str = "asked for"
    ) -> np.ndarray:
        """Read managed keys on the server, naming the first missing key."""
        try:
            return state.read_local_many(keys)
        except StorageError:
            bad = first_missing(state, keys)
            if bad is None:
                raise
            raise ParameterServerError(
                f"{self.ps.name} PS node {state.node_id} {what} key {bad} "
                "it does not own"
            ) from None

    def handle_write(
        self,
        state: NodeState,
        keys: Sequence[int],
        updates: np.ndarray,
        what: str = "asked to update",
    ) -> None:
        """Apply cumulative updates on the server, naming the first missing key."""
        try:
            state.write_local_many(keys, updates)
        except StorageError:
            bad = first_missing(state, keys)
            if bad is None:
                raise
            raise ParameterServerError(
                f"{self.ps.name} PS node {state.node_id} {what} key {bad} "
                "it does not own"
            ) from None

    # -------------------------------------------------------------- lifecycle
    def on_relocate(self, state: NodeState, message: Any) -> None:
        """React to a relocation-protocol message (policies that move keys)."""
        raise ParameterServerError(
            f"{self.name} policy does not participate in relocations "
            f"(got {message!r})"
        )

    def on_sync(self, state: NodeState, clock: Optional[int] = None) -> None:
        """Run one synchronization round (policies that keep replicas)."""

    # -------------------------------------------------------------- interning
    def _remote(self, destination: int) -> Route:
        route = self._remote_routes.get(destination)
        if route is None:
            route = self._remote_routes[destination] = Route(ROUTE_REMOTE, destination)
        return route

    def _subscribe(self, destination: int) -> Route:
        route = self._subscribe_routes.get(destination)
        if route is None:
            route = self._subscribe_routes[destination] = Route(
                ROUTE_SUBSCRIBE, destination
            )
        return route


class StaticPolicy(ManagementPolicy):
    """Static allocation (classic PS, §2.1): every key stays with its partition.

    Synchronous operations are answered by the key's single owner in arrival
    order, so all of Table 1's per-key properties hold — the price is that
    locality never improves (no relocation, no replication).
    """

    name = "static"
    guarantees = {
        "eventual": True,
        "session": True,
        "causal": True,
        "sequential": True,
    }

    def route(self, state: NodeState, key: int, *, write: bool = False) -> Route:
        owner = self.ps.partitioner.node_of(key)
        if owner == state.node_id:
            return _LOCAL
        return self._remote(owner)

    def route_many(
        self, state: NodeState, keys: Sequence[int], *, write: bool = False
    ) -> List[Route]:
        owners = self.ps.partitioner.nodes_of_list(keys)
        node_id = state.node_id
        return [
            _LOCAL if owner == node_id else self._remote(owner) for owner in owners
        ]


class RelocationPolicy(ManagementPolicy):
    """Dynamic parameter allocation by relocation (Lapse, §3).

    Owned keys are read/written through shared memory; keys relocating *to*
    this node queue their operations (drained when the transfer arrives,
    §3.2); anything else is routed to the best-known location — the location
    cache if enabled and populated, the owner directly if this node is the
    key's home, or the home node otherwise (§3.5, Figure 5).

    Consistency (§3.4): synchronous operations keep per-key sequential
    consistency (Theorem 1); asynchronous operations keep it as long as
    location caches are off (Theorem 2) — a stale cache entry can break
    program order (Theorem 3), which the consistency suite demonstrates.
    """

    name = "relocation"
    supports_localize = True
    supports_rebalance = True
    supports_wal_recovery = True
    guarantees = {
        "eventual": True,
        "session": True,
        "causal": True,
        "sequential": True,
    }

    def attach(self, state: NodeState) -> None:
        #: Owner of every key homed at this node (home-node location table).
        state.home_location = {}
        #: Keys currently relocating to this node.
        state.relocating_in = {}
        #: For keys this node recently transferred away: where they went.
        state.last_transfer = {}
        #: Optional location cache: key -> believed owner.
        state.location_cache = {}

    def server_handlers(self, state: NodeState):
        cost = self.ps.cluster.cost_model.relocation_processing_time
        return {
            LocalizeRequest: (cost, self._handle_localize),
            RelocateInstruction: (cost, self.on_relocate),
            RelocationTransfer: (cost, self.on_relocate),
            RecoveryInstall: (cost, self.on_relocate),
        }

    def route(self, state: NodeState, key: int, *, write: bool = False) -> Route:
        if state.storage.contains(key):
            return _LOCAL
        if key in state.relocating_in:
            return _QUEUE
        return self._remote(self.route_destination(state, key))

    def route_many(
        self, state: NodeState, keys: Sequence[int], *, write: bool = False
    ) -> List[Route]:
        routes = []
        for key, resident in zip(keys, state.storage.contains_flags(keys)):
            if resident:
                routes.append(_LOCAL)
            elif key in state.relocating_in:
                routes.append(_QUEUE)
            else:
                routes.append(self._remote(self.route_destination(state, key)))
        return routes

    def route_destination(self, state: NodeState, key: int) -> int:
        """Best node to contact for a non-local access to ``key`` (§3.5)."""
        ps = self.ps
        if ps.ps_config.location_caches and key in state.location_cache:
            state.metrics.cache_hits += 1
            return state.location_cache[key]
        home = ps.home_node(key)
        if home == state.node_id:
            # The home table is in this node's shared memory; contact the
            # owner directly (2 messages instead of 3).
            return state.home_location[key]
        if ps.ps_config.location_caches:
            state.metrics.cache_misses += 1
        return home

    def _handle_localize(self, state: NodeState, message: LocalizeRequest) -> None:
        self.ps.process_localize_at_home(state, message.keys, message.requester_node)

    def on_relocate(self, state: NodeState, message: Any) -> None:
        """Drive the owner/new-owner halves of the relocation protocol."""
        if isinstance(message, RelocateInstruction):
            self.ps._handle_instruction(state, message)
        elif isinstance(message, RelocationTransfer):
            self.ps._handle_transfer(state, message)
        elif isinstance(message, RecoveryInstall):
            self.ps._handle_recovery(state, message)
        else:
            super().on_relocate(state, message)


class StaleReplicaPolicy(ManagementPolicy):
    """Bounded-staleness replicas (Petuum-style stale PS, §2.1).

    Reads of remote keys may be served from a replica fetched within the
    staleness bound (relative to the issuing worker's clock); writes to
    remote keys are buffered and flushed at the next clock.  Remote reads
    therefore provide only eventual consistency (Table 1): a fresh-enough
    replica can still miss this worker's own unflushed remote writes.
    """

    name = "stale-replica"
    guarantees = {
        "eventual": True,
        "session": False,
        "causal": False,
        "sequential": False,
    }

    def attach(self, state: NodeState) -> None:
        #: Replicas of remote parameters: key -> [value, fetched_at_clock].
        state.replicas = {}
        #: Server side: nodes that accessed each locally-owned key (SSPPush).
        state.subscriptions = defaultdict(set)
        #: Server side: number of update flushes received per clock value.
        state.flush_counts = defaultdict(int)
        #: Pending flush acknowledgements: op id -> event.
        state.pending_flush_acks = {}
        #: Pending replica fetches: op id -> (handle, keys).
        state.pending_fetches = {}

    def server_handlers(self, state: NodeState):
        cost = self.ps.cluster.cost_model.server_processing_time
        return {
            ReplicaFetchRequest: (cost, self.ps._handle_fetch),
            UpdateFlush: (cost, self.ps._handle_flush),
            ReplicaPush: (cost, self.ps._handle_replica_push),
        }

    def route_many(
        self,
        state: NodeState,
        keys: Sequence[int],
        *,
        write: bool = False,
        clock: int = 0,
    ) -> List[Route]:
        owners = self.ps.partitioner.nodes_of_list(keys)
        fresh_after = clock - self.ps.ps_config.staleness_bound
        replicas = state.replicas
        node_id = state.node_id
        routes = []
        for key, owner in zip(keys, owners):
            if owner == node_id:
                routes.append(_LOCAL)
            elif write:
                routes.append(_BUFFER)
            elif key in replicas and replicas[key][1] >= fresh_after:
                routes.append(_REPLICA)
            else:
                routes.append(self._remote(owner))
        return routes

    def route(
        self, state: NodeState, key: int, *, write: bool = False, clock: int = 0
    ) -> Route:
        return self.route_many(state, [key], write=write, clock=clock)[0]

    def on_sync(self, state: NodeState, clock: Optional[int] = None) -> None:
        """SSPPush: broadcast fresh values to all subscribers after a clock."""
        self.ps._push_replicas(state, clock)


class EagerReplicationPolicy(ManagementPolicy):
    """Eager replication of hot keys (the alternative the paper contrasts DPA with).

    The first read that a node's hot-key policy classifies as hot starts a
    replica install (subscription at the owner); afterwards the key is read
    and written through the local replica, with conflict-free additive
    aggregation and a time- or clock-triggered synchronization loop.

    The price is consistency (§3.4): between synchronization rounds a replica
    read can miss other nodes' committed writes, so per-key sequential
    consistency is lost; eventual consistency and the local session
    guarantees (a node always sees its own writes) remain.
    """

    name = "replication"
    supports_replica_recovery = True
    guarantees = {
        "eventual": True,
        "session": True,
        "causal": True,
        "sequential": False,
    }

    def attach(self, state: NodeState) -> None:
        #: Local replicas of remote parameters: key -> current value.
        state.replicas = {}
        #: Updates applied to local replicas but not yet flushed to the owner.
        state.pending_updates = {}
        #: Keys whose replica install is in flight, with queued operations.
        state.installing = {}
        #: Owner side: nodes holding a replica of each locally-owned key.
        state.subscribers = defaultdict(set)
        #: Owner side: per-subscriber aggregated deltas awaiting broadcast.
        state.broadcast_buffer = defaultdict(dict)
        #: This node's hot-key replication policy (per-node access counts).
        state.policy = self.make_hot_key_policy()
        #: Whether a time-triggered synchronization event is already scheduled.
        state.sync_timer_pending = False

    def make_hot_key_policy(self) -> HotKeyPolicy:
        """Build one node's hot-key policy from the PS configuration."""
        config = self.ps.ps_config
        return make_hot_key_policy(
            config.hot_key_policy,
            threshold=config.hot_key_threshold,
            hot_keys=config.hot_keys,
            num_keys=config.num_keys,
        )

    def server_handlers(self, state: NodeState):
        cost = self.ps.cluster.cost_model.server_processing_time
        return {
            ReplicaRegisterRequest: (cost, self.ps._handle_register),
            ReplicaSyncFlush: (cost, self.ps._handle_flush),
            ReplicaDeltaBroadcast: (cost, self.ps._handle_broadcast),
        }

    def route(
        self,
        state: NodeState,
        key: int,
        *,
        write: bool = False,
        owner: Optional[int] = None,
    ) -> Route:
        if owner is None:
            owner = self.ps.partitioner.node_of(key)
        if owner == state.node_id:
            return _LOCAL
        if key in state.replicas:
            return _REPLICA
        if key in state.installing:
            return _QUEUE
        # Accesses to keys this node neither owns nor replicates feed the
        # hot-key statistics; replication is established on reads only.
        state.policy.record_access(key)
        if not write and state.policy.is_hot(key):
            state.installing[key] = InstallingKey(key=key)
            return self._subscribe(owner)
        return self._remote(owner)

    def route_many(
        self, state: NodeState, keys: Sequence[int], *, write: bool = False
    ) -> List[Route]:
        owners = self.ps.partitioner.nodes_of_list(keys)
        return [
            self.route(state, key, write=write, owner=owner)
            for key, owner in zip(keys, owners)
        ]

    def on_sync(self, state: NodeState, clock: Optional[int] = None) -> None:
        """Flush pending replica updates and broadcast owner-side deltas."""
        self.ps.synchronize_node(state)


class HybridManagementPolicy(ManagementPolicy):
    """Per-key composition: replicate hot keys, relocate the long tail.

    The composition is the NuPS direction the paper's outlook sketches: most
    keys move to the single node that works on them (relocation keeps their
    strong per-key guarantees), while contended hot keys — which relocation
    would bounce between nodes — are replicated to every accessor and
    synchronized in the background.

    Routing consults, in order: owned storage, the replica store, the two
    in-flight queues (replica install / relocation), and finally the hot-key
    policy — a hot read subscribes, everything else follows the relocation
    routing (home node / location cache).  Replica subscriptions chase
    relocated keys the same way accesses do: the home node forwards register
    and flush messages to the current owner.
    """

    name = "hybrid"
    supports_localize = True
    supports_rebalance = True
    supports_replica_recovery = True
    supports_wal_recovery = True
    #: The mixed store retains only what both techniques guarantee; per-key
    #: classification is exposed via :meth:`key_guarantees`.
    guarantees = {
        "eventual": True,
        "session": True,
        "causal": True,
        "sequential": False,
    }

    def __init__(self, ps: Any) -> None:
        super().__init__(ps)
        self.relocation = RelocationPolicy(ps)
        self.replication = EagerReplicationPolicy(ps)

    def attach(self, state: NodeState) -> None:
        self.relocation.attach(state)
        self.replication.attach(state)

    def server_handlers(self, state: NodeState):
        handlers = dict(self.relocation.server_handlers(state))
        handlers.update(self.replication.server_handlers(state))
        return handlers

    def route(self, state: NodeState, key: int, *, write: bool = False) -> Route:
        if state.storage.contains(key):
            return _LOCAL
        if key in state.replicas:
            return _REPLICA
        if key in state.installing or key in state.relocating_in:
            return _QUEUE
        state.policy.record_access(key)
        if not write and state.policy.is_hot(key):
            state.installing[key] = InstallingKey(key=key)
            # The subscription chases the key like any access: via the
            # location cache / home node of the relocation policy.
            return self._subscribe(self.relocation.route_destination(state, key))
        return self._remote(self.relocation.route_destination(state, key))

    def route_destination(self, state: NodeState, key: int) -> int:
        """Best node to contact for a cold (non-replicated) key — delegates to
        the relocation half (home node / location cache, §3.5)."""
        return self.relocation.route_destination(state, key)

    def key_guarantees(self, key: int) -> Dict[str, bool]:
        """Table-1 classification of one key under the current policy mix.

        A key that any node currently replicates is governed by the
        replication guarantees (sequential consistency lost between
        synchronization rounds); a purely relocated/owned key keeps the full
        relocation guarantees.
        """
        if self.ps.replica_holders(key):
            return dict(self.replication.guarantees)
        return dict(self.relocation.guarantees)

    def on_relocate(self, state: NodeState, message: Any) -> None:
        self.relocation.on_relocate(state, message)

    def on_sync(self, state: NodeState, clock: Optional[int] = None) -> None:
        self.replication.on_sync(state, clock)


def consistency_classification(policy: ManagementPolicy) -> Dict[str, bool]:
    """Table-1 row (§3.4) retained by ``policy``, as a property → bool map."""
    return dict(policy.guarantees)
