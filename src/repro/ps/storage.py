"""Local parameter stores.

Each simulated node keeps the parameters it currently *owns* in a local store.
As in Lapse (§3.7), two variants are provided:

* :class:`DenseStorage` — a contiguous NumPy array indexed by key, suitable
  when the key space is contiguous and mostly resident (classic/stale PS, or
  Lapse on a single node),
* :class:`SparseStorage` — a dict of per-key vectors, suitable when a node
  holds an arbitrary, changing subset of the key space (Lapse with dynamic
  parameter allocation).

Both guarantee per-key atomic reads and cumulative writes; a
:class:`LatchTable` models the fixed pool of latches (default 1000) that Lapse
uses to synchronize local access without a global lock.

Besides the single-key primitives, every store exposes a **batch API**
(``get_many`` / ``add_many`` / ``set_many`` / ``insert_many`` /
``remove_many`` / ``contains_many``) operating on whole key sequences at
once.  On success, batch operations produce exactly the state a sequence of
single-key ops in batch order would — duplicates in an ``add_many`` batch
accumulate, and errors name the first offending key — but run vectorized:
fancy indexing and ``np.add.at`` on :class:`DenseStorage`, a single dict walk
per batch on :class:`SparseStorage`.  On *error*, every batch mutator is
check-then-apply: an invalid batch raises before any key is touched, so the
parameter servers can probe a whole batch and fall back to a per-key split
without double-applying updates.  The parameter servers' hot data paths use
only the batch API.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import StorageError

#: Batches at or below this size take a pure-Python fast path: for a handful
#: of keys, NumPy's fixed per-call overhead (array coercion, ufunc dispatch,
#: reductions) exceeds the cost of a plain loop.  Vectorization pays off only
#: above this threshold.
SMALL_BATCH = 16


def gather_rows(
    per_key: Dict[int, np.ndarray], keys: Sequence[int], value_length: int
) -> np.ndarray:
    """Copy per-key rows into one (n, d) array in a single dict walk.

    Shared by the PS variants' flush/broadcast assembly, replacing per-key
    ``vstack`` gathers.
    """
    out = np.empty((len(keys), value_length), dtype=np.float64)
    for index, key in enumerate(keys):
        out[index] = per_key[key]
    return out


def _first_duplicate(keys: np.ndarray) -> int:
    """Return the first key that repeats in ``keys`` (error paths only)."""
    seen = set()
    for key in keys.tolist():
        if key in seen:
            return key
        seen.add(key)
    raise AssertionError("no duplicate in keys")  # pragma: no cover


class LatchTable:
    """A fixed pool of latches with a many-to-one key→latch mapping.

    The simulation is cooperatively scheduled, so latches never actually
    block; the table exists to (a) model the acquisition cost and (b) expose
    the key→latch mapping so tests can verify that distinct keys may share a
    latch while one key always maps to the same latch.
    """

    __slots__ = ("num_latches", "acquisitions")

    def __init__(self, num_latches: int = 1000) -> None:
        if num_latches < 1:
            raise StorageError(f"num_latches must be >= 1, got {num_latches}")
        self.num_latches = num_latches
        self.acquisitions = 0

    def latch_for(self, key: int) -> int:
        """Return the latch index guarding ``key``."""
        return key % self.num_latches

    def acquire(self, key: int) -> int:
        """Record an acquisition of the latch for ``key`` and return its index."""
        self.acquisitions += 1
        return self.latch_for(key)

    def acquire_many(self, keys: Sequence[int]) -> Sequence[int]:
        """Record one latch acquisition per key in a single accounting step.

        Equivalent to calling :meth:`acquire` for every key (every key of a
        batch still pays for its latch) but batched.  Returns the latch index
        of every key (a list for small batches, an array for large ones).
        """
        self.acquisitions += len(keys)
        num_latches = self.num_latches
        if type(keys) is np.ndarray:
            return keys % num_latches
        if len(keys) <= SMALL_BATCH:
            return [key % num_latches for key in keys]
        return np.asarray(keys, dtype=np.int64) % num_latches


class ParameterStorage:
    """Interface shared by dense and sparse local parameter stores.

    Values are float64 vectors of a fixed per-store length.  ``get`` returns a
    copy (parameters are copied out of and back into the store, as the paper
    notes for PS architectures in §4.4); ``add`` applies a cumulative update
    in place.

    The ``*_many`` batch operations behave exactly like the corresponding
    single-key operation applied per key in batch order.  The base class
    provides per-key fallbacks so that custom stores only need the single-key
    primitives; :class:`DenseStorage` and :class:`SparseStorage` override them
    with vectorized implementations.
    """

    value_length: int

    def contains(self, key: int) -> bool:
        raise NotImplementedError

    # -------------------------------------------------- unchecked fast access
    # The ``row_*`` primitives back the fused worker-step path: the caller has
    # already verified residency (``has_row``) and guarantees a float64 update
    # row of the store's value length, so all per-call validation is skipped.
    def has_row(self, key: int) -> bool:
        """Unchecked residency probe (``key`` must be in range)."""
        return self.contains(key)

    def row_copy(self, key: int) -> np.ndarray:
        """Copy of a resident row, without residency/range checks."""
        return self.get(key)

    def row_add(self, key: int, update: np.ndarray) -> None:
        """In-place cumulative update of a resident row, without checks."""
        self.add(key, update)

    def get(self, key: int) -> np.ndarray:
        raise NotImplementedError

    def set(self, key: int, value: np.ndarray) -> None:
        raise NotImplementedError

    def add(self, key: int, update: np.ndarray) -> None:
        raise NotImplementedError

    def insert(self, key: int, value: np.ndarray) -> None:
        raise NotImplementedError

    def remove(self, key: int) -> np.ndarray:
        raise NotImplementedError

    def keys(self) -> Iterator[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    def snapshot(self) -> "tuple[np.ndarray, np.ndarray]":
        """Copy the resident state out as ``(keys, values)`` arrays.

        Keys are sorted ascending (int64); values hold one float64 row per
        key.  The arrays are detached copies — later mutations of the store
        do not affect a snapshot, which is what makes it usable as a
        checkpoint payload.
        """
        keys = np.fromiter(self.keys(), dtype=np.int64)
        keys.sort()
        if keys.size == 0:
            return keys, np.empty((0, self.value_length), dtype=np.float64)
        return keys, self.get_many(keys)

    # ------------------------------------------------------------- batch API
    def contains_many(self, keys: Sequence[int]) -> np.ndarray:
        """Return a boolean array: whether each key is resident."""
        return np.fromiter(
            (self.contains(int(key)) for key in keys), dtype=bool, count=len(keys)
        )

    def contains_flags(self, keys: Sequence[int]) -> list:
        """Like :meth:`contains_many` but as a plain Python list of bools.

        Small batches avoid the array round-trip entirely; large batches
        delegate to the vectorized :meth:`contains_many`.
        """
        if type(keys) is not np.ndarray and len(keys) <= SMALL_BATCH:
            contains = self.contains
            return [contains(key) for key in keys]
        return self.contains_many(keys).tolist()

    def get_many(self, keys: Sequence[int]) -> np.ndarray:
        """Return the values of ``keys`` as an array with one row per key."""
        keys = self._check_batch_keys(keys)
        out = np.empty((keys.size, self.value_length), dtype=np.float64)
        for index, key in enumerate(keys.tolist()):
            out[index] = self.get(key)
        return out

    def add_many(self, keys: Sequence[int], updates: np.ndarray) -> None:
        """Apply one cumulative update row per key; duplicate keys accumulate.

        Check-then-apply: a batch with a non-resident key raises before any
        update lands (callers probe whole batches and rely on falling back to
        a per-key split without double-applying updates).
        """
        keys = self._check_batch_keys(keys)
        updates = self._check_batch_values(keys.size, updates)
        key_list = keys.tolist()
        for key in key_list:
            if not self.contains(key):
                raise StorageError(f"key {key} is not resident in this store")
        for index, key in enumerate(key_list):
            self.add(key, updates[index])

    def set_many(self, keys: Sequence[int], values: np.ndarray) -> None:
        """Overwrite one value row per key (the last row wins for duplicates).

        Check-then-apply, like :meth:`add_many`.
        """
        keys = self._check_batch_keys(keys)
        values = self._check_batch_values(keys.size, values)
        key_list = keys.tolist()
        for key in key_list:
            if not self.contains(key):
                raise StorageError(f"key {key} is not resident in this store")
        for index, key in enumerate(key_list):
            self.set(key, values[index])

    def insert_many(self, keys: Sequence[int], values: np.ndarray) -> None:
        """Insert one value row per (previously non-resident, distinct) key.

        Check-then-apply, like :meth:`add_many`.
        """
        keys = self._check_batch_keys(keys)
        values = self._check_batch_values(keys.size, values)
        key_list = keys.tolist()
        seen = set()
        for key in key_list:
            if self.contains(key) or key in seen:
                raise StorageError(f"key {key} is already resident; cannot insert twice")
            seen.add(key)
        for index, key in enumerate(key_list):
            self.insert(key, values[index])

    def remove_many(self, keys: Sequence[int]) -> np.ndarray:
        """Remove ``keys``, returning their former values one row per key.

        Check-then-apply: a batch with a non-resident (or duplicated) key
        raises before any key is removed.
        """
        keys = self._check_batch_keys(keys)
        key_list = keys.tolist()
        seen = set()
        for key in key_list:
            if not self.contains(key) or key in seen:
                raise StorageError(f"key {key} is not resident in this store")
            seen.add(key)
        out = np.empty((keys.size, self.value_length), dtype=np.float64)
        for index, key in enumerate(key_list):
            out[index] = self.remove(key)
        return out

    # --------------------------------------------------------------- checking
    def _check_value(self, key: int, value: np.ndarray) -> np.ndarray:
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (self.value_length,):
            raise StorageError(
                f"value for key {key} has shape {value.shape}, "
                f"expected ({self.value_length},)"
            )
        return value

    def _check_batch_keys(self, keys: Sequence[int]) -> np.ndarray:
        """Coerce a key batch to an int64 array (no residency/range checks)."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.ndim != 1:
            raise StorageError(f"key batch must be one-dimensional, got shape {keys.shape}")
        return keys

    def _check_batch_values(self, num_keys: int, values: np.ndarray) -> np.ndarray:
        """Coerce a value batch to a float64 array of shape (num_keys, d)."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1 and num_keys == 1:
            values = values.reshape(1, -1)
        if values.shape != (num_keys, self.value_length):
            raise StorageError(
                f"value batch has shape {values.shape}, "
                f"expected ({num_keys}, {self.value_length})"
            )
        return values


class DenseStorage(ParameterStorage):
    """Array-backed store over a contiguous key range.

    A membership mask tracks which keys are currently resident so that dense
    storage can also be used by Lapse nodes (whose resident set changes).
    """

    def __init__(
        self,
        num_keys: int,
        value_length: int,
        initial_keys: Optional[Iterable[int]] = None,
    ) -> None:
        if num_keys < 1:
            raise StorageError(f"num_keys must be >= 1, got {num_keys}")
        if value_length < 1:
            raise StorageError(f"value_length must be >= 1, got {value_length}")
        self.num_keys = num_keys
        self.value_length = value_length
        self._values = np.zeros((num_keys, value_length), dtype=np.float64)
        self._present = np.zeros(num_keys, dtype=bool)
        if initial_keys is not None:
            keys = self._check_key_range(list(initial_keys))
            self._present[keys] = True

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.num_keys:
            raise StorageError(f"key {key} out of range [0, {self.num_keys})")

    def _check_key_range(self, keys: Sequence[int]) -> np.ndarray:
        """Vectorized bounds check; raises on the first out-of-range key."""
        keys = self._check_batch_keys(keys)
        out_of_range = (keys < 0) | (keys >= self.num_keys)
        if out_of_range.any():
            bad = int(keys[int(np.argmax(out_of_range))])
            raise StorageError(f"key {bad} out of range [0, {self.num_keys})")
        return keys

    def _check_resident(self, keys: Sequence[int]) -> np.ndarray:
        keys = self._check_key_range(keys)
        resident = self._present[keys]
        if not resident.all():
            bad = int(keys[int(np.argmin(resident))])
            raise StorageError(f"key {bad} is not resident in this store")
        return keys

    def contains(self, key: int) -> bool:
        self._check_key(key)
        return bool(self._present[key])

    def has_row(self, key: int) -> bool:
        return self._present[key]

    def row_copy(self, key: int) -> np.ndarray:
        return self._values[key].copy()

    def row_add(self, key: int, update: np.ndarray) -> None:
        self._values[key] += update

    def get(self, key: int) -> np.ndarray:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        return self._values[key].copy()

    def set(self, key: int, value: np.ndarray) -> None:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        self._values[key] = self._check_value(key, value)

    def add(self, key: int, update: np.ndarray) -> None:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        self._values[key] += self._check_value(key, update)

    def insert(self, key: int, value: np.ndarray) -> None:
        self._check_key(key)
        if self._present[key]:
            raise StorageError(f"key {key} is already resident; cannot insert twice")
        value = self._check_value(key, value)
        self._present[key] = True
        self._values[key] = value

    def remove(self, key: int) -> np.ndarray:
        value = self.get(key)
        self._present[key] = False
        self._values[key] = 0.0
        return value

    def keys(self) -> Iterator[int]:
        return iter(np.flatnonzero(self._present).tolist())

    def __len__(self) -> int:
        return int(self._present.sum())

    def snapshot(self) -> "tuple[np.ndarray, np.ndarray]":
        keys = np.flatnonzero(self._present).astype(np.int64)
        # Fancy indexing copies, detaching the snapshot from the live store.
        return keys, self._values[keys]

    # ------------------------------------------------------------- batch API
    def _is_small(self, keys: Sequence[int]) -> bool:
        return type(keys) is not np.ndarray and len(keys) <= SMALL_BATCH

    def _check_resident_scalar(self, key: int) -> None:
        if not 0 <= key < self.num_keys:
            raise StorageError(f"key {key} out of range [0, {self.num_keys})")
        if not self._present[key]:
            raise StorageError(f"key {key} is not resident in this store")

    def contains_many(self, keys: Sequence[int]) -> np.ndarray:
        if self._is_small(keys):
            num_keys = self.num_keys
            present = self._present
            out = np.empty(len(keys), dtype=bool)
            for index, key in enumerate(keys):
                if not 0 <= key < num_keys:
                    raise StorageError(f"key {key} out of range [0, {num_keys})")
                out[index] = present[key]
            return out
        keys = self._check_key_range(keys)
        return self._present[keys]

    def contains_flags(self, keys: Sequence[int]) -> list:
        if self._is_small(keys):
            num_keys = self.num_keys
            present = self._present
            flags = []
            for key in keys:
                if not 0 <= key < num_keys:
                    raise StorageError(f"key {key} out of range [0, {num_keys})")
                flags.append(bool(present[key]))
            return flags
        return self.contains_many(keys).tolist()

    def get_many(self, keys: Sequence[int]) -> np.ndarray:
        if self._is_small(keys):
            values = self._values
            out = np.empty((len(keys), self.value_length), dtype=np.float64)
            for index, key in enumerate(keys):
                self._check_resident_scalar(key)
                out[index] = values[key]
            return out
        keys = self._check_resident(keys)
        # Fancy indexing copies, preserving the copy-out contract of ``get``.
        return self._values[keys]

    def add_many(self, keys: Sequence[int], updates: np.ndarray) -> None:
        if self._is_small(keys):
            updates = self._check_batch_values(len(keys), updates)
            values = self._values
            # Validate before mutating so a failed batch leaves no partial
            # update behind (callers rely on add_many being check-then-apply).
            for key in keys:
                self._check_resident_scalar(key)
            for index, key in enumerate(keys):
                values[key] += updates[index]
            return
        keys = self._check_resident(keys)
        updates = self._check_batch_values(keys.size, updates)
        if keys.size == np.unique(keys).size:
            # Duplicate-free batch: fancy += is several times faster than the
            # unbuffered np.add.at and numerically identical here.
            self._values[keys] += updates
        else:
            # Unbuffered accumulation: duplicate keys in one batch add up
            # exactly as a sequence of single-key ``add`` calls would.
            np.add.at(self._values, keys, updates)

    def set_many(self, keys: Sequence[int], values: np.ndarray) -> None:
        if self._is_small(keys):
            values = self._check_batch_values(len(keys), values)
            store = self._values
            for key in keys:
                self._check_resident_scalar(key)
            for index, key in enumerate(keys):
                store[key] = values[index]
            return
        keys = self._check_resident(keys)
        values = self._check_batch_values(keys.size, values)
        self._values[keys] = values

    def insert_many(self, keys: Sequence[int], values: np.ndarray) -> None:
        if self._is_small(keys):
            values = self._check_batch_values(len(keys), values)
            seen = set()
            for key in keys:
                self._check_key(key)
                if self._present[key] or key in seen:
                    raise StorageError(
                        f"key {key} is already resident; cannot insert twice"
                    )
                seen.add(key)
            for index, key in enumerate(keys):
                self._present[key] = True
                self._values[key] = values[index]
            return
        keys = self._check_key_range(keys)
        values = self._check_batch_values(keys.size, values)
        if np.unique(keys).size != keys.size:
            bad = _first_duplicate(keys)
            raise StorageError(f"key {bad} is already resident; cannot insert twice")
        resident = self._present[keys]
        if resident.any():
            bad = int(keys[int(np.argmax(resident))])
            raise StorageError(f"key {bad} is already resident; cannot insert twice")
        self._present[keys] = True
        self._values[keys] = values

    def remove_many(self, keys: Sequence[int]) -> np.ndarray:
        if self._is_small(keys):
            values = self._values
            seen = set()
            for key in keys:
                self._check_resident_scalar(key)
                if key in seen:
                    raise StorageError(f"key {key} is not resident in this store")
                seen.add(key)
            out = np.empty((len(keys), self.value_length), dtype=np.float64)
            for index, key in enumerate(keys):
                out[index] = values[key]
                self._present[key] = False
                values[key] = 0.0
            return out
        keys = self._check_resident(keys)
        if np.unique(keys).size != keys.size:
            # A duplicate would be removed twice; per-key semantics make the
            # second removal fail because the key is no longer resident.
            bad = _first_duplicate(keys)
            raise StorageError(f"key {bad} is not resident in this store")
        values = self._values[keys]
        self._present[keys] = False
        self._values[keys] = 0.0
        return values


class SparseStorage(ParameterStorage):
    """Slab-backed store holding an arbitrary subset of the key space.

    Resident keys map (via a dict) to row *slots* of one contiguous backing
    matrix; the matrix grows by doubling, and removed keys' slots are
    recycled through a free list.  Values are copied in on ``insert`` /
    ``set`` and out on ``get``, so callers never alias stored rows, and
    ``add`` updates the slab row in place (no allocation per update).

    The slab layout is what makes the batch operations fast: ``get_many`` is
    one fancy-index gather and ``add_many`` one vectorized in-place scatter
    (``np.add.at`` when the batch contains duplicate keys), instead of a
    Python-level loop of per-row NumPy calls.  Batch semantics are unchanged:
    state after a batch equals a sequence of single-key ops in batch order,
    and every mutator is check-then-apply.
    """

    def __init__(
        self,
        num_keys: int,
        value_length: int,
        initial_keys: Optional[Iterable[int]] = None,
    ) -> None:
        if num_keys < 1:
            raise StorageError(f"num_keys must be >= 1, got {num_keys}")
        if value_length < 1:
            raise StorageError(f"value_length must be >= 1, got {value_length}")
        self.num_keys = num_keys
        self.value_length = value_length
        #: key -> row slot in the backing matrix.
        self._index: Dict[int, int] = {}
        #: Dense mirror of ``_index`` (-1 = not resident): lets the batch ops
        #: resolve all slots in one fancy-index gather instead of a Python
        #: dict walk.  Kept in sync at every ``_index`` mutation site.
        self._slot_of = np.full(num_keys, -1, dtype=np.intp)
        self._matrix = np.zeros((8, value_length), dtype=np.float64)
        #: Slots handed back by ``remove``, reused before growing the slab.
        self._free: List[int] = []
        #: High-water mark: slots below this have been allocated at least once.
        self._top = 0
        if initial_keys is not None:
            for key in initial_keys:
                self._check_key(key)
                slot = self._allocate()
                self._index[key] = slot
                self._slot_of[key] = slot

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.num_keys:
            raise StorageError(f"key {key} out of range [0, {self.num_keys})")

    def _allocate(self) -> int:
        """Return a zeroed free slot, growing the slab if necessary."""
        free = self._free
        if free:
            slot = free.pop()
            self._matrix[slot] = 0.0
            return slot
        matrix = self._matrix
        if self._top == matrix.shape[0]:
            grown = np.zeros((matrix.shape[0] * 2, self.value_length), dtype=np.float64)
            grown[: self._top] = matrix
            self._matrix = grown
        slot = self._top
        self._top += 1
        return slot

    def contains(self, key: int) -> bool:
        self._check_key(key)
        return key in self._index

    def has_row(self, key: int) -> bool:
        return key in self._index

    def row_copy(self, key: int) -> np.ndarray:
        return self._matrix[self._index[key]].copy()

    def row_add(self, key: int, update: np.ndarray) -> None:
        self._matrix[self._index[key]] += update

    def get(self, key: int) -> np.ndarray:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        return self._matrix[self._index[key]].copy()

    def set(self, key: int, value: np.ndarray) -> None:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        self._matrix[self._index[key]] = self._check_value(key, value)

    def add(self, key: int, update: np.ndarray) -> None:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        # In-place accumulation into the slab row: no allocation per update.
        self._matrix[self._index[key]] += self._check_value(key, update)

    def insert(self, key: int, value: np.ndarray) -> None:
        self._check_key(key)
        if key in self._index:
            raise StorageError(f"key {key} is already resident; cannot insert twice")
        value = self._check_value(key, value)
        slot = self._allocate()
        self._index[key] = slot
        self._slot_of[key] = slot
        self._matrix[slot] = value

    def remove(self, key: int) -> np.ndarray:
        value = self.get(key)
        self._free.append(self._index.pop(key))
        self._slot_of[key] = -1
        return value

    def keys(self) -> Iterator[int]:
        return iter(sorted(self._index.keys()))

    def __len__(self) -> int:
        return len(self._index)

    def snapshot(self) -> "tuple[np.ndarray, np.ndarray]":
        key_list = sorted(self._index.keys())
        keys = np.asarray(key_list, dtype=np.int64)
        if not key_list:
            return keys, np.empty((0, self.value_length), dtype=np.float64)
        slots = [self._index[key] for key in key_list]
        # One gather off the slab (fancy indexing copies).
        return keys, self._matrix[slots]

    # ------------------------------------------------------------- batch API
    @staticmethod
    def _key_list(keys: Sequence[int]) -> Sequence[int]:
        """Normalize a key batch to something cheaply iterable as Python ints."""
        if type(keys) is np.ndarray:
            return keys.tolist()
        return keys

    def _resolve_slots(self, key_list: Sequence[int]) -> List[int]:
        """Slot of every key, raising on the first non-resident key."""
        index = self._index
        slots = []
        for key in key_list:
            slot = index.get(key)
            if slot is None:
                self._check_key(key)
                raise StorageError(f"key {key} is not resident in this store")
            slots.append(slot)
        return slots

    def _resolve_slot_array(self, key_list: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`_resolve_slots` for large batches.

        One bounds check plus one gather off ``_slot_of``; only when a key is
        out of range or not resident does it fall back to the Python walk,
        which raises naming the first offending key in batch order (the same
        error contract as the per-key path).
        """
        key_array = np.asarray(key_list, dtype=np.intp)
        if key_array.size == 0:
            return key_array
        if key_array.min() < 0 or key_array.max() >= self.num_keys:
            self._resolve_slots(key_list)
        slots = self._slot_of[key_array]
        if (slots < 0).any():
            self._resolve_slots(key_list)
        return slots

    def contains_many(self, keys: Sequence[int]) -> np.ndarray:
        key_list = self._key_list(keys)
        index = self._index
        num_keys = self.num_keys
        out = np.empty(len(key_list), dtype=bool)
        for position, key in enumerate(key_list):
            if not 0 <= key < num_keys:
                raise StorageError(f"key {key} out of range [0, {num_keys})")
            out[position] = key in index
        return out

    def contains_flags(self, keys: Sequence[int]) -> list:
        key_list = self._key_list(keys)
        index = self._index
        num_keys = self.num_keys
        flags = []
        for key in key_list:
            if not 0 <= key < num_keys:
                raise StorageError(f"key {key} out of range [0, {num_keys})")
            flags.append(key in index)
        return flags

    def get_many(self, keys: Sequence[int]) -> np.ndarray:
        key_list = self._key_list(keys)
        if len(key_list) <= SMALL_BATCH:
            slots: Sequence[int] = self._resolve_slots(key_list)
        else:
            slots = self._resolve_slot_array(key_list)
        # One gather off the slab (fancy indexing copies, as ``get`` does).
        return self._matrix[slots]

    def add_many(self, keys: Sequence[int], updates: np.ndarray) -> None:
        key_list = self._key_list(keys)
        updates = self._check_batch_values(len(key_list), updates)
        matrix = self._matrix
        # Resolving every slot first keeps add_many check-then-apply: a batch
        # with a non-resident key raises before any update lands.
        if len(key_list) <= SMALL_BATCH:
            for position, slot in enumerate(self._resolve_slots(key_list)):
                matrix[slot] += updates[position]
            return
        slot_array = self._resolve_slot_array(key_list)
        if np.unique(slot_array).size == slot_array.size:
            # Duplicate-free batch: fancy += is several times faster than the
            # unbuffered np.add.at and numerically identical here.
            matrix[slot_array] += updates
        else:
            # Unbuffered accumulation: duplicate keys in one batch add up
            # exactly as a sequence of single-key ``add`` calls would.
            np.add.at(matrix, slot_array, updates)

    def set_many(self, keys: Sequence[int], values_in: np.ndarray) -> None:
        key_list = self._key_list(keys)
        values_in = self._check_batch_values(len(key_list), values_in)
        matrix = self._matrix
        if len(key_list) <= SMALL_BATCH:
            for position, slot in enumerate(self._resolve_slots(key_list)):
                matrix[slot] = values_in[position]
            return
        # Duplicate slots resolve to the last row, matching per-key order.
        matrix[self._resolve_slot_array(key_list)] = values_in

    def insert_many(self, keys: Sequence[int], values_in: np.ndarray) -> None:
        key_list = self._key_list(keys)
        values_in = self._check_batch_values(len(key_list), values_in)
        index = self._index
        seen = set()
        for key in key_list:
            self._check_key(key)
            if key in index or key in seen:
                raise StorageError(f"key {key} is already resident; cannot insert twice")
            seen.add(key)
        slots = [self._allocate() for _ in key_list]
        matrix = self._matrix
        for position, key in enumerate(key_list):
            index[key] = slots[position]
            self._slot_of[key] = slots[position]
        if len(slots) <= SMALL_BATCH:
            for position, slot in enumerate(slots):
                matrix[slot] = values_in[position]
        else:
            matrix[np.asarray(slots, dtype=np.intp)] = values_in

    def remove_many(self, keys: Sequence[int]) -> np.ndarray:
        key_list = self._key_list(keys)
        index = self._index
        seen = set()
        for key in key_list:
            if key not in index or key in seen:
                self._check_key(key)
                raise StorageError(f"key {key} is not resident in this store")
            seen.add(key)
        slots = [index.pop(key) for key in key_list]
        self._slot_of[np.asarray(key_list, dtype=np.intp)] = -1
        values = self._matrix[slots]
        self._free.extend(slots)
        return values


def make_storage(
    dense: bool,
    num_keys: int,
    value_length: int,
    initial_keys: Optional[Iterable[int]] = None,
) -> ParameterStorage:
    """Build a dense or sparse store according to the PS configuration."""
    if dense:
        return DenseStorage(num_keys, value_length, initial_keys)
    return SparseStorage(num_keys, value_length, initial_keys)
