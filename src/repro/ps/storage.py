"""Local parameter stores.

Each simulated node keeps the parameters it currently *owns* in a local store.
As in Lapse (§3.7), two variants are provided:

* :class:`DenseStorage` — a contiguous NumPy array indexed by key, suitable
  when the key space is contiguous and mostly resident (classic/stale PS, or
  Lapse on a single node),
* :class:`SparseStorage` — a dict of per-key vectors, suitable when a node
  holds an arbitrary, changing subset of the key space (Lapse with dynamic
  parameter allocation).

Both guarantee per-key atomic reads and cumulative writes; a
:class:`LatchTable` models the fixed pool of latches (default 1000) that Lapse
uses to synchronize local access without a global lock.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional

import numpy as np

from repro.errors import StorageError


class LatchTable:
    """A fixed pool of latches with a many-to-one key→latch mapping.

    The simulation is cooperatively scheduled, so latches never actually
    block; the table exists to (a) model the acquisition cost and (b) expose
    the key→latch mapping so tests can verify that distinct keys may share a
    latch while one key always maps to the same latch.
    """

    def __init__(self, num_latches: int = 1000) -> None:
        if num_latches < 1:
            raise StorageError(f"num_latches must be >= 1, got {num_latches}")
        self.num_latches = num_latches
        self.acquisitions = 0

    def latch_for(self, key: int) -> int:
        """Return the latch index guarding ``key``."""
        return key % self.num_latches

    def acquire(self, key: int) -> int:
        """Record an acquisition of the latch for ``key`` and return its index."""
        self.acquisitions += 1
        return self.latch_for(key)


class ParameterStorage:
    """Interface shared by dense and sparse local parameter stores.

    Values are float64 vectors of a fixed per-store length.  ``get`` returns a
    copy (parameters are copied out of and back into the store, as the paper
    notes for PS architectures in §4.4); ``add`` applies a cumulative update
    in place.
    """

    value_length: int

    def contains(self, key: int) -> bool:
        raise NotImplementedError

    def get(self, key: int) -> np.ndarray:
        raise NotImplementedError

    def set(self, key: int, value: np.ndarray) -> None:
        raise NotImplementedError

    def add(self, key: int, update: np.ndarray) -> None:
        raise NotImplementedError

    def insert(self, key: int, value: np.ndarray) -> None:
        raise NotImplementedError

    def remove(self, key: int) -> np.ndarray:
        raise NotImplementedError

    def keys(self) -> Iterator[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    def _check_value(self, key: int, value: np.ndarray) -> np.ndarray:
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (self.value_length,):
            raise StorageError(
                f"value for key {key} has shape {value.shape}, "
                f"expected ({self.value_length},)"
            )
        return value


class DenseStorage(ParameterStorage):
    """Array-backed store over a contiguous key range.

    A membership mask tracks which keys are currently resident so that dense
    storage can also be used by Lapse nodes (whose resident set changes).
    """

    def __init__(
        self,
        num_keys: int,
        value_length: int,
        initial_keys: Optional[Iterable[int]] = None,
    ) -> None:
        if num_keys < 1:
            raise StorageError(f"num_keys must be >= 1, got {num_keys}")
        if value_length < 1:
            raise StorageError(f"value_length must be >= 1, got {value_length}")
        self.num_keys = num_keys
        self.value_length = value_length
        self._values = np.zeros((num_keys, value_length), dtype=np.float64)
        self._present = np.zeros(num_keys, dtype=bool)
        if initial_keys is not None:
            for key in initial_keys:
                self._check_key(key)
                self._present[key] = True

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.num_keys:
            raise StorageError(f"key {key} out of range [0, {self.num_keys})")

    def contains(self, key: int) -> bool:
        self._check_key(key)
        return bool(self._present[key])

    def get(self, key: int) -> np.ndarray:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        return self._values[key].copy()

    def set(self, key: int, value: np.ndarray) -> None:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        self._values[key] = self._check_value(key, value)

    def add(self, key: int, update: np.ndarray) -> None:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        self._values[key] += self._check_value(key, update)

    def insert(self, key: int, value: np.ndarray) -> None:
        self._check_key(key)
        if self._present[key]:
            raise StorageError(f"key {key} is already resident; cannot insert twice")
        value = self._check_value(key, value)
        self._present[key] = True
        self._values[key] = value

    def remove(self, key: int) -> np.ndarray:
        value = self.get(key)
        self._present[key] = False
        self._values[key] = 0.0
        return value

    def keys(self) -> Iterator[int]:
        return iter(np.flatnonzero(self._present).tolist())

    def __len__(self) -> int:
        return int(self._present.sum())


class SparseStorage(ParameterStorage):
    """Dict-backed store holding an arbitrary subset of the key space."""

    def __init__(
        self,
        num_keys: int,
        value_length: int,
        initial_keys: Optional[Iterable[int]] = None,
    ) -> None:
        if num_keys < 1:
            raise StorageError(f"num_keys must be >= 1, got {num_keys}")
        if value_length < 1:
            raise StorageError(f"value_length must be >= 1, got {value_length}")
        self.num_keys = num_keys
        self.value_length = value_length
        self._values: Dict[int, np.ndarray] = {}
        if initial_keys is not None:
            for key in initial_keys:
                self._check_key(key)
                self._values[key] = np.zeros(value_length, dtype=np.float64)

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.num_keys:
            raise StorageError(f"key {key} out of range [0, {self.num_keys})")

    def contains(self, key: int) -> bool:
        self._check_key(key)
        return key in self._values

    def get(self, key: int) -> np.ndarray:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        return self._values[key].copy()

    def set(self, key: int, value: np.ndarray) -> None:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        self._values[key] = self._check_value(key, value)

    def add(self, key: int, update: np.ndarray) -> None:
        if not self.contains(key):
            raise StorageError(f"key {key} is not resident in this store")
        self._values[key] = self._values[key] + self._check_value(key, update)

    def insert(self, key: int, value: np.ndarray) -> None:
        self._check_key(key)
        if key in self._values:
            raise StorageError(f"key {key} is already resident; cannot insert twice")
        self._values[key] = self._check_value(key, value)

    def remove(self, key: int) -> np.ndarray:
        value = self.get(key)
        del self._values[key]
        return value

    def keys(self) -> Iterator[int]:
        return iter(sorted(self._values.keys()))

    def __len__(self) -> int:
        return len(self._values)


def make_storage(
    dense: bool,
    num_keys: int,
    value_length: int,
    initial_keys: Optional[Iterable[int]] = None,
) -> ParameterStorage:
    """Build a dense or sparse store according to the PS configuration."""
    if dense:
        return DenseStorage(num_keys, value_length, initial_keys)
    return SparseStorage(num_keys, value_length, initial_keys)
