"""Hybrid parameter management: replicate hot keys, relocate the long tail.

The paper's outlook — formalized in the NuPS follow-up (Renz-Wieland et al.,
SIGMOD 2022) — is that no single management technique suits every parameter:
*relocation* (§3) is ideal for keys with access locality (each key lives on
the one node that works on it; accesses are local, per-key sequential
consistency is retained), but a *hot* key that every node reads constantly
would bounce between nodes.  For those, *replication* wins: every accessor
holds a copy, reads/writes are local, and the copies synchronize in the
background at the price of weaker per-key consistency.

:class:`HybridPS` runs both techniques in one server, assigned **per key** by
the hot-key policies of :mod:`repro.ps.partition`:

* a key a node's policy classifies as hot is *replicated* to that node on
  first read (subscription + snapshot install, exactly like
  :class:`~repro.ps.replica.ReplicaPS`),
* every other key follows the Lapse relocation protocol (``localize``,
  home-node location management, forward routing) inherited from
  :class:`~repro.ps.lapse.LapsePS`.

The two protocols compose through three mechanisms:

1. **Routing** (:class:`~repro.ps.policy.HybridManagementPolicy`): owned
   storage → replica store → in-flight queues (install / relocation) →
   hot-key policy; cold misses and replica subscriptions are both routed via
   the relocation policy's home-node/location-cache destination, so
   subscriptions *chase* relocated keys the same way accesses do (the home
   node forwards register and flush messages to the current owner).
2. **Owner-side broadcasts everywhere**: :class:`HybridNodeState` hooks the
   owned-write path, so every write applied to an owned key — worker fast
   path, forwarded push, queued-op drain — enqueues a delta for the key's
   subscribers, regardless of which protocol delivered it.
3. **Subscriber handoff on relocation**: when a subscribed key relocates, the
   old owner first drains its pending broadcast deltas, then hands the
   subscriber set over inside the :class:`RelocationTransfer`; the new owner
   takes over broadcast duties.  ``localize`` of a key the caller already
   replicates completes immediately (a replica makes accesses local), so a
   node is never both subscriber and owner of the same key.

Consistency (§3.4, Table 1): relocated (cold) keys retain per-key sequential
consistency for synchronous operations; replicated (hot) keys retain eventual
consistency plus the session guarantees, like the pure replica PS.  The
per-key classification is exposed by
:meth:`repro.ps.policy.HybridManagementPolicy.key_guarantees`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import replace as dataclass_replace
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import message_size
from repro.ps.base import FusedLocalSteps, NodeState, QueuedOp
from repro.ps.futures import OperationHandle
from repro.ps.lapse import LapseNodeState, LapsePS, LapseWorkerClient, RelocatingKey
from repro.ps.messages import (
    PullRequest,
    PushRequest,
    RelocateInstruction,
    RelocationTransfer,
    ReplicaDeltaBroadcast,
    ReplicaInstall,
    ReplicaRegisterRequest,
    ReplicaSyncFlush,
)
from repro.ps.policy import (
    ROUTE_LOCAL,
    ROUTE_QUEUE,
    ROUTE_REPLICA,
    ROUTE_SUBSCRIBE,
    HybridManagementPolicy,
    RelocationPolicy,
)
from repro.ps.replica import ReplicaNodeState, ReplicaPS
from repro.ps.storage import gather_rows

__all__ = ["HybridNodeState", "HybridPS", "HybridWorkerClient"]


class HybridNodeState(ReplicaNodeState, LapseNodeState):
    """Per-node state of the hybrid PS: relocation tables *and* replica stores.

    Both table sets are installed by
    :meth:`~repro.ps.policy.HybridManagementPolicy.attach`.  The owned-write
    accessors are hooked so that every update applied to an owned key also
    feeds the replica-broadcast buffers — no matter whether the write arrived
    through the worker fast path, a forwarded push, or a drained queue.
    """

    def write_local(self, key: int, update: np.ndarray) -> None:
        super().write_local(key, update)
        self.ps.enqueue_broadcast(self, key, update)

    def write_local_many(self, keys: Sequence[int], updates: np.ndarray) -> None:
        super().write_local_many(keys, updates)
        ps = self.ps
        subscribers = self.subscribers
        for index, key in enumerate(keys):
            if subscribers.get(key):
                ps.enqueue_broadcast(self, key, updates[index])

    def write_local_raw(self, keys: Sequence[int], updates: np.ndarray) -> None:
        """Owned write *without* the broadcast hook (for flushes, which carry
        their own exclusion-aware broadcast step)."""
        NodeState.write_local_many(self, keys, updates)


class HybridFusedLocalSteps(FusedLocalSteps):
    """Fused local steps for the hybrid PS: only subscriber-free owned keys.

    An owned key with subscribers is replicated elsewhere — its writes feed
    the broadcast buffers that the background synchronizer reads mid-window,
    so such keys must stay on the event-by-event path.  A subscriber-free
    owned key behaves exactly like a Lapse-owned key (plain storage write;
    the broadcast hook is a no-op), and the trainer's privacy window also
    rules out a subscription *appearing* mid-window (a registration would
    require another node to read the key).
    """

    __slots__ = ("subscribers",)

    def __init__(self, client: "HybridWorkerClient") -> None:
        super().__init__(client)
        self.subscribers = client.state.subscribers

    def try_pull(self, key):
        entry = self.subscribers.get(key)
        if entry:
            return None
        return FusedLocalSteps.try_pull(self, key)


class HybridWorkerClient(LapseWorkerClient):
    """Client of the hybrid PS: replica fast path over Lapse routing."""

    state: HybridNodeState

    def fused_local_steps(self):
        """Subscriber-aware fused local steps (see HybridFusedLocalSteps)."""
        if self._fusion_safe() and type(self.policy) is HybridManagementPolicy:
            return HybridFusedLocalSteps(self)
        return None

    # ------------------------------------------------------------------- pull
    def _issue_pull(self, handle: OperationHandle, keys: Tuple[int, ...]) -> None:
        state = self.state
        metrics = state.metrics
        local_keys: List[int] = []
        replica_keys: List[int] = []
        register_groups: Dict[int, List[int]] = defaultdict(list)
        remote_groups: Dict[int, List[int]] = defaultdict(list)
        for key in keys:
            route = self.policy.route(state, key)
            if route.kind == ROUTE_LOCAL:
                local_keys.append(key)
            elif route.kind == ROUTE_REPLICA:
                replica_keys.append(key)
            elif route.kind == ROUTE_QUEUE:
                metrics.queued_ops += 1
                metrics.key_reads_local += 1
                queued = QueuedOp(kind="local_pull", key=key, handle=handle)
                if key in state.installing:
                    metrics.replica_reads += 1
                    state.installing[key].ops.append(queued)
                else:
                    state.relocating_in[key].queued_ops.append(queued)
            elif route.kind == ROUTE_SUBSCRIBE:
                state.installing[key].ops.append(
                    QueuedOp(kind="local_pull", key=key, handle=handle)
                )
                register_groups[route.destination].append(key)
            else:
                remote_groups[route.destination].append(key)
        if local_keys:
            metrics.key_reads_local += len(local_keys)
            self._local_pull(handle, local_keys)
        if replica_keys:
            metrics.key_reads_local += len(replica_keys)
            metrics.replica_reads += len(replica_keys)
            self._local_replica_pull(handle, replica_keys)
        for owner, owner_keys in register_groups.items():
            metrics.key_reads_remote += len(owner_keys)
            self._send_register(owner, owner_keys)
        for destination, dest_keys in remote_groups.items():
            metrics.key_reads_remote += len(dest_keys)
            self._send_remote(handle, destination, dest_keys, pull=True)
        if register_groups or remote_groups:
            metrics.pulls_remote += 1
        else:
            metrics.pulls_local += 1

    # ------------------------------------------------------------------- push
    def _issue_push(
        self,
        handle: OperationHandle,
        keys: Tuple[int, ...],
        updates: np.ndarray,
        needs_ack: bool,
    ) -> None:
        state = self.state
        metrics = state.metrics
        key_to_row = {key: index for index, key in enumerate(keys)}
        local_keys: List[int] = []
        replica_keys: List[int] = []
        remote_groups: Dict[int, List[int]] = defaultdict(list)
        for key in keys:
            route = self.policy.route(state, key, write=True)
            if route.kind == ROUTE_LOCAL:
                local_keys.append(key)
            elif route.kind == ROUTE_REPLICA:
                replica_keys.append(key)
            elif route.kind == ROUTE_QUEUE:
                metrics.queued_ops += 1
                metrics.key_writes_local += 1
                queued = QueuedOp(
                    kind="local_push",
                    key=key,
                    handle=handle,
                    update=updates[key_to_row[key]].copy(),
                )
                if key in state.installing:
                    metrics.replica_writes += 1
                    state.installing[key].ops.append(queued)
                else:
                    state.relocating_in[key].queued_ops.append(queued)
            else:
                remote_groups[route.destination].append(key)
        if local_keys:
            metrics.key_writes_local += len(local_keys)
            self._local_push(handle, local_keys, updates, key_to_row)
        if replica_keys:
            metrics.key_writes_local += len(replica_keys)
            metrics.replica_writes += len(replica_keys)
            self._local_replica_push(handle, replica_keys, updates, key_to_row)
        for destination, dest_keys in remote_groups.items():
            metrics.key_writes_remote += len(dest_keys)
            self._send_remote(
                handle,
                destination,
                dest_keys,
                pull=False,
                updates=updates,
                key_to_row=key_to_row,
            )
        if remote_groups:
            metrics.pushes_remote += 1
        else:
            metrics.pushes_local += 1

    # ----------------------------------------------------------- replica path
    def _local_replica_pull(self, handle: OperationHandle, keys: List[int]) -> None:
        cost = self.ps.cluster.cost_model
        delay = cost.local_access_time(shared_memory=True) * len(keys)
        state = self.state

        def action() -> None:
            state.latches.acquire_many(keys)
            replicas = state.replicas
            values = np.empty((len(keys), self.value_length), dtype=np.float64)
            for index, key in enumerate(keys):
                values[index] = replicas[key]
            handle.complete_keys(keys, values)

        self._complete_after(delay, action)

    def _local_replica_push(
        self,
        handle: OperationHandle,
        keys: List[int],
        updates: np.ndarray,
        key_to_row: Dict[int, int],
    ) -> None:
        cost = self.ps.cluster.cost_model
        delay = cost.local_access_time(shared_memory=True) * len(keys)
        state = self.state
        ps: "HybridPS" = self.ps  # type: ignore[assignment]

        def action() -> None:
            for key in keys:
                ps.apply_replica_write(state, key, updates[key_to_row[key]])
            handle.complete_keys(keys)

        self._complete_after(delay, action)

    def _send_register(self, destination: int, keys: List[int]) -> None:
        from repro.ps.base import van_address

        request = ReplicaRegisterRequest(
            keys=tuple(keys),
            requester_node=self.node_id,
            reply_to=van_address(self.node_id),
        )
        self.ps.send_to_server(
            self.node_id, destination, request, message_size(len(keys), 0)
        )

    # --------------------------------------------------------------- localize
    def _localized_without_move(self, state: HybridNodeState, key: int) -> bool:
        """A replica (present or installing) already makes accesses local, so
        ``localize`` on a replicated key needs no relocation — this also keeps
        a node from ever being subscriber and owner of the same key."""
        return (
            state.storage.contains(key)
            or key in state.replicas
            or key in state.installing
        )

    # ---------------------------------------------------------------- routing
    def _relocation_policy(self) -> RelocationPolicy:
        return self.policy.relocation  # type: ignore[union-attr]

    # --------------------------------------------------------- opportunistic
    def pull_if_local(self, key: int) -> Optional[np.ndarray]:
        """Return ``key``'s value if owned or replicated locally, else ``None``.

        A miss feeds the hot-key statistics and, once the key is hot, starts
        a background replica install (Appendix A latency hiding benefits).
        """
        key = int(self._check_keys([key])[0])
        state = self.state
        if state.storage.contains(key):
            state.metrics.key_reads_local += 1
            state.metrics.pulls_local += 1
            return state.read_local(key)
        if key in state.replicas:
            state.metrics.key_reads_local += 1
            state.metrics.pulls_local += 1
            state.metrics.replica_reads += 1
            state.latches.acquire(key)
            return state.replicas[key].copy()
        if key not in state.installing and key not in state.relocating_in:
            route = self.policy.route(state, key)
            if route.kind == ROUTE_SUBSCRIBE:
                self._send_register(route.destination, [key])
        return None

    # ------------------------------------------------------------------ clock
    def clock(self) -> Generator:
        """Advance the worker clock; in ``"clock"`` mode, synchronize the node."""
        self._clock += 1
        self.state.metrics.clock_advances += 1
        if self.ps.ps_config.replica_sync_trigger == "clock":
            self.policy.on_sync(self.state)
        return
        yield  # pragma: no cover - makes this function a generator


class HybridPS(LapsePS, ReplicaPS):
    """One server, two management techniques, assigned per key.

    Inherits the relocation protocol (and location management) from
    :class:`LapsePS` and the replication machinery (subscriptions, delta
    buffers, synchronization loop) from :class:`ReplicaPS`; this class wires
    the two together at the points where they interact.
    """

    client_class = HybridWorkerClient
    policy_class = HybridManagementPolicy
    name = "hybrid"

    def _make_node_state(self, node) -> HybridNodeState:
        return HybridNodeState(self, node)

    # ---------------------------------------------------------- server dispatch
    def _server_dispatch(self, state: HybridNodeState):  # type: ignore[override]
        cost = self.cluster.cost_model.server_processing_time
        dispatch = {
            PullRequest: (cost, self._handle_access),
            PushRequest: (cost, self._handle_access),
        }
        # Relocation + replication protocol messages, via the two sub-policies.
        dispatch.update(self.management_policy.server_handlers(state))
        return dispatch

    # --------------------------------------------- replica messages, forwarded
    def _handle_register(
        self, state: HybridNodeState, request: ReplicaRegisterRequest
    ) -> None:
        """Subscribe + install for owned keys; chase relocated keys otherwise."""
        resident_keys: List[int] = []
        forward_groups: Dict[int, List[int]] = defaultdict(list)
        for key, is_resident in zip(
            request.keys, state.storage.contains_flags(request.keys)
        ):
            if is_resident:
                resident_keys.append(key)
            elif key in state.relocating_in:
                state.metrics.queued_ops += 1
                state.relocating_in[key].queued_ops.append(
                    QueuedOp(kind="register", key=key, request=request)
                )
            else:
                forward_groups[self._forward_destination(state, key)].append(key)
        if resident_keys:
            values = state.read_local_many(resident_keys)
            for key in resident_keys:
                state.subscribers[key].add(request.requester_node)
            install = ReplicaInstall(
                keys=tuple(resident_keys),
                values=values,
                responder_node=state.node_id,
            )
            size = message_size(len(resident_keys), values.size)
            self.network.send(state.node_id, request.reply_to, install, size)
        for destination, keys in forward_groups.items():
            state.metrics.forwarded_ops += 1
            forwarded = ReplicaRegisterRequest(
                keys=tuple(keys),
                requester_node=request.requester_node,
                reply_to=request.reply_to,
            )
            self.send_to_server(
                state.node_id, destination, forwarded, message_size(len(keys), 0)
            )

    def _handle_flush(self, state: HybridNodeState, flush: ReplicaSyncFlush) -> None:
        """Apply flushed replica updates to owned keys; chase relocated keys."""
        resident_keys: List[int] = []
        resident_rows: List[int] = []
        forward_groups: Dict[int, List[int]] = defaultdict(list)
        for index, (key, is_resident) in enumerate(
            zip(flush.keys, state.storage.contains_flags(flush.keys))
        ):
            if is_resident:
                resident_keys.append(key)
                resident_rows.append(index)
            elif key in state.relocating_in:
                state.metrics.queued_ops += 1
                state.relocating_in[key].queued_ops.append(
                    QueuedOp(kind="flush", key=key, request=flush)
                )
            else:
                forward_groups[self._forward_destination(state, key)].append(key)
        if resident_keys:
            # Raw write: the flush's broadcast step must exclude the source
            # node (it already applied these updates to its own replica).
            state.write_local_raw(resident_keys, flush.updates[resident_rows])
            for key, row in zip(resident_keys, resident_rows):
                self.enqueue_broadcast(
                    state, key, flush.updates[row], exclude=flush.source_node
                )
        for destination, keys in forward_groups.items():
            state.metrics.forwarded_ops += 1
            rows = [flush.keys.index(key) for key in keys]
            forwarded = ReplicaSyncFlush(
                keys=tuple(keys),
                updates=flush.updates[rows],
                source_node=flush.source_node,
            )
            self.send_to_server(
                state.node_id,
                destination,
                forwarded,
                message_size(len(keys), len(rows) * self.ps_config.value_length),
            )
        if self.ps_config.replica_sync_trigger == "clock" and resident_keys:
            # Same convergence guarantee as the replica PS in clock mode.
            self.synchronize_node(state)

    # ----------------------------------------------- subscriber handoff (§3.2)
    def _build_transfer(
        self,
        state: HybridNodeState,
        transfer_keys: List[int],
        instruction: RelocateInstruction,
    ) -> RelocationTransfer:
        """Hand subscriber sets over with the values (broadcast duty moves)."""
        self._drain_broadcasts_for(state, transfer_keys)
        subscribers = tuple(
            tuple(sorted(state.subscribers.pop(key, ()))) for key in transfer_keys
        )
        transfer = super()._build_transfer(state, transfer_keys, instruction)
        return dataclass_replace(transfer, subscribers=subscribers)

    def _drain_broadcasts_for(
        self, state: HybridNodeState, keys: Sequence[int]
    ) -> None:
        """Send pending deltas for ``keys`` now — their buffers cannot wait for
        the sync timer, because broadcast duty transfers with the key."""
        keyset = set(keys)
        metrics = state.metrics
        for subscriber, per_key in state.broadcast_buffer.items():
            send_keys = tuple(sorted(keyset & per_key.keys()))
            if not send_keys:
                continue
            deltas = gather_rows(
                {key: per_key.pop(key) for key in send_keys},
                send_keys,
                self.ps_config.value_length,
            )
            size = message_size(len(send_keys), deltas.size)
            metrics.replica_broadcast_messages += 1
            metrics.replica_sync_keys += len(send_keys)
            metrics.replica_sync_bytes += size
            broadcast = ReplicaDeltaBroadcast(
                keys=send_keys, deltas=deltas, responder_node=state.node_id
            )
            self.send_to_server(state.node_id, subscriber, broadcast, size)

    def _install_transferred(
        self,
        state: HybridNodeState,
        transfer: RelocationTransfer,
        index: int,
        key: int,
    ) -> None:
        """New owner takes over the subscriber set handed over by the old one.

        If the new owner itself replicated the key (possible only for
        rebalancer-driven relocations — application localizes of replicated
        keys complete without moving), the replica is absorbed: the
        transferred value is authoritative, and the node's unflushed replica
        updates will reach it through the node's own (now self-addressed)
        sync flush.
        """
        state.replicas.pop(key, None)
        if transfer.subscribers:
            handed_over = set(transfer.subscribers[index])
            handed_over.discard(state.node_id)
            if handed_over:
                state.subscribers[key].update(handed_over)

    def _install_recovered(self, state: HybridNodeState, install, index, key) -> None:
        """Recovery handoff: the new owner absorbs its own replica (if any) and
        takes over broadcast duties for the surviving replica holders.

        The recovery source's unflushed updates are part of the shipped
        snapshot (the rebalancer clears its pending buffer); every *other*
        holder keeps its pending updates and flushes them to the new owner
        through the rebalanced home routing, so no surviving local write is
        double-counted or dropped.  Only updates the failed owner had received
        but not yet broadcast are lost with it.
        """
        state.replicas.pop(key, None)
        if install.subscribers:
            survivors = set(install.subscribers[index])
            survivors.discard(state.node_id)
            if survivors:
                state.subscribers[key].update(survivors)

    # ----------------------------------------------------------- queue drains
    def _drain_one(self, state: HybridNodeState, key: int, queued: QueuedOp) -> None:
        if queued.kind == "register":
            request = queued.request
            self._handle_register(
                state,
                ReplicaRegisterRequest(
                    keys=(key,),
                    requester_node=request.requester_node,
                    reply_to=request.reply_to,
                ),
            )
        elif queued.kind == "flush":
            flush = queued.request
            row = flush.keys.index(key)
            self._handle_flush(
                state,
                ReplicaSyncFlush(
                    keys=(key,),
                    updates=flush.updates[row].reshape(1, -1),
                    source_node=flush.source_node,
                ),
            )
        else:
            super()._drain_one(state, key, queued)

    # --------------------------------------------------------------- inspection
    def key_management(self, key: int) -> str:
        """Which technique currently manages ``key``: ``"replication"`` if any
        node holds (or is installing) a replica, ``"relocation"`` otherwise."""
        if self.replica_holders(key):
            return "replication"
        for state in self.states:
            if key in state.installing:  # type: ignore[attr-defined]
                return "replication"
        return "relocation"

    def key_guarantees(self, key: int) -> Dict[str, bool]:
        """Table-1 consistency classification of ``key`` (see §3.4)."""
        return self.management_policy.key_guarantees(key)
