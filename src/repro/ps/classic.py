"""Classic parameter server (PS-Lite style) with static parameter allocation.

Parameters are allocated to servers once, via a static partitioning of the key
space, and never move (§2.1) — routing is delegated to
:class:`~repro.ps.policy.StaticPolicy`.  Every pull/push for a key is answered
by that key's server.  Two local-access modes are provided:

* ``shared_memory_local_access=False`` — the PS-Lite behaviour: even
  parameters stored on the *same* node are accessed through inter-process
  communication with the local server thread, which the paper measured to be
  71-91x slower than shared memory (§4.2),
* ``shared_memory_local_access=True`` — the "Classic PS with fast local
  access" variant used in the paper's ablation (§4.6): local parameters are
  read/written directly through shared memory, but allocation remains static.

``localize`` raises :class:`~repro.errors.UnsupportedOperationError`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.ps.base import (
    FusedLocalSteps,
    NodeState,
    ParameterServer,
    WorkerClient,
    select_rows,
)
from repro.ps.futures import OperationHandle
from repro.ps.messages import PullRequest, PushRequest
from repro.ps.policy import ROUTE_LOCAL, StaticPolicy


class ClassicWorkerClient(WorkerClient):
    """Client for the classic PS: routes every key to its static server."""

    def fused_local_steps(self):
        """Fused local steps for the shared-memory classic variant.

        Static allocation keeps a key's residency constant, and the policy's
        local route has no side effects, so a resident key is exactly a key
        this client may fuse.  The PS-Lite (inter-process) variant must keep
        paying the server round trip and never fuses.
        """
        if self._fusion_safe() and type(self.policy) is StaticPolicy:
            return FusedLocalSteps(self)
        return None

    # ------------------------------------------------------------------- pull
    def _issue_pull(self, handle: OperationHandle, keys: Tuple[int, ...]) -> None:
        state = self.state
        metrics = state.metrics
        if len(keys) == 1:
            # Single-key lane: no grouping containers for the per-entry
            # training pattern.
            key = keys[0]
            route = self.policy.route(state, key)
            if route.kind == ROUTE_LOCAL:
                metrics.key_reads_local += 1
                metrics.pulls_local += 1
                if self.ps.ps_config.shared_memory_local_access:
                    self._local_pull_shared_memory(handle, [key])
                else:
                    self._send_chunk(handle, self.node_id, [key], True, None, None)
            else:
                metrics.key_reads_remote += 1
                metrics.pulls_remote += 1
                self._send_chunk(handle, route.destination, [key], True, None, None)
            return
        local_keys, remote_groups = self._split_by_owner(keys)
        if local_keys:
            metrics.key_reads_local += len(local_keys)
            if self.ps.ps_config.shared_memory_local_access:
                self._local_pull_shared_memory(handle, local_keys)
            else:
                # PS-Lite style: even local keys go through the server thread.
                self._send_remote(handle, self.node_id, local_keys, pull=True)
        for owner, owner_keys in remote_groups.items():
            metrics.key_reads_remote += len(owner_keys)
            self._send_remote(handle, owner, owner_keys, pull=True)
        if remote_groups:
            metrics.pulls_remote += 1
        else:
            metrics.pulls_local += 1

    # ------------------------------------------------------------------- push
    def _issue_push(
        self,
        handle: OperationHandle,
        keys: Tuple[int, ...],
        updates: np.ndarray,
        needs_ack: bool,
    ) -> None:
        state = self.state
        metrics = state.metrics
        if len(keys) == 1:
            key = keys[0]
            route = self.policy.route(state, key, write=True)
            if route.kind == ROUTE_LOCAL:
                metrics.key_writes_local += 1
                metrics.pushes_local += 1
                if self.ps.ps_config.shared_memory_local_access:
                    self._local_push_shared_memory(handle, [key], updates, {key: 0})
                else:
                    self._send_chunk(
                        handle, self.node_id, [key], False, updates, {key: 0}
                    )
            else:
                metrics.key_writes_remote += 1
                metrics.pushes_remote += 1
                self._send_chunk(
                    handle, route.destination, [key], False, updates, {key: 0}
                )
            return
        local_keys, remote_groups = self._split_by_owner(keys)
        key_to_row = {key: index for index, key in enumerate(keys)}
        if local_keys:
            metrics.key_writes_local += len(local_keys)
            if self.ps.ps_config.shared_memory_local_access:
                self._local_push_shared_memory(handle, local_keys, updates, key_to_row)
            else:
                self._send_remote(
                    handle, self.node_id, local_keys, pull=False,
                    updates=updates, key_to_row=key_to_row,
                )
        for owner, owner_keys in remote_groups.items():
            metrics.key_writes_remote += len(owner_keys)
            self._send_remote(
                handle, owner, owner_keys, pull=False,
                updates=updates, key_to_row=key_to_row,
            )
        if remote_groups:
            metrics.pushes_remote += 1
        else:
            metrics.pushes_local += 1

    # -------------------------------------------------------------- local fast path
    def _local_pull_shared_memory(
        self, handle: OperationHandle, local_keys: List[int]
    ) -> None:
        cost = self.ps.cluster.cost_model
        delay = cost.local_access_time(shared_memory=True) * len(local_keys)
        state = self.state

        def action() -> None:
            handle.complete_keys(local_keys, state.read_local_many(local_keys))

        self._complete_after(delay, action)

    def _local_push_shared_memory(
        self,
        handle: OperationHandle,
        local_keys: List[int],
        updates: np.ndarray,
        key_to_row: Dict[int, int],
    ) -> None:
        cost = self.ps.cluster.cost_model
        delay = cost.local_access_time(shared_memory=True) * len(local_keys)
        state = self.state
        local_rows = [key_to_row[key] for key in local_keys]

        def action() -> None:
            state.write_local_many(local_keys, select_rows(updates, local_rows))
            handle.complete_keys(local_keys)

        self._complete_after(delay, action)

    # --------------------------------------------------------------- routing
    def _split_by_owner(
        self, keys: Tuple[int, ...]
    ) -> Tuple[List[int], Dict[int, List[int]]]:
        if len(keys) == 1:
            # Single-key fast lane (the per-entry training pattern).
            key = keys[0]
            route = self.policy.route(self.state, key)
            if route.kind == ROUTE_LOCAL:
                return [key], {}
            return [], {route.destination: [key]}
        routes = self.policy.route_many(self.state, keys)
        local_keys: List[int] = []
        remote_groups: Dict[int, List[int]] = defaultdict(list)
        for key, route in zip(keys, routes):
            if route.kind == ROUTE_LOCAL:
                local_keys.append(key)
            else:
                remote_groups[route.destination].append(key)
        return local_keys, dict(remote_groups)

    # Request sending is inherited from WorkerClient._send_remote (chunked
    # pull/push requests with op ids registered for the van).


class ClassicPS(ParameterServer):
    """PS-Lite-style parameter server with static allocation."""

    client_class = ClassicWorkerClient
    policy_class = StaticPolicy
    name = "classic"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)

    def _server_dispatch(self, state: NodeState):
        cost = self.cluster.cost_model.server_processing_time
        return {
            PullRequest: (cost, self._server_pull),
            PushRequest: (cost, self._server_push),
        }


class ClassicSharedMemoryPS(ClassicPS):
    """"Classic PS with fast local access": static allocation + shared memory.

    This is the middle variant of the paper's ablation study (§4.6): it keeps
    the static allocation of the classic PS but accesses local parameters via
    shared memory, isolating the benefit of fast local access from the benefit
    of dynamic parameter allocation.
    """

    name = "classic+sharedmem"

    def __init__(self, cluster, ps_config=None, **kwargs) -> None:
        from dataclasses import replace as dataclass_replace

        from repro.config import ParameterServerConfig

        ps_config = ps_config or ParameterServerConfig()
        ps_config = dataclass_replace(ps_config, shared_memory_local_access=True)
        super().__init__(cluster, ps_config, **kwargs)


class ClassicIPCPS(ClassicPS):
    """Classic PS with PS-Lite's inter-process local access (no shared memory)."""

    name = "classic-ps-lite"

    def __init__(self, cluster, ps_config=None, **kwargs) -> None:
        from dataclasses import replace as dataclass_replace

        from repro.config import ParameterServerConfig

        ps_config = ps_config or ParameterServerConfig()
        ps_config = dataclass_replace(ps_config, shared_memory_local_access=False)
        super().__init__(cluster, ps_config, **kwargs)
