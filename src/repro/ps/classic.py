"""Classic parameter server (PS-Lite style) with static parameter allocation.

Parameters are allocated to servers once, via a static partitioning of the key
space, and never move (§2.1).  Every pull/push for a key is answered by that
key's server.  Two local-access modes are provided:

* ``shared_memory_local_access=False`` — the PS-Lite behaviour: even
  parameters stored on the *same* node are accessed through inter-process
  communication with the local server thread, which the paper measured to be
  71-91x slower than shared memory (§4.2),
* ``shared_memory_local_access=True`` — the "Classic PS with fast local
  access" variant used in the paper's ablation (§4.6): local parameters are
  read/written directly through shared memory, but allocation remains static.

``localize`` raises :class:`~repro.errors.UnsupportedOperationError`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generator, List, Tuple

import numpy as np

from repro.config import message_size
from repro.errors import ParameterServerError, StorageError
from repro.ps.base import (
    NodeState,
    ParameterServer,
    WorkerClient,
    first_missing,
    select_rows,
)
from repro.ps.futures import OperationHandle
from repro.ps.messages import PullRequest, PullResponse, PushAck, PushRequest


class ClassicWorkerClient(WorkerClient):
    """Client for the classic PS: routes every key to its static server."""

    # ------------------------------------------------------------------- pull
    def _issue_pull(self, handle: OperationHandle, keys: Tuple[int, ...]) -> None:
        local_keys, remote_groups = self._split_by_owner(keys)
        state = self.state
        metrics = state.metrics
        if local_keys:
            metrics.key_reads_local += len(local_keys)
            if self.ps.ps_config.shared_memory_local_access:
                self._local_pull_shared_memory(handle, local_keys)
            else:
                # PS-Lite style: even local keys go through the server thread.
                self._send_remote(handle, self.node_id, local_keys, pull=True)
        for owner, owner_keys in remote_groups.items():
            metrics.key_reads_remote += len(owner_keys)
            self._send_remote(handle, owner, owner_keys, pull=True)
        if remote_groups:
            metrics.pulls_remote += 1
        else:
            metrics.pulls_local += 1

    # ------------------------------------------------------------------- push
    def _issue_push(
        self,
        handle: OperationHandle,
        keys: Tuple[int, ...],
        updates: np.ndarray,
        needs_ack: bool,
    ) -> None:
        local_keys, remote_groups = self._split_by_owner(keys)
        state = self.state
        metrics = state.metrics
        key_to_row = {key: index for index, key in enumerate(keys)}
        if local_keys:
            metrics.key_writes_local += len(local_keys)
            if self.ps.ps_config.shared_memory_local_access:
                self._local_push_shared_memory(handle, local_keys, updates, key_to_row)
            else:
                self._send_remote(
                    handle, self.node_id, local_keys, pull=False,
                    updates=updates, key_to_row=key_to_row,
                )
        for owner, owner_keys in remote_groups.items():
            metrics.key_writes_remote += len(owner_keys)
            self._send_remote(
                handle, owner, owner_keys, pull=False,
                updates=updates, key_to_row=key_to_row,
            )
        if remote_groups:
            metrics.pushes_remote += 1
        else:
            metrics.pushes_local += 1

    # -------------------------------------------------------------- local fast path
    def _local_pull_shared_memory(
        self, handle: OperationHandle, local_keys: List[int]
    ) -> None:
        cost = self.ps.cluster.cost_model
        delay = cost.local_access_time(shared_memory=True) * len(local_keys)
        state = self.state

        def action() -> None:
            handle.complete_keys(local_keys, state.read_local_many(local_keys))

        self._complete_after(delay, action)

    def _local_push_shared_memory(
        self,
        handle: OperationHandle,
        local_keys: List[int],
        updates: np.ndarray,
        key_to_row: Dict[int, int],
    ) -> None:
        cost = self.ps.cluster.cost_model
        delay = cost.local_access_time(shared_memory=True) * len(local_keys)
        state = self.state
        local_rows = [key_to_row[key] for key in local_keys]

        def action() -> None:
            state.write_local_many(local_keys, select_rows(updates, local_rows))
            handle.complete_keys(local_keys)

        self._complete_after(delay, action)

    # --------------------------------------------------------------- messaging
    def _split_by_owner(
        self, keys: Tuple[int, ...]
    ) -> Tuple[List[int], Dict[int, List[int]]]:
        owners = self.ps.partitioner.nodes_of_list(keys)
        node_id = self.node_id
        local_keys: List[int] = []
        remote_groups: Dict[int, List[int]] = defaultdict(list)
        for key, owner in zip(keys, owners):
            if owner == node_id:
                local_keys.append(key)
            else:
                remote_groups[owner].append(key)
        return local_keys, dict(remote_groups)

    # Request sending is inherited from WorkerClient._send_remote (chunked
    # pull/push requests with op ids registered for the van).


class ClassicPS(ParameterServer):
    """PS-Lite-style parameter server with static allocation."""

    client_class = ClassicWorkerClient
    name = "classic"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)

    def _server_loop(self, state: NodeState) -> Generator:
        cost = self.cluster.cost_model
        while True:
            message = yield state.node.server_inbox.get()
            yield cost.server_processing_time
            if isinstance(message, PullRequest):
                self._handle_pull(state, message)
            elif isinstance(message, PushRequest):
                self._handle_push(state, message)
            else:
                raise ParameterServerError(
                    f"classic PS server received unexpected message {message!r}"
                )

    def _handle_pull(self, state: NodeState, request: PullRequest) -> None:
        try:
            values = state.read_local_many(request.keys)
        except StorageError:
            bad = first_missing(state, request.keys)
            if bad is None:
                raise
            raise ParameterServerError(
                f"classic PS node {state.node_id} asked for key {bad} it does not own"
            ) from None
        response = PullResponse(
            op_id=request.op_id,
            keys=request.keys,
            values=values,
            responder_node=state.node_id,
        )
        size = message_size(len(request.keys), len(request.keys) * self.ps_config.value_length)
        self.network.send(state.node_id, request.reply_to, response, size)

    def _handle_push(self, state: NodeState, request: PushRequest) -> None:
        try:
            state.write_local_many(request.keys, request.updates)
        except StorageError:
            bad = first_missing(state, request.keys)
            if bad is None:
                raise
            raise ParameterServerError(
                f"classic PS node {state.node_id} asked to update key {bad} it does not own"
            ) from None
        if request.needs_ack:
            ack = PushAck(
                op_id=request.op_id, keys=request.keys, responder_node=state.node_id
            )
            self.network.send(
                state.node_id, request.reply_to, ack, message_size(len(request.keys), 0)
            )


class ClassicSharedMemoryPS(ClassicPS):
    """"Classic PS with fast local access": static allocation + shared memory.

    This is the middle variant of the paper's ablation study (§4.6): it keeps
    the static allocation of the classic PS but accesses local parameters via
    shared memory, isolating the benefit of fast local access from the benefit
    of dynamic parameter allocation.
    """

    name = "classic+sharedmem"

    def __init__(self, cluster, ps_config=None, **kwargs) -> None:
        from dataclasses import replace as dataclass_replace

        from repro.config import ParameterServerConfig

        ps_config = ps_config or ParameterServerConfig()
        ps_config = dataclass_replace(ps_config, shared_memory_local_access=True)
        super().__init__(cluster, ps_config, **kwargs)


class ClassicIPCPS(ClassicPS):
    """Classic PS with PS-Lite's inter-process local access (no shared memory)."""

    name = "classic-ps-lite"

    def __init__(self, cluster, ps_config=None, **kwargs) -> None:
        from dataclasses import replace as dataclass_replace

        from repro.config import ParameterServerConfig

        ps_config = ps_config or ParameterServerConfig()
        ps_config = dataclass_replace(ps_config, shared_memory_local_access=False)
        super().__init__(cluster, ps_config, **kwargs)
