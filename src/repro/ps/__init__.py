"""Parameter-server implementations.

Three architectures from the paper, all running on the same simulated cluster
and exposing the same client API (Table 2):

* :class:`~repro.ps.classic.ClassicPS` (+ :class:`ClassicIPCPS` /
  :class:`ClassicSharedMemoryPS`) — static allocation, PS-Lite style,
* :class:`~repro.ps.stale.StalePS` — bounded staleness with replicas,
  Petuum style (SSP and SSPPush synchronization),
* :class:`~repro.ps.lapse.LapsePS` — dynamic parameter allocation (the
  paper's contribution): ``localize``, relocation protocol, home-node location
  management, optional location caches.
"""

from repro.ps.base import NodeState, ParameterServer, WorkerClient
from repro.ps.classic import ClassicIPCPS, ClassicPS, ClassicSharedMemoryPS
from repro.ps.futures import OperationHandle
from repro.ps.lapse import LapseNodeState, LapsePS, LapseWorkerClient
from repro.ps.metrics import PSMetrics, RunningStat
from repro.ps.partition import (
    ExplicitPartitioner,
    HashPartitioner,
    KeyPartitioner,
    RangePartitioner,
    make_partitioner,
    random_key_mapping,
)
from repro.ps.stale import StalePS, StaleWorkerClient
from repro.ps.storage import DenseStorage, LatchTable, SparseStorage, make_storage

__all__ = [
    "ClassicIPCPS",
    "ClassicPS",
    "ClassicSharedMemoryPS",
    "DenseStorage",
    "ExplicitPartitioner",
    "HashPartitioner",
    "KeyPartitioner",
    "LapseNodeState",
    "LapsePS",
    "LapseWorkerClient",
    "LatchTable",
    "NodeState",
    "OperationHandle",
    "ParameterServer",
    "PSMetrics",
    "RangePartitioner",
    "RunningStat",
    "SparseStorage",
    "StalePS",
    "StaleWorkerClient",
    "WorkerClient",
    "make_partitioner",
    "make_storage",
    "random_key_mapping",
]
