"""Parameter-server implementations.

Three architectures from the paper, all running on the same simulated cluster
and exposing the same client API (Table 2):

* :class:`~repro.ps.classic.ClassicPS` (+ :class:`ClassicIPCPS` /
  :class:`ClassicSharedMemoryPS`) — static allocation, PS-Lite style,
* :class:`~repro.ps.stale.StalePS` — bounded staleness with replicas,
  Petuum style (SSP and SSPPush synchronization),
* :class:`~repro.ps.lapse.LapsePS` — dynamic parameter allocation (the
  paper's contribution): ``localize``, relocation protocol, home-node location
  management, optional location caches.

Two further architectures go beyond the paper's systems:

* :class:`~repro.ps.replica.ReplicaPS` — *replication*-based parameter
  management (the direction the paper's related work contrasts DPA with):
  eager replication of hot keys, local conflict-free writes, and a
  time- or clock-triggered synchronization loop,
* :class:`~repro.ps.hybrid.HybridPS` — the per-key *combination* the paper's
  outlook sketches (and NuPS formalizes): replicate hot keys, relocate the
  long tail.

All of them run on the same generic server runtime: a dispatch-table message
loop in :class:`~repro.ps.base.ParameterServer` plus a pluggable
:class:`~repro.ps.policy.ManagementPolicy` (see :mod:`repro.ps.policy`).
"""

from repro.ps.base import NodeState, ParameterServer, QueuedOp, WorkerClient
from repro.ps.classic import ClassicIPCPS, ClassicPS, ClassicSharedMemoryPS
from repro.ps.futures import OperationHandle
from repro.ps.hybrid import HybridNodeState, HybridPS, HybridWorkerClient
from repro.ps.lapse import LapseNodeState, LapsePS, LapseWorkerClient
from repro.ps.metrics import PSMetrics, RunningStat
from repro.ps.policy import (
    EagerReplicationPolicy,
    HybridManagementPolicy,
    ManagementPolicy,
    RelocationPolicy,
    Route,
    StaleReplicaPolicy,
    StaticPolicy,
    consistency_classification,
)
from repro.ps.partition import (
    AccessCountHotKeyPolicy,
    ElasticPartitioner,
    ExplicitHotKeyPolicy,
    ExplicitPartitioner,
    HashPartitioner,
    HotKeyPolicy,
    KeyPartitioner,
    NoReplicationPolicy,
    RangePartitioner,
    make_hot_key_policy,
    make_partitioner,
    random_key_mapping,
)
from repro.ps.replica import ReplicaNodeState, ReplicaPS, ReplicaWorkerClient
from repro.ps.stale import StalePS, StaleWorkerClient
from repro.ps.storage import DenseStorage, LatchTable, SparseStorage, make_storage

__all__ = [
    "AccessCountHotKeyPolicy",
    "ClassicIPCPS",
    "ClassicPS",
    "ClassicSharedMemoryPS",
    "DenseStorage",
    "EagerReplicationPolicy",
    "ElasticPartitioner",
    "ExplicitHotKeyPolicy",
    "ExplicitPartitioner",
    "HotKeyPolicy",
    "HashPartitioner",
    "HybridManagementPolicy",
    "HybridNodeState",
    "HybridPS",
    "HybridWorkerClient",
    "KeyPartitioner",
    "LapseNodeState",
    "LapsePS",
    "LapseWorkerClient",
    "LatchTable",
    "ManagementPolicy",
    "NoReplicationPolicy",
    "NodeState",
    "OperationHandle",
    "ParameterServer",
    "PSMetrics",
    "QueuedOp",
    "RangePartitioner",
    "RelocationPolicy",
    "ReplicaNodeState",
    "ReplicaPS",
    "ReplicaWorkerClient",
    "Route",
    "RunningStat",
    "SparseStorage",
    "StalePS",
    "StaleReplicaPolicy",
    "StaleWorkerClient",
    "StaticPolicy",
    "WorkerClient",
    "consistency_classification",
    "make_hot_key_policy",
    "make_partitioner",
    "make_storage",
    "random_key_mapping",
]
