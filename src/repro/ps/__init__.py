"""Parameter-server implementations.

Three architectures from the paper, all running on the same simulated cluster
and exposing the same client API (Table 2):

* :class:`~repro.ps.classic.ClassicPS` (+ :class:`ClassicIPCPS` /
  :class:`ClassicSharedMemoryPS`) — static allocation, PS-Lite style,
* :class:`~repro.ps.stale.StalePS` — bounded staleness with replicas,
  Petuum style (SSP and SSPPush synchronization),
* :class:`~repro.ps.lapse.LapsePS` — dynamic parameter allocation (the
  paper's contribution): ``localize``, relocation protocol, home-node location
  management, optional location caches.

A fourth architecture goes beyond the paper's systems:

* :class:`~repro.ps.replica.ReplicaPS` — *replication*-based parameter
  management (the direction the paper's related work contrasts DPA with):
  eager replication of hot keys, local conflict-free writes, and a
  time- or clock-triggered synchronization loop.
"""

from repro.ps.base import NodeState, ParameterServer, WorkerClient
from repro.ps.classic import ClassicIPCPS, ClassicPS, ClassicSharedMemoryPS
from repro.ps.futures import OperationHandle
from repro.ps.lapse import LapseNodeState, LapsePS, LapseWorkerClient
from repro.ps.metrics import PSMetrics, RunningStat
from repro.ps.partition import (
    AccessCountHotKeyPolicy,
    ExplicitHotKeyPolicy,
    ExplicitPartitioner,
    HashPartitioner,
    HotKeyPolicy,
    KeyPartitioner,
    NoReplicationPolicy,
    RangePartitioner,
    make_hot_key_policy,
    make_partitioner,
    random_key_mapping,
)
from repro.ps.replica import ReplicaNodeState, ReplicaPS, ReplicaWorkerClient
from repro.ps.stale import StalePS, StaleWorkerClient
from repro.ps.storage import DenseStorage, LatchTable, SparseStorage, make_storage

__all__ = [
    "AccessCountHotKeyPolicy",
    "ClassicIPCPS",
    "ClassicPS",
    "ClassicSharedMemoryPS",
    "DenseStorage",
    "ExplicitHotKeyPolicy",
    "ExplicitPartitioner",
    "HotKeyPolicy",
    "HashPartitioner",
    "KeyPartitioner",
    "LapseNodeState",
    "LapsePS",
    "LapseWorkerClient",
    "LatchTable",
    "NoReplicationPolicy",
    "NodeState",
    "OperationHandle",
    "ParameterServer",
    "PSMetrics",
    "RangePartitioner",
    "ReplicaNodeState",
    "ReplicaPS",
    "ReplicaWorkerClient",
    "RunningStat",
    "SparseStorage",
    "StalePS",
    "StaleWorkerClient",
    "WorkerClient",
    "make_hot_key_policy",
    "make_partitioner",
    "make_storage",
    "random_key_mapping",
]
