"""Replication-based parameter server (the alternative the paper contrasts DPA with).

Where Lapse *relocates* a parameter so that exactly one node holds it at a
time, a replication-based PS *copies* hot parameters to every node that
accesses them and keeps the copies loosely synchronized.  The paper's related
work discusses this family (and the NuPS follow-up formalizes it); this module
implements a representative member so that relocation and replication can be
compared head-to-head on the same simulated cluster:

* **Eager replication.** The first access that a node's hot-key policy
  (:mod:`repro.ps.partition`) classifies as hot triggers a subscription at the
  key's owner: the owner records the subscriber and answers with a value
  snapshot (:class:`~repro.ps.messages.ReplicaInstall`).  From then on the
  node reads the key through shared memory, exactly like Lapse reads a
  relocated key.
* **Local writes with conflict-free aggregation.** Writes to a replicated key
  are applied to the local replica immediately and accumulated in a per-node
  buffer.  Because PS updates are cumulative (additive), buffered updates from
  different nodes commute: the owner simply sums whatever arrives — no locks,
  no conflicts, no lost updates.
* **Configurable synchronization loop.** Accumulated updates propagate either
  on a per-node timer (``replica_sync_trigger="time"``, period
  ``replica_sync_interval``) or whenever a worker advances its clock
  (``"clock"``).  A synchronization round flushes local updates to owners
  (:class:`~repro.ps.messages.ReplicaSyncFlush`) and broadcasts aggregated
  *other-node* deltas from owners to subscribers
  (:class:`~repro.ps.messages.ReplicaDeltaBroadcast`); a subscriber never
  receives its own updates back, so nothing is double-counted.

Per-key routing (owned / replicated / installing / hot / cold) is implemented
by :class:`~repro.ps.policy.EagerReplicationPolicy`; the server loop is the
generic dispatch loop of :class:`~repro.ps.base.ParameterServer`.

The price of replication is consistency (§3.4 of the paper makes the same
point for location caches and stale replicas): between synchronization rounds
a replica read can miss other nodes' committed writes, so per-key sequential
consistency is lost.  What remains is eventual consistency — once updates stop
and a synchronization round drains, all copies converge to the owner value —
plus the local session guarantees (a node always sees its own writes).  The
consistency test-suite demonstrates both directions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

import numpy as np

from repro.config import message_size
from repro.errors import ParameterServerError
from repro.ps.base import (
    NodeState,
    ParameterServer,
    QueuedOp,
    WorkerClient,
    select_rows,
    van_address,
)
from repro.ps.futures import OperationHandle
from repro.ps.messages import (
    PullRequest,
    PushRequest,
    ReplicaDeltaBroadcast,
    ReplicaInstall,
    ReplicaRegisterRequest,
    ReplicaSyncFlush,
)
from repro.ps.partition import HotKeyPolicy
from repro.ps.policy import (
    ROUTE_LOCAL,
    ROUTE_QUEUE,
    ROUTE_REPLICA,
    ROUTE_SUBSCRIBE,
    EagerReplicationPolicy,
    InstallingKey,
)
from repro.ps.storage import gather_rows
from repro.simnet.events import Event

__all__ = [
    "InstallingKey",
    "ReplicaNodeState",
    "ReplicaPS",
    "ReplicaWorkerClient",
]


class ReplicaNodeState(NodeState):
    """Per-node state of the replica PS: replica store, buffers, subscriptions.

    The tables are installed by
    :meth:`repro.ps.policy.EagerReplicationPolicy.attach`; the annotations
    below document them.
    """

    replicas: Dict[int, np.ndarray]
    pending_updates: Dict[int, np.ndarray]
    installing: Dict[int, InstallingKey]
    subscribers: Dict[int, Set[int]]
    broadcast_buffer: Dict[int, Dict[int, np.ndarray]]
    policy: HotKeyPolicy
    sync_timer_pending: bool

    @property
    def sync_dirty(self) -> bool:
        """Whether this node has unsynchronized replica state."""
        if self.pending_updates:
            return True
        return any(deltas for deltas in self.broadcast_buffer.values())


class ReplicaWorkerClient(WorkerClient):
    """Client of the replica PS: replica reads/writes, owner routing otherwise."""

    state: ReplicaNodeState

    # ------------------------------------------------------------------- pull
    def _issue_pull(self, handle: OperationHandle, keys: Tuple[int, ...]) -> None:
        state = self.state
        metrics = state.metrics
        local_keys: List[int] = []
        replica_keys: List[int] = []
        register_groups: Dict[int, List[int]] = defaultdict(list)
        remote_groups: Dict[int, List[int]] = defaultdict(list)
        for key, route in zip(keys, self.policy.route_many(state, keys)):
            if route.kind == ROUTE_LOCAL:
                local_keys.append(key)
            elif route.kind == ROUTE_REPLICA:
                replica_keys.append(key)
            elif route.kind == ROUTE_QUEUE:
                # Answered locally once the install arrives (like Lapse's
                # queued operations during a relocation).
                metrics.queued_ops += 1
                metrics.key_reads_local += 1
                metrics.replica_reads += 1
                state.installing[key].ops.append(
                    QueuedOp(kind="local_pull", key=key, handle=handle)
                )
            elif route.kind == ROUTE_SUBSCRIBE:
                state.installing[key].ops.append(
                    QueuedOp(kind="local_pull", key=key, handle=handle)
                )
                register_groups[route.destination].append(key)
            else:
                remote_groups[route.destination].append(key)
        if local_keys:
            metrics.key_reads_local += len(local_keys)
            self._local_pull(handle, local_keys, from_replica=False)
        if replica_keys:
            metrics.key_reads_local += len(replica_keys)
            metrics.replica_reads += len(replica_keys)
            self._local_pull(handle, replica_keys, from_replica=True)
        for owner, owner_keys in register_groups.items():
            metrics.key_reads_remote += len(owner_keys)
            self._send_register(owner, owner_keys)
        for owner, owner_keys in remote_groups.items():
            metrics.key_reads_remote += len(owner_keys)
            self._send_remote(handle, owner, owner_keys, pull=True)
        if register_groups or remote_groups:
            metrics.pulls_remote += 1
        else:
            metrics.pulls_local += 1

    # ------------------------------------------------------------------- push
    def _issue_push(
        self,
        handle: OperationHandle,
        keys: Tuple[int, ...],
        updates: np.ndarray,
        needs_ack: bool,
    ) -> None:
        state = self.state
        metrics = state.metrics
        key_to_row = {key: index for index, key in enumerate(keys)}
        local_keys: List[int] = []
        replica_keys: List[int] = []
        remote_groups: Dict[int, List[int]] = defaultdict(list)
        for key, route in zip(keys, self.policy.route_many(state, keys, write=True)):
            if route.kind == ROUTE_LOCAL:
                local_keys.append(key)
            elif route.kind == ROUTE_REPLICA:
                replica_keys.append(key)
            elif route.kind == ROUTE_QUEUE:
                metrics.queued_ops += 1
                metrics.key_writes_local += 1
                metrics.replica_writes += 1
                state.installing[key].ops.append(
                    QueuedOp(
                        kind="local_push",
                        key=key,
                        handle=handle,
                        update=updates[key_to_row[key]].copy(),
                    )
                )
            else:
                # Replication is established on reads; a write to a key this
                # node does not replicate goes straight to the owner (the
                # policy already counted it toward the hot-key statistics).
                remote_groups[route.destination].append(key)
        if local_keys or replica_keys:
            metrics.key_writes_local += len(local_keys) + len(replica_keys)
            metrics.replica_writes += len(replica_keys)
            self._local_push(handle, local_keys, replica_keys, updates, key_to_row)
        for owner, owner_keys in remote_groups.items():
            metrics.key_writes_remote += len(owner_keys)
            self._send_remote(
                handle, owner, owner_keys, pull=False, updates=updates, key_to_row=key_to_row
            )
        if remote_groups:
            metrics.pushes_remote += 1
        else:
            metrics.pushes_local += 1

    # ------------------------------------------------------------ local access
    def _local_pull(
        self, handle: OperationHandle, keys: List[int], from_replica: bool
    ) -> None:
        cost = self.ps.cluster.cost_model
        delay = cost.local_access_time(shared_memory=True) * len(keys)
        state = self.state

        def action() -> None:
            if from_replica:
                state.latches.acquire_many(keys)
                replicas = state.replicas
                values = np.empty((len(keys), self.value_length), dtype=np.float64)
                for index, key in enumerate(keys):
                    values[index] = replicas[key]
            else:
                values = state.read_local_many(keys)
            handle.complete_keys(keys, values)

        self._complete_after(delay, action)

    def _local_push(
        self,
        handle: OperationHandle,
        owned_keys: List[int],
        replica_keys: List[int],
        updates: np.ndarray,
        key_to_row: Dict[int, int],
    ) -> None:
        cost = self.ps.cluster.cost_model
        delay = cost.local_access_time(shared_memory=True) * (
            len(owned_keys) + len(replica_keys)
        )
        state = self.state
        ps: "ReplicaPS" = self.ps  # type: ignore[assignment]

        owned_rows = [key_to_row[key] for key in owned_keys]

        def action() -> None:
            if owned_keys:
                state.write_local_many(owned_keys, select_rows(updates, owned_rows))
                for key in owned_keys:
                    ps.enqueue_broadcast(state, key, updates[key_to_row[key]])
            for key in replica_keys:
                update = updates[key_to_row[key]]
                ps.apply_replica_write(state, key, update)
            handle.complete_keys(owned_keys + replica_keys)

        self._complete_after(delay, action)

    # --------------------------------------------------------------- messaging
    def _send_register(self, owner: int, keys: List[int]) -> None:
        ps: "ReplicaPS" = self.ps  # type: ignore[assignment]
        request = ReplicaRegisterRequest(
            keys=tuple(keys),
            requester_node=self.node_id,
            reply_to=van_address(self.node_id),
        )
        ps.send_to_server(self.node_id, owner, request, message_size(len(keys), 0))

    # _send_remote is inherited from WorkerClient: chunked pull/push requests
    # routed to the owner's server, with op ids registered for the van.

    # --------------------------------------------------------- opportunistic
    def pull_if_local(self, key: int) -> Optional[np.ndarray]:
        """Return ``key``'s value if owned or replicated locally, else ``None``.

        A miss still counts toward the hot-key policy and, once the key is
        hot, starts a background replica install so that later opportunistic
        reads (e.g. re-sampled negatives, Appendix A) hit locally.
        """
        key = int(self._check_keys([key])[0])
        state = self.state
        if state.storage.contains(key):
            state.metrics.key_reads_local += 1
            state.metrics.pulls_local += 1
            return state.read_local(key)
        if key in state.replicas:
            state.metrics.key_reads_local += 1
            state.metrics.pulls_local += 1
            state.metrics.replica_reads += 1
            state.latches.acquire(key)
            return state.replicas[key].copy()
        if key not in state.installing:
            route = self.policy.route(state, key)
            if route.kind == ROUTE_SUBSCRIBE:
                self._send_register(route.destination, [key])
        return None

    # ------------------------------------------------------------------ clock
    def clock(self) -> Generator:
        """Advance the worker clock; in ``"clock"`` mode, synchronize the node.

        Clock-triggered synchronization is non-blocking: the flush and the
        owners' subsequent broadcasts propagate asynchronously, so ``clock``
        bounds *when* updates start to propagate, not when they are visible.
        """
        self._clock += 1
        self.state.metrics.clock_advances += 1
        if self.ps.ps_config.replica_sync_trigger == "clock":
            self.policy.on_sync(self.state)
        return
        yield  # pragma: no cover - makes this function a generator


class ReplicaPS(ParameterServer):
    """Replication-based parameter server with eager hot-key replication."""

    client_class = ReplicaWorkerClient
    policy_class = EagerReplicationPolicy
    name = "replica"

    def _make_node_state(self, node) -> ReplicaNodeState:
        return ReplicaNodeState(self, node)

    # ---------------------------------------------------------- replica state
    def apply_replica_write(
        self, state: ReplicaNodeState, key: int, update: np.ndarray
    ) -> None:
        """Apply ``update`` to the local replica and buffer it for the owner."""
        state.latches.acquire(key)
        # Replica rows and pending buffers are owned by this node, so both
        # accumulate in place instead of allocating a new array per write.
        state.replicas[key] += update
        pending = state.pending_updates.get(key)
        if pending is None:
            state.pending_updates[key] = update.copy()
        else:
            pending += update
        self._mark_dirty(state)

    def enqueue_broadcast(
        self,
        state: ReplicaNodeState,
        key: int,
        update: np.ndarray,
        exclude: Optional[int] = None,
    ) -> None:
        """Owner side: buffer ``update`` for every subscriber except ``exclude``."""
        for subscriber in state.subscribers.get(key, ()):  # type: ignore[arg-type]
            if subscriber == exclude:
                continue
            per_key = state.broadcast_buffer[subscriber]
            delta = per_key.get(key)
            if delta is None:
                per_key[key] = update.copy()
            else:
                delta += update
        self._mark_dirty(state)

    # ------------------------------------------------------- synchronization
    def _mark_dirty(self, state: ReplicaNodeState) -> None:
        """Schedule a time-triggered synchronization round if one is due.

        The timer is demand-driven: it is armed only while the node holds
        unsynchronized state, so a quiescent cluster schedules no events and
        the simulation terminates.
        """
        if self.ps_config.replica_sync_trigger != "time":
            return
        if state.sync_timer_pending or not state.sync_dirty:
            return
        state.sync_timer_pending = True
        event = Event(self.sim)

        def fire(_event: Event) -> None:
            state.sync_timer_pending = False
            self.synchronize_node(state)

        event.callbacks.append(fire)
        event.succeed(delay=self.ps_config.replica_sync_interval)

    def synchronize_node(self, state: ReplicaNodeState) -> None:
        """Run one synchronization round for ``state``'s node.

        Flushes the node's pending replica updates to their owners and
        broadcasts the owner-side delta buffers to subscribers.  Both message
        kinds carry additive aggregates, so processing order across nodes does
        not matter.
        """
        metrics = state.metrics
        if not state.sync_dirty:
            return
        metrics.replica_sync_rounds += 1
        if state.pending_updates:
            groups: Dict[int, Dict[int, np.ndarray]] = defaultdict(dict)
            pending_keys = list(state.pending_updates.keys())
            owners = self.partitioner.nodes_of_list(pending_keys)
            for key, owner in zip(pending_keys, owners):
                groups[owner][key] = state.pending_updates[key]
            state.pending_updates = {}
            for owner, per_key in groups.items():
                keys = tuple(sorted(per_key))
                updates = gather_rows(per_key, keys, self.ps_config.value_length)
                size = message_size(len(keys), updates.size)
                metrics.replica_flush_messages += 1
                metrics.replica_sync_keys += len(keys)
                metrics.replica_sync_bytes += size
                flush = ReplicaSyncFlush(
                    keys=keys,
                    updates=updates,
                    source_node=state.node_id,
                )
                self.send_to_server(state.node_id, owner, flush, size)
        if any(state.broadcast_buffer.values()):
            buffers = state.broadcast_buffer
            state.broadcast_buffer = defaultdict(dict)
            for subscriber, per_key in buffers.items():
                if not per_key:
                    continue
                keys = tuple(sorted(per_key))
                deltas = gather_rows(per_key, keys, self.ps_config.value_length)
                size = message_size(len(keys), deltas.size)
                metrics.replica_broadcast_messages += 1
                metrics.replica_sync_keys += len(keys)
                metrics.replica_sync_bytes += size
                broadcast = ReplicaDeltaBroadcast(
                    keys=keys, deltas=deltas, responder_node=state.node_id
                )
                self.send_to_server(state.node_id, subscriber, broadcast, size)

    def synchronize_all(self) -> None:
        """Force a synchronization round on every node (tests and benchmarks)."""
        for state in self.states:
            self.synchronize_node(state)  # type: ignore[arg-type]

    # ---------------------------------------------------------- server dispatch
    def _server_dispatch(self, state: ReplicaNodeState):  # type: ignore[override]
        cost = self.cluster.cost_model.server_processing_time
        dispatch = {
            PullRequest: (cost, self._handle_pull),
            PushRequest: (cost, self._handle_push),
        }
        dispatch.update(self.management_policy.server_handlers(state))
        return dispatch

    def _handle_pull(self, state: ReplicaNodeState, request: PullRequest) -> None:
        values = self.management_policy.handle_read(
            state, request.keys, what="received a pull for"
        )
        self._respond_pull(state, request, request.keys, values)

    def _handle_push(self, state: ReplicaNodeState, request: PushRequest) -> None:
        self.management_policy.handle_write(
            state, request.keys, request.updates, what="received a push for"
        )
        for index, key in enumerate(request.keys):
            # The requester had no replica when it issued this push, so it is
            # NOT excluded: if it subscribed while the push was in flight, its
            # snapshot predates the push and the delta must reach it.
            self.enqueue_broadcast(state, key, request.updates[index])
        self._ack_push(state, request, request.keys)

    def _handle_register(
        self, state: ReplicaNodeState, request: ReplicaRegisterRequest
    ) -> None:
        values = self.management_policy.handle_read(
            state, request.keys, what="received a replica subscription for"
        )
        for key in request.keys:
            state.subscribers[key].add(request.requester_node)
        install = ReplicaInstall(
            keys=request.keys,
            values=values,
            responder_node=state.node_id,
        )
        size = message_size(
            len(request.keys), len(request.keys) * self.ps_config.value_length
        )
        self.network.send(state.node_id, request.reply_to, install, size)

    def _handle_flush(self, state: ReplicaNodeState, flush: ReplicaSyncFlush) -> None:
        self.management_policy.handle_write(
            state, flush.keys, flush.updates, what="received a replica update flush for"
        )
        for index, key in enumerate(flush.keys):
            # The source applied these updates to its own replica already.
            self.enqueue_broadcast(
                state, key, flush.updates[index], exclude=flush.source_node
            )
        if self.ps_config.replica_sync_trigger == "clock":
            # Clock mode has no timer to drain the owner-side buffers, and the
            # owner's own workers may be past their last clock when this flush
            # arrives; broadcast on receipt so replicas still converge.
            self.synchronize_node(state)

    def _handle_broadcast(
        self, state: ReplicaNodeState, broadcast: ReplicaDeltaBroadcast
    ) -> None:
        for index, key in enumerate(broadcast.keys):
            if key in state.replicas:
                state.latches.acquire(key)
                state.replicas[key] += broadcast.deltas[index]
            elif key in state.installing:
                # The owner subscribed us and then broadcast before our install
                # arrived; apply the delta once the snapshot is in place.
                state.installing[key].pending_deltas.append(
                    broadcast.deltas[index].copy()
                )
            else:
                raise ParameterServerError(
                    f"replica PS node {state.node_id} received a delta for key {key} "
                    "it does not replicate"
                )
        state.metrics.replica_refreshes += len(broadcast.keys)

    # -------------------------------------------------------------------- van
    def _handle_extra_van_message(self, state: ReplicaNodeState, message: Any) -> None:  # type: ignore[override]
        if not isinstance(message, ReplicaInstall):
            super()._handle_extra_van_message(state, message)
            return
        # One bulk copy; each installed replica row is a node-owned view.
        values = np.array(message.values, dtype=np.float64)
        for index, key in enumerate(message.keys):
            entry = state.installing.pop(key, None)
            if entry is None:
                raise ParameterServerError(
                    f"replica PS node {state.node_id} received an install for key "
                    f"{key} it did not request"
                )
            state.replicas[key] = values[index]
            state.metrics.replica_creates += 1
            for delta in entry.pending_deltas:
                state.replicas[key] += delta
            for queued in entry.ops:
                if queued.kind == "local_pull":
                    state.latches.acquire(key)
                    queued.handle.complete_keys(
                        [key], state.replicas[key].copy().reshape(1, -1)
                    )
                else:
                    self.apply_replica_write(state, key, queued.update)
                    queued.handle.complete_keys([key])

    # --------------------------------------------------------------- inspection
    def replica_holders(self, key: int) -> Tuple[int, ...]:
        """Nodes currently holding a replica of ``key`` (outside simulation)."""
        owner = self.current_owner(key)
        owner_state: ReplicaNodeState = self.states[owner]  # type: ignore[assignment]
        return tuple(sorted(owner_state.subscribers.get(key, ())))
