"""Wire messages exchanged by parameter-server threads.

These dataclasses are the payloads carried by :class:`repro.simnet.Network`
envelopes.  They mirror the message types described in the paper:

* pull / push requests and their responses (Table 2),
* the three relocation-protocol messages of Figure 4 (*request relocation*,
  *instruct relocation*, *relocate*),
* forwarded requests used by the forward / double-forward routing strategies
  of Figure 5,
* stale-PS messages: replica fetches, update flushes, clock advances, and
  server-side replica pushes (SSPPush),
* replica-PS messages: subscription/snapshot installs, conflict-free update
  flushes, and delta broadcasts used by the replication-based variant,
* barrier coordination messages used between subepochs.

All message classes are slotted dataclasses: messages are the most frequently
allocated objects on the simulator's hot path, and ``__slots__`` removes the
per-instance ``__dict__`` allocation.  They are *not* frozen — a frozen
dataclass routes every field assignment in ``__init__`` through
``object.__setattr__``, which roughly triples construction cost — but they
are immutable by convention: a message, once sent, is shared between sender
and receiver and must never be mutated (build a new message instead, as the
forwarding helpers do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

import numpy as np


@dataclass(slots=True)
class PullRequest:
    """Request to read the current values of ``keys``.

    ``reply_to`` is the van address of the requesting node; ``hops`` counts
    forwarding steps for metric purposes (Figure 5 routing).
    """

    op_id: int
    keys: Tuple[int, ...]
    requester_node: int
    reply_to: Hashable
    hops: int = 0


@dataclass(slots=True)
class PullResponse:
    """Values answering a :class:`PullRequest` (possibly a partial key subset)."""

    op_id: int
    keys: Tuple[int, ...]
    values: np.ndarray
    responder_node: int


@dataclass(slots=True)
class PushRequest:
    """Cumulative update for ``keys``; ``updates`` has one row per key."""

    op_id: int
    keys: Tuple[int, ...]
    updates: np.ndarray
    requester_node: int
    reply_to: Hashable
    needs_ack: bool = True
    hops: int = 0


@dataclass(slots=True)
class PushAck:
    """Acknowledgement that a push (sub-)request was applied."""

    op_id: int
    keys: Tuple[int, ...]
    responder_node: int


@dataclass(slots=True)
class LocalizeRequest:
    """Message 1 of the relocation protocol: requester → home node."""

    op_id: int
    keys: Tuple[int, ...]
    requester_node: int


@dataclass(slots=True)
class RelocateInstruction:
    """Message 2 of the relocation protocol: home node → current owner."""

    op_id: int
    keys: Tuple[int, ...]
    new_owner: int
    home_node: int


@dataclass(slots=True)
class RelocationTransfer:
    """Message 3 of the relocation protocol: old owner → new owner (with values).

    ``removed_at`` is the simulated time at which the old owner stopped
    answering operations for these keys; the new owner uses it to measure the
    blocking time of the relocation (§3.2).

    ``subscribers`` is used by the hybrid PS only: one tuple of subscriber
    node ids per transferred key, so that replica-broadcast duties move with
    the key.  Empty for pure relocation (Lapse).
    """

    op_id: int
    keys: Tuple[int, ...]
    values: np.ndarray
    old_owner: int
    removed_at: float = 0.0
    subscribers: Tuple[Tuple[int, ...], ...] = ()


@dataclass(slots=True)
class LocalizeAck:
    """Notification that keys were already local to the requester (no move needed)."""

    op_id: int
    keys: Tuple[int, ...]


# --------------------------------------------------------------------------- stale PS
@dataclass(slots=True)
class ReplicaFetchRequest:
    """Stale PS: fetch fresh replica values for ``keys`` from their owner."""

    op_id: int
    keys: Tuple[int, ...]
    requester_node: int
    reply_to: Hashable
    clock: int


@dataclass(slots=True)
class ReplicaFetchResponse:
    """Stale PS: fresh values with the server clock at which they were read."""

    op_id: int
    keys: Tuple[int, ...]
    values: np.ndarray
    clock: int
    responder_node: int


@dataclass(slots=True)
class UpdateFlush:
    """Stale PS: accumulated updates flushed from a node to a key's owner at a clock."""

    op_id: int
    keys: Tuple[int, ...]
    updates: np.ndarray
    source_node: int
    clock: int
    reply_to: Optional[Hashable] = None


@dataclass(slots=True)
class FlushAck:
    """Stale PS: acknowledgement that an update flush was applied."""

    op_id: int
    clock: int
    responder_node: int


@dataclass(slots=True)
class ReplicaPush:
    """Stale PS (SSPPush): owner proactively pushes fresh values to a subscriber."""

    keys: Tuple[int, ...]
    values: np.ndarray
    clock: int
    responder_node: int


# ---------------------------------------------------------------------- replica PS
@dataclass(slots=True)
class ReplicaRegisterRequest:
    """Replica PS: subscribe ``requester_node`` to ``keys`` and fetch a snapshot.

    The owner adds the requester to each key's subscriber set and answers with
    a :class:`ReplicaInstall` carrying the current values.  Replica messages
    carry no op id: installs are matched to the requester's per-key
    ``installing`` entries, and flushes/broadcasts are one-way.
    """

    keys: Tuple[int, ...]
    requester_node: int
    reply_to: Hashable


@dataclass(slots=True)
class ReplicaInstall:
    """Replica PS: owner → new replica holder, value snapshot at subscribe time."""

    keys: Tuple[int, ...]
    values: np.ndarray
    responder_node: int


@dataclass(slots=True)
class ReplicaSyncFlush:
    """Replica PS: accumulated local updates flushed from a replica holder to the owner.

    Updates are cumulative (additive), so aggregation is conflict-free: the
    owner simply adds them to its authoritative copy and forwards them to the
    *other* subscribers (the source already applied them locally).
    """

    keys: Tuple[int, ...]
    updates: np.ndarray
    source_node: int


@dataclass(slots=True)
class ReplicaDeltaBroadcast:
    """Replica PS: owner → subscriber, aggregate of other nodes' updates.

    Carries, per key, the sum of all updates the owner applied since the last
    broadcast to this subscriber, excluding the subscriber's own contributions
    (which it already applied locally).  The subscriber adds the deltas to its
    replicas.
    """

    keys: Tuple[int, ...]
    deltas: np.ndarray
    responder_node: int


# ----------------------------------------------------------------- elastic cluster
@dataclass(slots=True)
class RecoveryInstall:
    """Elastic runtime: a surviving replica holder ships recovered keys to their new owner.

    When a node fails, the keys it owned are re-homed by the elastic
    rebalancer; for every key that some surviving node replicates, that holder
    sends the replica value to the key's new owner, which installs it as the
    authoritative copy.  ``subscribers`` lists, per key, the surviving nodes
    that still hold a replica (so the new owner takes over broadcast duties,
    exactly like the subscriber handoff of a relocation).
    """

    keys: Tuple[int, ...]
    values: np.ndarray
    source_node: int
    failed_node: int
    subscribers: Tuple[Tuple[int, ...], ...] = ()


# --------------------------------------------------------------------------- barrier
@dataclass(slots=True)
class BarrierArrive:
    """A worker announces it reached barrier ``generation``."""

    worker_id: int
    node: int
    reply_to: Hashable
    generation: int


@dataclass(slots=True)
class BarrierRelease:
    """The coordinator releases all workers from barrier ``generation``."""

    generation: int


@dataclass(slots=True)
class WorkerDirectValue:
    """Reply routed to a specific worker rather than the node van (rarely used)."""

    op_id: int
    keys: Tuple[int, ...]
    values: np.ndarray
