"""Key partitioners and hot-key replication policies.

Classic parameter servers allocate parameters statically via a partitioning of
the key space (range or hash partitioning, §2.2.1).  Lapse uses the same
static partitioning to assign each key its *home node* (§3.5), while the
*owner* changes dynamically at run time.

``random_key_mapping`` implements the key-randomization trick from footnote 5
of the paper: assigning random keys to parameters spreads hot parameters over
servers when the application's natural key order is skewed.

The :class:`HotKeyPolicy` family decides which keys a *replication*-based PS
(:class:`repro.ps.replica.ReplicaPS`) replicates to an accessing node — the
alternative to relocation that the paper contrasts DPA with in its related
work discussion.  Policies are per-node (each node tracks its own accesses)
and purely local: they never communicate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PartitionError

# Key batches at or below this size resolve owners in pure Python; NumPy's
# per-call overhead only pays off above it.
from repro.ps.storage import SMALL_BATCH as _SMALL_BATCH


class KeyPartitioner:
    """Maps every key to the node that statically hosts it."""

    def __init__(self, num_keys: int, num_nodes: int) -> None:
        if num_keys < 1:
            raise PartitionError(f"num_keys must be >= 1, got {num_keys}")
        if num_nodes < 1:
            raise PartitionError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_keys = num_keys
        self.num_nodes = num_nodes

    def node_of(self, key: int) -> int:
        """Return the node statically responsible for ``key``."""
        raise NotImplementedError

    def nodes_of(self, keys: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`node_of`: one int64 node id per key.

        The hot data paths of the parameter servers resolve whole key batches
        through this method; subclasses override it with a NumPy
        implementation.  The fallback loops over :meth:`node_of`.
        """
        keys = np.asarray(keys, dtype=np.int64)
        return np.fromiter(
            (self.node_of(int(key)) for key in keys), dtype=np.int64, count=keys.size
        )

    def nodes_of_list(self, keys: Sequence[int]) -> List[int]:
        """:meth:`nodes_of` as a plain Python list.

        Small batches (the common case on the per-operation hot path) stay in
        pure Python; large batches go through the vectorized :meth:`nodes_of`.
        """
        if len(keys) <= _SMALL_BATCH:
            node_of = self.node_of
            return [node_of(key) for key in keys]
        return self.nodes_of(keys).tolist()

    def keys_of(self, node: int) -> List[int]:
        """Return all keys statically assigned to ``node``."""
        self._check_node(node)
        return [key for key in range(self.num_keys) if self.node_of(key) == node]

    def _check_key(self, key: int) -> None:
        if not 0 <= key < self.num_keys:
            raise PartitionError(f"key {key} out of range [0, {self.num_keys})")

    def _check_keys_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized bounds check; raises on the first out-of-range key."""
        keys = np.asarray(keys, dtype=np.int64)
        out_of_range = (keys < 0) | (keys >= self.num_keys)
        if out_of_range.any():
            bad = int(keys[int(np.argmax(out_of_range))])
            raise PartitionError(f"key {bad} out of range [0, {self.num_keys})")
        return keys

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise PartitionError(f"node {node} out of range [0, {self.num_nodes})")


class RangePartitioner(KeyPartitioner):
    """Contiguous, balanced range partitioning of the key space.

    Node ``i`` receives keys ``[i * ceil, min((i+1) * ceil, K))`` where ranges
    differ in size by at most one key.
    """

    def __init__(self, num_keys: int, num_nodes: int) -> None:
        super().__init__(num_keys, num_nodes)
        base = num_keys // num_nodes
        remainder = num_keys % num_nodes
        self._boundaries = []
        start = 0
        for node in range(num_nodes):
            size = base + (1 if node < remainder else 0)
            self._boundaries.append((start, start + size))
            start += size
        self._starts = np.array([s for s, _ in self._boundaries], dtype=np.int64)
        # Closed-form lookup constants: the first `remainder` nodes hold
        # `base + 1` keys, the rest hold `base`.
        self._base = base
        self._remainder = remainder
        self._large_until = (base + 1) * remainder

    def node_of(self, key: int) -> int:
        self._check_key(key)
        if key < self._large_until:
            return key // (self._base + 1)
        return self._remainder + (key - self._large_until) // self._base

    def nodes_of(self, keys: Sequence[int]) -> np.ndarray:
        keys = self._check_keys_array(keys)
        # A key belongs to the last node whose range start is <= key; empty
        # ranges cannot win because their start equals the next node's start.
        return np.searchsorted(self._starts, keys, side="right").astype(np.int64) - 1

    def keys_of(self, node: int) -> List[int]:
        self._check_node(node)
        start, end = self._boundaries[node]
        return list(range(start, end))

    def range_of(self, node: int) -> tuple:
        """Return the half-open key range ``(start, end)`` of ``node``."""
        self._check_node(node)
        return self._boundaries[node]


class HashPartitioner(KeyPartitioner):
    """Deterministic hash partitioning (multiplicative hashing)."""

    _MULTIPLIER = 2654435761  # Knuth's multiplicative hash constant

    def node_of(self, key: int) -> int:
        self._check_key(key)
        return ((key * self._MULTIPLIER) & 0xFFFFFFFF) % self.num_nodes

    def nodes_of(self, keys: Sequence[int]) -> np.ndarray:
        keys = self._check_keys_array(keys)
        hashed = (keys.astype(np.uint64) * np.uint64(self._MULTIPLIER)) & np.uint64(0xFFFFFFFF)
        return (hashed % np.uint64(self.num_nodes)).astype(np.int64)


class ExplicitPartitioner(KeyPartitioner):
    """Partitioning given by an explicit key→node assignment array.

    This is what a PS with *parameter location control* exposes: the
    application decides where each parameter lives (used by the data-clustering
    PAL technique to place each parameter on the node that accesses it most).
    """

    def __init__(self, assignment: Sequence[int], num_nodes: int) -> None:
        assignment = np.asarray(assignment, dtype=np.int64)
        super().__init__(len(assignment), num_nodes)
        if assignment.size == 0:
            raise PartitionError("assignment must not be empty")
        if assignment.min() < 0 or assignment.max() >= num_nodes:
            raise PartitionError(
                "assignment contains node ids outside the range "
                f"[0, {num_nodes})"
            )
        self._assignment = assignment

    def node_of(self, key: int) -> int:
        self._check_key(key)
        return int(self._assignment[key])

    def nodes_of(self, keys: Sequence[int]) -> np.ndarray:
        keys = self._check_keys_array(keys)
        return self._assignment[keys]

    def keys_of(self, node: int) -> List[int]:
        self._check_node(node)
        return np.flatnonzero(self._assignment == node).tolist()


class ElasticPartitioner(KeyPartitioner):
    """Versioned partitioner over the *active* subset of an elastic cluster.

    A classic partitioner maps the key space onto a fixed node set; an elastic
    cluster changes its node set at run time.  :class:`ElasticPartitioner`
    wraps a base partitioning ``kind`` (range or hash) but applies it only to
    the currently active nodes: ``num_nodes`` is the cluster's *capacity*
    (reserve nodes are valid ids that simply hold no keys), and
    :meth:`rebalance` recomputes the assignment for a new active set.

    Rebalancing is *movement-minimizing*: instead of re-ranging the whole key
    space (which would shuffle keys between nodes that did not change), every
    surviving node keeps as many of its keys as the new balanced share allows;
    only surplus keys — and all keys of departing nodes — move.  On a join,
    keys move exclusively *to* the new node; on a drain/failure, exclusively
    *away from* the departing node.

    Every rebalance bumps :attr:`epoch` and retains the previous assignment
    (:meth:`previous_node_of`), so routing layers can tolerate requests issued
    under the previous epoch the same way Lapse tolerates stale location
    caches (§3.5): a node that is no longer responsible forwards along the
    current assignment instead of failing.
    """

    def __init__(
        self,
        num_keys: int,
        num_nodes: int,
        active_nodes: Optional[Sequence[int]] = None,
        kind: str = "range",
    ) -> None:
        super().__init__(num_keys, num_nodes)
        if kind not in ("range", "hash"):
            raise PartitionError(f"unknown partitioner kind {kind!r}")
        self._kind = kind
        active = list(range(num_nodes)) if active_nodes is None else list(active_nodes)
        self._active = self._check_active(active)
        self.epoch = 0
        self._assignment = self._fresh_assignment(self._active)
        self._previous_assignment = self._assignment

    # ------------------------------------------------------------- validation
    def _check_active(self, active: Sequence[int]) -> List[int]:
        nodes = sorted(int(node) for node in active)
        if not nodes:
            raise PartitionError("active node set must not be empty")
        if len(set(nodes)) != len(nodes):
            raise PartitionError(f"active node set contains duplicates: {nodes}")
        for node in nodes:
            self._check_node(node)
        return nodes

    # ------------------------------------------------------------- assignment
    def _fresh_assignment(self, active: List[int]) -> np.ndarray:
        base = make_partitioner(self._kind, self.num_keys, len(active))
        keys = np.arange(self.num_keys, dtype=np.int64)
        return np.asarray(active, dtype=np.int64)[base.nodes_of(keys)]

    def _balanced_targets(self, active: List[int]) -> Dict[int, int]:
        """Balanced per-node key quota: sizes differ by at most one key."""
        base, remainder = divmod(self.num_keys, len(active))
        return {
            node: base + (1 if index < remainder else 0)
            for index, node in enumerate(active)
        }

    @property
    def active_nodes(self) -> List[int]:
        """The nodes currently holding keys (sorted)."""
        return list(self._active)

    def rebalance(self, active_nodes: Sequence[int]) -> List[Tuple[int, int, int]]:
        """Reassign the key space to ``active_nodes``, minimizing movement.

        Returns the moves as ``(key, old_node, new_node)`` triples (ascending
        by key) and bumps :attr:`epoch`.  Keys on nodes that remain active
        stay put unless the node exceeds its new balanced quota; surplus keys
        (the node's highest) and the keys of departing nodes are redistributed
        to under-quota nodes in ascending node order.
        """
        active = self._check_active(active_nodes)
        targets = self._balanced_targets(active)
        active_set = set(active)
        new_assignment = self._assignment.copy()
        pool: List[int] = []
        for node in sorted(set(self._active) | active_set):
            held = np.flatnonzero(self._assignment == node)
            if node not in active_set:
                pool.extend(held.tolist())
            elif held.size > targets[node]:
                # Shed the highest keys so kept ranges stay contiguous-ish.
                pool.extend(held[targets[node]:].tolist())
        pool.sort()
        cursor = 0
        old_active = set(self._active)
        for node in active:
            if node in old_active:
                held = int(np.count_nonzero(self._assignment == node))
                kept = min(held, targets[node])
            else:
                kept = 0
            deficit = targets[node] - kept
            if deficit > 0:
                grabbed = pool[cursor:cursor + deficit]
                new_assignment[grabbed] = node
                cursor += deficit
        moved = np.flatnonzero(new_assignment != self._assignment)
        moves = [
            (int(key), int(self._assignment[key]), int(new_assignment[key]))
            for key in moved
        ]
        self._previous_assignment = self._assignment
        self._assignment = new_assignment
        self._active = active
        self.epoch += 1
        return moves

    # ----------------------------------------------------------------- lookup
    def node_of(self, key: int) -> int:
        self._check_key(key)
        return int(self._assignment[key])

    def nodes_of(self, keys: Sequence[int]) -> np.ndarray:
        keys = self._check_keys_array(keys)
        return self._assignment[keys]

    def keys_of(self, node: int) -> List[int]:
        self._check_node(node)
        return np.flatnonzero(self._assignment == node).tolist()

    def previous_node_of(self, key: int) -> int:
        """The key's assignment in the previous epoch (stale-epoch routing)."""
        self._check_key(key)
        return int(self._previous_assignment[key])


def random_key_mapping(num_keys: int, seed: int = 0) -> np.ndarray:
    """Return a random bijective mapping ``original key -> assigned key``.

    The paper (footnote 5) manually assigns random keys to parameters so that
    range partitioning spreads frequently accessed parameters evenly across
    servers.  Applications apply this mapping before talking to the PS.
    """
    if num_keys < 1:
        raise PartitionError(f"num_keys must be >= 1, got {num_keys}")
    rng = np.random.default_rng(seed)
    return rng.permutation(num_keys)


def make_partitioner(kind: str, num_keys: int, num_nodes: int) -> KeyPartitioner:
    """Factory for the built-in partitioner kinds (``"range"`` or ``"hash"``)."""
    if kind == "range":
        return RangePartitioner(num_keys, num_nodes)
    if kind == "hash":
        return HashPartitioner(num_keys, num_nodes)
    raise PartitionError(f"unknown partitioner kind {kind!r}")


# ----------------------------------------------------------- hot-key policies
class HotKeyPolicy:
    """Decides which keys a node replicates (replication-based PS only).

    A node consults its policy on every access to a parameter it neither owns
    nor already replicates: ``record_access`` is called first, then ``is_hot``
    decides whether the node should install a replica of the key.  Policies
    are stateful per node and see only that node's accesses.
    """

    def record_access(self, key: int) -> None:
        """Note one access to a non-local ``key`` (default: no bookkeeping)."""

    def is_hot(self, key: int) -> bool:
        """Whether ``key`` should be replicated to this node."""
        raise NotImplementedError


class AccessCountHotKeyPolicy(HotKeyPolicy):
    """Replicate a key once this node accessed it ``threshold`` times.

    ``threshold=1`` replicates eagerly on the first access (every accessed key
    is treated as hot); larger thresholds replicate only keys that a node
    accesses repeatedly, keeping cold keys on their owner.
    """

    def __init__(self, threshold: int = 1) -> None:
        if threshold < 1:
            raise PartitionError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._counts: dict = {}

    def record_access(self, key: int) -> None:
        self._counts[key] = self._counts.get(key, 0) + 1

    def is_hot(self, key: int) -> bool:
        return self._counts.get(key, 0) >= self.threshold

    def access_count(self, key: int) -> int:
        """Number of accesses recorded for ``key`` on this node."""
        return self._counts.get(key, 0)


class ExplicitHotKeyPolicy(HotKeyPolicy):
    """Replicate exactly the keys in a fixed application-provided hot set."""

    def __init__(self, hot_keys: Sequence[int], num_keys: Optional[int] = None) -> None:
        keys = frozenset(int(key) for key in hot_keys)
        for key in keys:
            if key < 0:
                raise PartitionError(f"hot key {key} must be non-negative")
            if num_keys is not None and key >= num_keys:
                raise PartitionError(
                    f"hot key {key} out of range [0, {num_keys})"
                )
        self.hot_keys = keys

    def is_hot(self, key: int) -> bool:
        return key in self.hot_keys


class NoReplicationPolicy(HotKeyPolicy):
    """Never replicate: the replica PS degenerates to a classic PS."""

    def is_hot(self, key: int) -> bool:
        return False


def make_hot_key_policy(
    kind: str,
    *,
    threshold: int = 1,
    hot_keys: Optional[Sequence[int]] = None,
    num_keys: Optional[int] = None,
) -> HotKeyPolicy:
    """Factory for the built-in hot-key policy kinds.

    Args:
        kind: ``"access_count"`` (replicate after ``threshold`` accesses),
            ``"explicit"`` (replicate a fixed ``hot_keys`` set), or
            ``"none"`` (never replicate).
        threshold: Access count at which a key becomes hot (``access_count``).
        hot_keys: The fixed hot set (``explicit`` only).
        num_keys: Optional key-space size used to validate ``hot_keys``.
    """
    if kind == "access_count":
        return AccessCountHotKeyPolicy(threshold)
    if kind == "explicit":
        if hot_keys is None:
            raise PartitionError("explicit hot-key policy requires hot_keys")
        return ExplicitHotKeyPolicy(hot_keys, num_keys=num_keys)
    if kind == "none":
        return NoReplicationPolicy()
    raise PartitionError(f"unknown hot-key policy kind {kind!r}")
