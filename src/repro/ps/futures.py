"""Operation handles for synchronous and asynchronous PS primitives.

Every ``pull`` / ``push`` / ``localize`` call returns an
:class:`OperationHandle`.  Synchronous calls wait for the handle before
returning; asynchronous calls hand the handle to the application, which can
later wait on it (or on many at once) — exactly how PS-Lite and Lapse expose
asynchronous operation.

A handle may be split across several destination nodes (message grouping): it
completes when all of its sub-requests have been answered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ParameterServerError
from repro.simnet.events import AllOf, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.kernel import Simulator


class OperationHandle:
    """Tracks the completion of one logical PS operation.

    Attributes:
        op_type: ``"pull"``, ``"push"`` or ``"localize"``.
        keys: The keys named by the operation, in application order.
        issued_at: Simulated time at which the operation was issued.
    """

    __slots__ = (
        "sim",
        "op_type",
        "keys",
        "value_length",
        "issued_at",
        "completed_at",
        "last_progress_at",
        "_event",
        "_pending_keys",
        "_values",
        "_op_ids",
    )

    def __init__(
        self,
        sim: "Simulator",
        op_type: str,
        keys: Sequence[int],
        value_length: int,
    ) -> None:
        self.sim = sim
        self.op_type = op_type
        # Client callers pass the already-checked int tuple from _check_keys;
        # anything else is normalized here.
        if type(keys) is not tuple:
            keys = tuple(int(k) for k in keys)
        self.keys: Tuple[int, ...] = keys
        self.value_length = value_length
        self.issued_at = sim._now
        self.completed_at: Optional[float] = None
        #: Simulated time of the most recent key completion.  The parallel
        #: engine stitches a rebalance operation's completion instant from
        #: the per-shard progress stamps (each shard completes a disjoint
        #: key subset), so the maximum over shards is ``completed_at``.
        self.last_progress_at: Optional[float] = None
        self._event = Event(sim)
        # The completion event always carries the handle — pre-seeding the
        # value (succeed() overwrites it with the same object) lets cleanup
        # callbacks find the handle even when the operation *fails*, without
        # allocating a closure per registration.
        self._event._value = self
        self._pending_keys = set(keys)
        self._values: Dict[int, np.ndarray] = {}
        #: Op ids registered for this handle in the server's routing table
        #: (managed by :meth:`ParameterServer.register_op`).
        self._op_ids: Optional[list] = None

    # ------------------------------------------------------------------ state
    @property
    def done(self) -> bool:
        """Whether every key of the operation has been answered."""
        return self._event.triggered

    @property
    def completion_event(self) -> Event:
        """The simulation event that fires when the operation completes."""
        return self._event

    @property
    def latency(self) -> float:
        """Issue-to-completion latency (only valid once done)."""
        if self.completed_at is None:
            raise ParameterServerError("operation has not completed yet")
        return self.completed_at - self.issued_at

    # -------------------------------------------------------------- completion
    def complete_keys(
        self, keys: Sequence[int], values: Optional[np.ndarray] = None
    ) -> None:
        """Mark ``keys`` as answered, optionally recording pulled values."""
        pending = self._pending_keys
        if values is None:
            # Ack-style completion (pushes, localizes): no value bookkeeping.
            before = len(pending)
            for key in keys:
                pending.discard(int(key))
            if len(pending) != before:
                self.last_progress_at = self.sim._now
            if not pending and not self._event._triggered:
                self.completed_at = self.sim._now
                self._event.succeed(self)
            return
        if values.__class__ is not np.ndarray or values.dtype != np.float64:
            values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            values = values.reshape(1, -1)
        if values.shape[0] != len(keys):
            raise ParameterServerError(
                f"got {values.shape[0]} value rows for {len(keys)} keys"
            )
        recorded = self._values
        before = len(pending)
        for index, key in enumerate(keys):
            key = int(key)
            if key not in pending:
                # Duplicate completion (e.g. a retried message); ignore the
                # repeat but keep the first value.
                continue
            pending.discard(key)
            recorded[key] = values[index]
        if len(pending) != before:
            self.last_progress_at = self.sim._now
        if not pending and not self._event._triggered:
            self.completed_at = self.sim._now
            self._event.succeed(self)

    def fail(self, exception: BaseException) -> None:
        """Fail the operation, propagating ``exception`` to waiters."""
        if not self._event.triggered:
            self.completed_at = self.sim.now
            self._event.fail(exception)

    # ------------------------------------------------------------------ result
    def values(self) -> np.ndarray:
        """Return pulled values as an array with one row per requested key."""
        if not self.done:
            raise ParameterServerError("operation has not completed yet")
        if self.op_type != "pull":
            raise ParameterServerError(f"{self.op_type} operations carry no values")
        keys = self.keys
        recorded = self._values
        out = np.empty((len(keys), self.value_length), dtype=np.float64)
        if len(keys) == 1:
            row = recorded.get(keys[0])
            if row is None:
                raise ParameterServerError(f"no value recorded for key {keys[0]}")
            out[0] = row
            return out
        for index, key in enumerate(keys):
            row = recorded.get(key)
            if row is None:
                raise ParameterServerError(f"no value recorded for key {key}")
            out[index] = row
        return out

    def first_value(self) -> np.ndarray:
        """Read-only row view of the first key's pulled value (hot path).

        Unlike :meth:`values`, no output array is allocated; the returned row
        aliases the response buffer and must not be mutated by the caller.
        """
        if not self._event._triggered:
            raise ParameterServerError("operation has not completed yet")
        row = self._values.get(self.keys[0])
        if row is None:
            raise ParameterServerError(f"no value recorded for key {self.keys[0]}")
        return row

    def value(self) -> np.ndarray:
        """Return the value of a single-key pull as a flat vector."""
        values = self.values()
        if values.shape[0] != 1:
            raise ParameterServerError(
                f"value() requires a single-key operation, got {values.shape[0]} keys"
            )
        return values[0]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "done" if self.done else f"pending({len(self._pending_keys)} keys)"
        return f"<OperationHandle {self.op_type} keys={list(self.keys)} {state}>"


def wait_all(sim: "Simulator", handles: Iterable[OperationHandle]) -> Event:
    """Return an event that triggers when all ``handles`` have completed."""
    events: List[Event] = [h.completion_event for h in handles]
    return AllOf(sim, events)
