"""Clock abstraction shared by the simulated and real execution backends.

Everything above the execution layer (trainers, experiment runners, reports)
measures epochs as ``end_time - start_time`` against a single ``.now``
property.  On the simulated backend that property is the discrete-event
kernel's virtual time; on the real multiprocessing backend it is wall-clock
time.  :class:`Clock` names that contract so the two backends are
interchangeable behind :attr:`ParameterServer.simulated_time`:

* :class:`SimulatedClock` — reads :attr:`repro.simnet.kernel.Simulator.now`,
* :class:`WallClock` — monotonic wall time since construction.

``WallClock`` uses :func:`time.monotonic` (not ``perf_counter``): on Linux it
is CLOCK_MONOTONIC, whose epoch is shared across processes, so timestamps
stamped in one process (e.g. ``removed_at`` on a relocation transfer) can be
compared against readings in another.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.kernel import Simulator


class Clock:
    """Source of the current time for one execution backend."""

    @property
    def now(self) -> float:
        """Current time in seconds (virtual or wall, backend-defined)."""
        raise NotImplementedError


class SimulatedClock(Clock):
    """Virtual time of a discrete-event :class:`Simulator`."""

    __slots__ = ("sim",)

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim

    @property
    def now(self) -> float:
        return self.sim.now


class WallClock(Clock):
    """Monotonic wall-clock seconds elapsed since this clock was created."""

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.monotonic()

    @property
    def now(self) -> float:
        return time.monotonic() - self._start

    def absolute(self) -> float:
        """Raw monotonic reading, comparable across processes on one host."""
        return time.monotonic()
