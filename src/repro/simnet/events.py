"""Event primitives for the discrete-event simulator.

An :class:`Event` is a one-shot occurrence with an optional value.  Processes
wait on events by yielding them; the simulator resumes the process when the
event is processed.  :class:`Timeout` is an event that triggers after a fixed
simulated delay.  :class:`AllOf` / :class:`AnyOf` combine several events.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional, Sequence

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.kernel import Simulator


class Event:
    """A one-shot simulation event.

    Events move through three stages: *pending* (created), *triggered*
    (scheduled on the event queue via :meth:`succeed` or :meth:`fail`), and
    *processed* (popped from the queue; callbacks have run).

    The callback list is allocated lazily: events that nobody listens to (a
    large fraction of the events on the simulator's hot path) never pay for a
    list allocation, and the kernel detaches the list on processing without
    allocating a replacement.
    """

    __slots__ = (
        "sim",
        "_callbacks",
        "_value",
        "_exception",
        "_triggered",
        "_processed",
        "_pooled",
    )

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._callbacks: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._triggered = False
        self._processed = False
        #: Kernel-internal: recycled into the simulator's event pool after
        #: processing (set only by :meth:`Simulator.acquire_event`).
        self._pooled = False

    @property
    def callbacks(self) -> List[Callable[["Event"], None]]:
        """Callbacks invoked (with the event) when the event is processed.

        Allocated on first access; callbacks appended after the event was
        processed are never invoked (same contract as before laziness).
        """
        callbacks = self._callbacks
        if callbacks is None:
            callbacks = self._callbacks = []
        return callbacks

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled for processing."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event completed successfully (only valid once triggered)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value passed to :meth:`succeed`."""
        if not self._triggered:
            raise SimulationError("event value accessed before the event was triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The exception passed to :meth:`fail`, if any."""
        return self._exception

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully after ``delay`` simulated seconds."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        self._triggered = True
        self._value = value
        self.sim._enqueue(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with a failure after ``delay`` simulated seconds."""
        if self._triggered:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._enqueue(self, delay)
        return self

    def _mark_processed(self) -> None:
        self._processed = True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be non-negative, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self.succeed(value=value, delay=delay)


class _Condition(Event):
    """Base class for events that fire based on a set of child events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Sequence[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("all events of a condition must share a simulator")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed(value=[])
            return
        for event in self.events:
            if event.processed:
                self._child_done(event)
            else:
                event.callbacks.append(self._child_done)

    def _child_done(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Condition):
    """Event that triggers when *all* child events have been processed.

    Its value is the list of child values in the order the children were given.
    """

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(value=[child.value for child in self.events])


class AnyOf(_Condition):
    """Event that triggers when *any* child event has been processed.

    Its value is the value of the first child that completed.
    """

    __slots__ = ()

    def _child_done(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        self.succeed(value=event.value)
