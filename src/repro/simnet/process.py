"""Generator-based simulation processes.

A process wraps a Python generator.  The generator *yields* the things it
wants to wait for:

* an :class:`~repro.simnet.events.Event` — resume when the event is processed,
  receiving the event's value (or having its exception thrown in),
* a ``float``/``int`` — shorthand for a :class:`Timeout` of that many seconds,
* another :class:`Process` — resume when that process finishes.

A :class:`Process` is itself an event: it triggers with the generator's return
value when the generator completes, so processes can wait for each other.

Hot-path note: plain ``float``/``int`` yields — the dominant yield kind on the
simulator's hot path (server processing costs, compute times) — do not
allocate a :class:`Timeout` event at all when the engine fast paths are on;
the resume is scheduled directly as a kernel callback token
(:meth:`Simulator.call_later`), which is order-identical to the Timeout it
replaces.  Exotic numerics (NumPy scalars) and the reference engine
(``REPRO_DISABLE_FASTPATH=1``) keep the original Timeout path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import ProcessError
from repro.simnet.events import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.kernel import Simulator


class Process(Event):
    """A running simulation process (and the event of its completion)."""

    __slots__ = ("name", "_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Generator, name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise ProcessError(
                "Process requires a generator; did you call the generator function?"
            )
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        bootstrap = Event(sim)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(None)

    @property
    def is_alive(self) -> bool:
        """Whether the process has not yet finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        if event._exception is None:
            self._step(event._value)
            return
        # Failure path (rare): throw the exception into the generator.
        self._waiting_on = None
        try:
            yielded = self._generator.throw(event._exception)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            if self._callbacks:
                self.fail(exc)
                return
            raise
        self._dispatch(yielded)

    def _step(self, value: Any) -> None:
        """Resume the generator with ``value`` (the hot success path)."""
        self._waiting_on = None
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            # Fail the completion event so that waiting processes see the
            # exception; if nobody is waiting, surface it immediately so bugs
            # in simulation code do not silently vanish.  (Reads the raw slot
            # to avoid allocating an empty callback list just to test it.)
            if self._callbacks:
                self.fail(exc)
                return
            raise
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        """Wait on whatever the generator yielded."""
        cls = yielded.__class__
        if cls is float or cls is int:
            # Timeout fast path: schedule the resume directly, no Event.
            sim = self.sim
            if sim.fastpath:
                sim.call_later(yielded, self._step, None)
                return
        elif isinstance(yielded, Event):
            # Inlined _wait_on for the dominant event-yield case.
            if yielded.sim is not self.sim:
                raise ProcessError("process yielded an event from a different simulator")
            self._waiting_on = yielded
            if not yielded._processed:
                callbacks = yielded._callbacks
                if callbacks is None:
                    yielded._callbacks = [self._resume]
                else:
                    callbacks.append(self._resume)
                return
        self._wait_on(self._to_event(yielded))

    def _wait_on(self, target: Event) -> None:
        self._waiting_on = target
        if target._processed:
            # The target already happened (e.g. an immediately-available queue
            # item processed earlier this step); resume via a zero-delay event
            # to keep resumption ordering consistent.
            relay = self.sim.acquire_event()
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(target.value)
            else:
                relay.fail(target.exception)  # type: ignore[arg-type]
        else:
            callbacks = target._callbacks
            if callbacks is None:
                target._callbacks = [self._resume]
            else:
                callbacks.append(self._resume)

    def _to_event(self, yielded: Any) -> Event:
        if isinstance(yielded, Event):
            if yielded.sim is not self.sim:
                raise ProcessError("process yielded an event from a different simulator")
            return yielded
        if isinstance(yielded, (int, float)) and not isinstance(yielded, bool):
            return Timeout(self.sim, float(yielded))
        raise ProcessError(
            f"process {self.name!r} yielded an unsupported object: {yielded!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "finished" if self.triggered else "running"
        return f"<Process {self.name!r} {state}>"
