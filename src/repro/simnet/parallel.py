"""Conservative parallel discrete-event engine: shard nodes across cores.

The sequential kernel executes every simulated node's events on one Python
core.  This module forks the fully constructed simulation into ``P`` shard
processes at each driver epoch (``ParameterServer.run_workers``), gives each
shard a block of nodes, and synchronizes the shards with **conservative time
windows**:

* **Lookahead.**  Every cross-node message is charged at least
  ``CostModel.network_latency`` of delay (``message_time(size) = latency +
  size / bandwidth``), and the per-channel FIFO clocks only push deliveries
  *later*.  Therefore a message sent at simulated time ``t`` is delivered no
  earlier than ``t + L`` with ``L = network_latency`` — the classic
  lookahead bound of a conservative parallel DES.
* **Windows.**  Each round, every shard announces ``lo_i = min(`` earliest
  pending local event, earliest delivery of the records it just shipped
  ``)`` and all shards agree on the global horizon ``G = min_i lo_i``.
  Events in ``[G, G + L)`` cannot be influenced by any not-yet-exchanged
  message (those arrive at ``>= G + L``), so each shard processes its own
  events below ``G + L`` without coordination, then exchanges the newly
  generated cross-shard records and repeats.  ``G == inf`` on every shard
  means global quiescence: the epoch is done.
* **Membership barriers** (elastic clusters).  A scheduled membership event
  at time ``T`` splits the epoch: windows are clipped to ``T``, and once
  the global horizon shows that every event and in-flight delivery at or
  below ``T`` is accounted for, the shards drain *through* ``T``
  (``run_window(T, inclusive=True)`` — safe once ``G + L > T``), exchange
  rebalance-progress and control-plane state, and every shard executes the
  identical event apply against identical merged state under the replicated
  scheduling stream (:meth:`Simulator.begin_apply`).  The apply's
  cross-node sends re-enter the ordinary window exchange, so the epoch
  resumes seamlessly and stays bit-identical to ``jobs=1``.
* **Durable windows** (durability subsystem).  Inside a shard, WAL appends
  draw *provisional* LSNs from the forked clock and capture a global order
  key (:meth:`Simulator.wal_order_key` — the two-level (window, shard,
  local) order).  At epoch merge the parent sorts all shards' post-fork
  records by that key, rewrites provisional LSNs into the cluster total
  order, and stitches records and checkpoints back into the per-node logs,
  so later recovery replays identically to a sequential run.
* **Adaptive shard rebalancing.**  Each epoch the shards report executed
  event counts and per-node delivery loads; when the executed-event skew
  exceeds :data:`SHARD_SKEW_THRESHOLD`, :func:`rebalance_shard_plan`
  recomputes the node->shard assignment (movement-minimizing LPT greedy)
  and the next epoch forks from the new plan.  Results are plan-independent
  (lineage keys reproduce the sequential order under any partition), so the
  replan is a pure wall-clock optimization.
* **Determinism.**  Every shard-mode event is keyed by a recursive
  *lineage* tuple ``(sched_time,) + parent_lineage + (shard, seq)`` (see
  the :mod:`repro.simnet.kernel` module docstring), and cross-shard records
  merge into the receiver's heap under the sender's lineage, which
  reproduces the sequential engine's global sequence order.
  The identity sweep in ``tests/experiments/test_parallel_identity.py``
  holds the result to the same bit-identity bar as every prior engine
  change.

Shards are forked with :mod:`multiprocessing`'s ``fork`` start method, so
each child inherits the whole object graph (parameter server, trainers,
numpy state) copy-on-write.  At the end of the epoch each child ships the
mutated state of *its* nodes back through a pipe — node storage and policy
tables, worker RNGs and clocks, channel clocks of the channels it owns,
traffic-counter deltas, WAL segments, and membership outcomes — and the
parent merges them so the next epoch forks from an up-to-date image.

Workloads the window protocol cannot shard (pending failure recovery,
WAL truncation, single-node clusters, zero network latency, the reference
engine) are detected by :func:`parallel_fallback_reason` and fall back to
the sequential engine with a once-per-reason warning.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError

#: Op-id namespace stride: shard ``r`` draws operation ids above
#: ``(r + 1) << 48``, so concurrently issued ops never collide.  Op ids are
#: transient (handles complete within the epoch) and never enter message
#: sizes, so the namespacing is unobservable in simulation results.
_OP_ID_STRIDE = 1 << 48

#: Seconds a shard waits for a peer's exchange message (or the parent for a
#: shard's result) before declaring the window barrier deadlocked.
DEFAULT_BARRIER_TIMEOUT = 120.0

#: Executed-event skew (max shard / mean shard) above which the node->shard
#: assignment is recomputed between epochs.
SHARD_SKEW_THRESHOLD = 1.5

#: NodeState attributes that must not be shipped between processes: object
#: graph backlinks (`ps`, `node`, the bound cleanup method) stay the
#: parent's, and the in-flight tables (`outstanding`, `barrier_waiters`)
#: hold kernel events — they are asserted empty at epoch quiescence instead.
_STATE_SKIP = frozenset({"ps", "node", "_outstanding_cleanup", "outstanding", "barrier_waiters"})

#: WorkerClient attributes that must not be shipped (backlinks).
_CLIENT_SKIP = frozenset({"ps", "state"})


@dataclass(frozen=True)
class ShardPlan:
    """The node partition and synchronization constants of one parallel run."""

    num_shards: int
    #: node id -> shard rank (contiguous blocks initially; adaptive
    #: rebalancing may produce non-contiguous assignments).
    node_ranks: Dict[int, int]
    #: shard rank -> list of owned node ids.
    shard_nodes: List[List[int]]
    #: Conservative lookahead: minimum cross-node delivery latency.
    lookahead: float


def make_shard_plan(num_nodes: int, jobs: int, lookahead: float) -> ShardPlan:
    """Partition ``num_nodes`` nodes into ``min(jobs, num_nodes)`` contiguous shards."""
    num_shards = min(jobs, num_nodes)
    node_ranks: Dict[int, int] = {}
    shard_nodes: List[List[int]] = [[] for _ in range(num_shards)]
    for node in range(num_nodes):
        # Even contiguous blocks: shard r owns nodes [r*N/P, (r+1)*N/P).
        rank = node * num_shards // num_nodes
        node_ranks[node] = rank
        shard_nodes[rank].append(node)
    return ShardPlan(
        num_shards=num_shards,
        node_ranks=node_ranks,
        shard_nodes=shard_nodes,
        lookahead=lookahead,
    )


def rebalance_shard_plan(
    plan: ShardPlan, shard_events: Sequence[int], node_load: Dict[int, int]
) -> Tuple[ShardPlan, float]:
    """Recompute the node->shard assignment when per-shard load skews.

    Returns ``(plan, skew)``: the input plan unchanged while the
    executed-event skew (max shard / mean shard) stays at or below
    :data:`SHARD_SKEW_THRESHOLD`, otherwise a movement-minimizing
    reassignment weighted by per-node delivery counts — heaviest node first
    onto the least-loaded shard, preferring the node's current shard on
    ties so as few nodes move as possible (same spirit as
    ``ElasticPartitioner.rebalance``).  Deterministic: ties break by node
    id and shard rank.  Simulation results are plan-independent, so a
    replan only changes wall-clock behaviour.
    """
    num_shards = plan.num_shards
    total = sum(shard_events)
    if num_shards < 2 or total == 0:
        return plan, 1.0
    mean = total / num_shards
    skew = max(shard_events) / mean
    if skew <= SHARD_SKEW_THRESHOLD:
        return plan, skew
    nodes = sorted(plan.node_ranks)
    weights = {node: node_load.get(node, 0) for node in nodes}
    if not any(weights.values()):
        return plan, skew
    bins = [0] * num_shards
    node_ranks: Dict[int, int] = {}
    for node in sorted(nodes, key=lambda n: (-weights[n], n)):
        current = plan.node_ranks[node]
        rank = min(range(num_shards), key=lambda r: (bins[r], r != current, r))
        node_ranks[node] = rank
        bins[rank] += weights[node]
    shard_nodes: List[List[int]] = [[] for _ in range(num_shards)]
    for node in nodes:
        shard_nodes[node_ranks[node]].append(node)
    if any(not owned for owned in shard_nodes):
        # Degenerate weights left a shard empty; keep the current partition.
        return plan, skew
    return (
        ShardPlan(
            num_shards=num_shards,
            node_ranks=node_ranks,
            shard_nodes=shard_nodes,
            lookahead=plan.lookahead,
        ),
        skew,
    )


def parallel_fallback_reason(ps: Any, until: Optional[float] = None) -> Optional[str]:
    """Why this run cannot use the parallel engine (None when it can).

    The gate is conservative: anything the window-barrier protocol cannot
    replay deterministically falls back to the sequential engine.  Elastic
    membership changes (join/drain/rejoin) and durability logging shard
    fine since the membership-barrier and LSN-stitching machinery; failure
    *recovery* (a pending fail event) and WAL truncation do not.
    """
    if until is not None:
        return "a simulated-time cutoff was requested"
    if not ps.sim.fastpath:
        return "the reference engine is active (REPRO_DISABLE_FASTPATH)"
    driver = ps._elastic_driver
    if driver is None and ps.membership is not None:
        return "membership is attached without an elastic driver"
    if driver is not None:
        from repro.cluster.schedule import FAIL

        if any(event.kind == FAIL for event in driver._pending):
            return "a fail event is scheduled (failure recovery runs sequentially)"
        if driver._pending and driver._pending[0].time <= ps.sim.now:
            return "a membership event is already due at the epoch boundary"
    if ps.network.failed_nodes:
        return "cluster has failed nodes (failure recovery runs sequentially)"
    durability = getattr(ps, "durability", None)
    if durability is not None and durability.config.truncate_on_checkpoint:
        return "WAL truncation on checkpoint defeats shard LSN stitching"
    if ps.cluster.num_nodes < 2:
        return "cluster has a single node"
    if ps.cluster.cost_model.network_latency <= 0.0:
        return "cost model has no cross-node latency (zero lookahead)"
    if "fork" not in multiprocessing.get_all_start_methods():
        return "the platform does not support the fork start method"
    if multiprocessing.current_process().daemon:
        return "already inside a daemonic worker process"
    return None


# --------------------------------------------------------------------- child
def _snapshot_stats(stats: Any) -> Dict[str, Any]:
    return {
        "messages_sent": stats.messages_sent,
        "remote_messages": stats.remote_messages,
        "local_messages": stats.local_messages,
        "bytes_sent": stats.bytes_sent,
        "dropped_messages": stats.dropped_messages,
        "delivery_events": stats.delivery_events,
        "coalesced_messages": stats.coalesced_messages,
        "per_channel_messages": dict(stats.per_channel_messages),
    }


def _stats_delta(stats: Any, snapshot: Dict[str, Any]) -> Dict[str, Any]:
    delta = {
        name: getattr(stats, name) - snapshot[name]
        for name in (
            "messages_sent",
            "remote_messages",
            "local_messages",
            "bytes_sent",
            "dropped_messages",
            "delivery_events",
            "coalesced_messages",
        )
    }
    base = snapshot["per_channel_messages"]
    per_channel = {}
    for channel, count in stats.per_channel_messages.items():
        diff = count - base.get(channel, 0)
        if diff:
            per_channel[channel] = diff
    delta["per_channel_messages"] = per_channel
    return delta


def _strip_relocating(table: Dict[int, Any]) -> Dict[int, Any]:
    """Handle-free copy of a ``relocating_in`` table (for pickling).

    ``RelocatingKey`` entries carry localize handles and queued operations
    whose object graphs reach the simulator (generators — unpicklable).
    The barrier apply only reads an entry's existence and appends fresh
    handles, and an entry still pending at epoch quiescence can never
    complete (its transfer was dropped), so shipping the routing facts
    without the in-flight attachments is exact.
    """
    if not table:
        return {}
    cls = next(iter(table.values())).__class__
    return {
        key: cls(
            key=entry.key,
            requested_at=entry.requested_at,
            pending_new_owner=entry.pending_new_owner,
        )
        for key, entry in table.items()
    }


def _capture_barrier_state(ps: Any, plan: ShardPlan, rank: int) -> Dict[int, Dict]:
    """Control-plane state of this shard's nodes, for the barrier sync.

    The replicated membership-event apply reads three per-node structures
    that ordinary (owner-shard-only) message processing mutates: the
    parameter store (key residency), the home-location table, and the
    relocation-in-flight table.  Each shard ships its *owned* nodes' copies
    so every shard holds the identical merged image before the apply.
    """
    blob: Dict[int, Dict] = {}
    for node_id in plan.shard_nodes[rank]:
        state = ps.states[node_id]
        storage = state.storage
        entry: Dict[str, Any] = {"storage": getattr(storage, "inner", storage)}
        home = getattr(state, "home_location", None)
        if home is not None:
            entry["home_location"] = dict(home)
        relocating = getattr(state, "relocating_in", None)
        if relocating is not None:
            entry["relocating_in"] = _strip_relocating(relocating)
        blob[node_id] = entry
    return blob


def _install_barrier_state(ps: Any, blob: Dict[int, Dict]) -> None:
    """Install a peer shard's node state (foreign nodes only, by construction)."""
    durability = ps.durability
    for node_id, entry in blob.items():
        state = ps.states[node_id]
        storage = entry["storage"]
        if durability is not None:
            # Re-wrap in this process's WAL proxy to keep the durable-store
            # invariant; the epoch-end assertion verifies no foreign-node
            # append ever fires (the apply never mutates storage).
            storage = durability.wrap_fresh_storage(node_id, storage)
        state.storage = storage
        if "home_location" in entry:
            state.home_location = entry["home_location"]
        if "relocating_in" in entry:
            state.relocating_in = entry["relocating_in"]


def _shard_barrier(
    ps: Any,
    driver: Any,
    plan: ShardPlan,
    rank: int,
    conns: Dict[int, Any],
    timeout: float,
    barrier_time: float,
) -> None:
    """Fire the membership event(s) due at ``barrier_time`` on every shard.

    Reached once the global horizon proves every event and in-flight
    delivery at or below the barrier time has been processed.  All shards:
    advance the clock to the barrier instant, all-to-all exchange rebalance
    progress and control-plane state, finish globally completed rebalance
    operations (in completion-time order — the callbacks the sequential
    engine would already have fired), then execute the identical event
    apply against the identical merged state.
    """
    sim = ps.sim
    if sim._now < barrier_time:
        sim._now = barrier_time
    progress = driver.shard_op_progress()
    blob = _capture_barrier_state(ps, plan, rank)
    peers = [j for j in range(plan.num_shards) if j != rank]
    for j in peers:
        conns[j].send((progress, blob))
    progress_rows: List[Any] = [None] * plan.num_shards
    progress_rows[rank] = progress
    for j in peers:
        if not conns[j].poll(timeout):
            raise SimulationError(
                f"shard {rank}: no barrier-sync message from shard {j} "
                f"within {timeout}s (deadlocked membership barrier?)"
            )
        progress_j, blob_j = conns[j].recv()
        progress_rows[j] = progress_j
        _install_barrier_state(ps, blob_j)
    driver.finish_shard_ops(progress_rows)
    driver.apply_in_shard()


def _run_shard(
    ps: Any,
    rank: int,
    plan: ShardPlan,
    worker_fn: Callable[[Any, int], Generator],
    owned_clients: Sequence[Tuple[int, Any]],
    conns: Dict[int, Any],
    timeout: float,
) -> Dict[str, Any]:
    """Shard body: window loop plus the end-of-epoch state payload."""
    sim = ps.sim
    network = ps.network
    driver = ps._elastic_driver
    durability = ps.durability
    stats_snapshot = _snapshot_stats(network.stats)
    sim.enter_shard_mode(rank)
    network.enable_shard_mode(plan.node_ranks, rank)
    ps._op_counter = (rank + 1) * _OP_ID_STRIDE

    if durability is not None:
        wal_base: Dict[int, int] = {}
        checkpoint_base: Dict[int, int] = {}
        for node_id, wal in durability.wals.items():
            wal_base[node_id] = len(wal.records)
            checkpoint_base[node_id] = len(durability.checkpoints[node_id].checkpoints)
            wal.enable_shard_capture(sim.wal_order_key)
        lsn_base = durability.clock.last

    processes = []
    for index, client in owned_clients:
        generator = worker_fn(client, client.worker_id)
        processes.append(
            (index, sim.process(generator, name=f"worker-{client.worker_id}"))
        )

    peers = [j for j in range(plan.num_shards) if j != rank]
    node_ranks = plan.node_ranks
    lookahead = plan.lookahead
    infinity = float("inf")
    #: Latched barrier: once the global horizon reaches the next membership
    #: event's time, the shards commit to firing it and drain toward it.
    fire_at: Optional[float] = None
    while True:
        records = network.take_shard_outbox()
        per_peer: Dict[int, list] = {j: [] for j in peers}
        lo = infinity
        for record in records:
            # record = (deliver_at, lineage, dst_node, dst_address, payload)
            if record[0] < lo:
                lo = record[0]
            per_peer[node_ranks[record[2]]].append(record)
        next_local = sim.peek_time()
        if next_local is not None and next_local < lo:
            lo = next_local
        local_done = all(process.processed for _, process in processes)
        for j in peers:
            conns[j].send((per_peer[j], lo, local_done))
        horizon = lo
        all_done = local_done
        for j in peers:
            if not conns[j].poll(timeout):
                raise SimulationError(
                    f"shard {rank}: no window-exchange message from shard {j} "
                    f"within {timeout}s (deadlocked shard barrier?)"
                )
            records_j, lo_j, done_j = conns[j].recv()
            if lo_j < horizon:
                horizon = lo_j
            if not done_j:
                all_done = False
            for deliver_at, lineage, _dst_node, dst_address, payload in records_j:
                sim.schedule_foreign(
                    deliver_at, lineage, network.shard_put(dst_address), payload
                )
        # All latch/fire decisions below depend only on (horizon, all_done,
        # barrier_at), which are identical on every shard — so every shard
        # takes the same branch each round and the exchange stays framed.
        barrier_at = driver.shard_barrier_time() if driver is not None else None
        if fire_at is None and barrier_at is not None and horizon >= barrier_at:
            if horizon == infinity and all_done:
                # Workers finished and the cluster is quiescent: the epoch is
                # over and the event stays pending for a later epoch, exactly
                # as the sequential driver leaves it.
                break
            fire_at = barrier_at
        if fire_at is None:
            if horizon == infinity:
                break
            bound = horizon + lookahead
            if barrier_at is not None and barrier_at < bound:
                # Clip the window at the scheduled event: events at or past
                # its time must wait for the barrier apply.
                bound = barrier_at
            sim.run_window(bound)
            continue
        if horizon > fire_at:
            # Nothing anywhere is pending at or below the barrier time (the
            # horizon covers both local peeks and in-flight deliveries):
            # fire the membership event(s) on the synchronized state.
            _shard_barrier(ps, driver, plan, rank, conns, timeout, fire_at)
            fire_at = None
            continue
        if horizon + lookahead > fire_at:
            # The remaining work at or below the barrier time can no longer
            # generate deliveries at or below it (they would land past
            # horizon + lookahead): drain through the barrier instant
            # inclusively, as the sequential engine exhausts same-instant
            # work before firing the event.
            sim.run_window(fire_at, inclusive=True)
        else:
            sim.run_window(horizon + lookahead)

    unfinished = [process.name for _, process in processes if not process.processed]
    states: Dict[int, Dict[str, Any]] = {}
    for node_id in plan.shard_nodes[rank]:
        state = ps.states[node_id]
        if state.outstanding or state.barrier_waiters:
            raise SimulationError(
                f"shard {rank}: node {node_id} still has in-flight operations "
                "at epoch quiescence"
            )
        data = {
            name: value for name, value in vars(state).items() if name not in _STATE_SKIP
        }
        if durability is not None:
            # Ship the raw store: the WAL proxy's object graph reaches the
            # simulator (unpicklable) and the parent re-wraps on merge; the
            # log itself travels through the payload's durability section.
            data["storage"] = getattr(data["storage"], "inner", data["storage"])
        relocating = data.get("relocating_in")
        if relocating:
            data["relocating_in"] = _strip_relocating(relocating)
        states[node_id] = data
    payload = {
        "rank": rank,
        "now": sim._now,
        "sequence": sim._sequence,
        "states": states,
        "node_rngs": {node_id: ps.nodes[node_id].rng for node_id in plan.shard_nodes[rank]},
        "clients": {
            index: {
                name: value
                for name, value in vars(client).items()
                if name not in _CLIENT_SKIP
            }
            for index, client in owned_clients
        },
        "channel_clocks": {
            channel: clock.last
            for channel, clock in network._channel_clock.items()
            if node_ranks[channel[0]] == rank
        },
        "stats_delta": _stats_delta(network.stats, stats_snapshot),
        "worker_results": {index: process.value for index, process in processes},
        "unfinished": unfinished,
        "executed_events": sim.executed_events,
        "node_load": dict(network.node_load),
    }
    if driver is not None:
        payload["elastic"] = driver.shard_epoch_summary(rank)
    if durability is not None:
        owned: Set[int] = set(plan.shard_nodes[rank])
        for node_id, wal in durability.wals.items():
            if node_id not in owned and len(wal.records) != wal_base[node_id]:
                raise SimulationError(
                    f"shard {rank}: the WAL of non-owned node {node_id} grew "
                    "during the epoch (appends must be owner-shard-local)"
                )
        payload["durability"] = {
            "lsn_base": lsn_base,
            "records": {
                node_id: (
                    durability.wals[node_id].records[wal_base[node_id]:],
                    durability.wals[node_id].shard_keys,
                )
                for node_id in plan.shard_nodes[rank]
            },
            "checkpoints": {
                node_id: durability.checkpoints[node_id].checkpoints[
                    checkpoint_base[node_id]:
                ]
                for node_id in plan.shard_nodes[rank]
            },
            "next_checkpoint_at": {
                node_id: durability._next_checkpoint_at[node_id]
                for node_id in plan.shard_nodes[rank]
                if node_id in durability._next_checkpoint_at
            },
        }
    return payload


def _shard_child_main(
    ps: Any,
    rank: int,
    plan: ShardPlan,
    worker_fn: Callable[[Any, int], Generator],
    owned_clients: Sequence[Tuple[int, Any]],
    conns: Dict[int, Any],
    result_conn: Any,
    timeout: float,
) -> None:
    try:
        payload = _run_shard(ps, rank, plan, worker_fn, owned_clients, conns, timeout)
    except BaseException:
        payload = {"rank": rank, "error": traceback.format_exc()}
    result_conn.send(payload)
    result_conn.close()
    # Skip atexit/teardown inherited from the parent: the forked image must
    # not flush the parent's buffers or tear down shared resources twice.
    os._exit(0)


# -------------------------------------------------------------------- parent
def _apply_payload(ps: Any, plan: ShardPlan, clients: Sequence[Any], payload: Dict) -> None:
    """Merge one shard's end-of-epoch state into the parent image."""
    network = ps.network
    for node_id, data in payload["states"].items():
        # In-place update: sinks, clients, and lanes hold references to the
        # original NodeState object, which must stay identical.
        state = ps.states[node_id]
        vars(state).update(data)
        if ps.durability is not None:
            state.storage = ps.durability.wrap_fresh_storage(node_id, state.storage)
            # The shipped payload replaced the metrics object the node's WAL
            # was constructed with; re-point it so later appends (parent-side
            # or in next epoch's children) keep counting on the live object.
            ps.durability.wals[node_id].metrics = state.metrics
    for node_id, rng in payload["node_rngs"].items():
        ps.nodes[node_id].rng = rng
    for index, data in payload["clients"].items():
        vars(clients[index]).update(data)
    for channel, last in payload["channel_clocks"].items():
        clock = network._channel_clock.get(channel)
        if clock is None:
            from repro.simnet.network import _ChannelClock

            clock = network._channel_clock[channel] = _ChannelClock()
        clock.last = last
    stats = network.stats
    delta = payload["stats_delta"]
    stats.messages_sent += delta["messages_sent"]
    stats.remote_messages += delta["remote_messages"]
    stats.local_messages += delta["local_messages"]
    stats.bytes_sent += delta["bytes_sent"]
    stats.dropped_messages += delta["dropped_messages"]
    stats.delivery_events += delta["delivery_events"]
    stats.coalesced_messages += delta["coalesced_messages"]
    per_channel = stats.per_channel_messages
    for channel, count in delta["per_channel_messages"].items():
        per_channel[channel] = per_channel.get(channel, 0) + count


def _merge_durability(ps: Any, payloads: Sequence[Dict]) -> None:
    """Stitch the shards' WAL segments into the cluster LSN total order.

    Each shard logged its owned nodes' mutations with provisional LSNs from
    its forked clock and captured one global order key per record.  Sorting
    every shard's post-fork records by that key reproduces the sequential
    engine's append interleaving; final LSNs are assigned in that order,
    shipped checkpoints are remapped through the per-shard provisional ->
    final table, and the cluster clock advances past the merged suffix.
    Per-node record order is preserved (a node's records come from exactly
    one shard, already in append order), so ``records_since`` bisection and
    replay behave identically to a sequential run.
    """
    manager = ps.durability
    lsn_base = manager.clock.last
    entries: List[Tuple[Tuple, int, int, Any]] = []
    for payload in payloads:
        segment = payload["durability"]
        if segment["lsn_base"] != lsn_base:
            raise SimulationError(
                "parallel engine: shard forked from a different LSN clock "
                f"({segment['lsn_base']} != {lsn_base})"
            )
        rank = payload["rank"]
        for node_id, (records, keys) in segment["records"].items():
            for record, key in zip(records, keys):
                entries.append((key, rank, node_id, record))
    entries.sort(key=lambda entry: entry[0])
    final_map: Dict[int, Dict[int, int]] = {payload["rank"]: {} for payload in payloads}
    lsn = lsn_base
    for key, rank, node_id, record in entries:
        lsn += 1
        final_map[rank][record.lsn] = lsn
        record.lsn = lsn
        wal = manager.wals[node_id]
        wal.records.append(record)
        wal._last_lsn = lsn
    manager.clock._last = lsn
    for payload in payloads:
        segment = payload["durability"]
        mapping = final_map[payload["rank"]]
        for node_id, checkpoints in segment["checkpoints"].items():
            store = manager.checkpoints[node_id]
            for checkpoint in checkpoints:
                if checkpoint.lsn > lsn_base:
                    checkpoint.lsn = mapping[checkpoint.lsn]
                store.add(checkpoint)
        manager._next_checkpoint_at.update(segment["next_checkpoint_at"])


def run_workers_parallel(
    ps: Any,
    worker_fn: Callable[[Any, int], Generator],
    clients: Sequence[Any],
    jobs: int,
    timeout: float = DEFAULT_BARRIER_TIMEOUT,
) -> List[Any]:
    """Run one driver epoch on the parallel engine (caller checked eligibility).

    Forks ``min(jobs, num_nodes)`` shard processes, runs the conservative
    window protocol (with membership barriers on elastic clusters) to
    quiescence, merges the shards' state — node tables, WAL segments,
    membership outcome — back into the parent, and returns the worker
    return values in ``clients`` order — exactly the contract of the
    sequential ``run_workers``.  Epochs re-fork from the adaptively
    rebalanced :class:`ShardPlan` recorded on the server.
    """
    from repro.ps.base import ParameterServerError

    sim = ps.sim
    # Drain everything scheduled at or below the current time (coordinator
    # bootstrap, stray zero-delay events) so the children fork a quiescent
    # image whose heap holds only future events.
    while sim._ring or (sim._queue and sim._queue[0][0] <= sim._now):
        sim.step()

    num_nodes = ps.cluster.num_nodes
    lookahead = ps.cluster.cost_model.network_latency
    plan = getattr(ps, "_adaptive_shard_plan", None)
    if (
        plan is None
        or plan.num_shards != min(jobs, num_nodes)
        or len(plan.node_ranks) != num_nodes
        or plan.lookahead != lookahead
    ):
        plan = make_shard_plan(num_nodes, jobs, lookahead)
    owned: List[List[Tuple[int, Any]]] = [[] for _ in range(plan.num_shards)]
    for index, client in enumerate(clients):
        owned[plan.node_ranks[client.node_id]].append((index, client))

    ctx = multiprocessing.get_context("fork")
    # Pairwise duplex pipes for the window exchange: conns[i][j] is shard
    # i's connection to shard j.  Per-peer channels keep rounds framed (one
    # recv per peer per round) without any cross-round buffering.
    conns: List[Dict[int, Any]] = [{} for _ in range(plan.num_shards)]
    for i in range(plan.num_shards):
        for j in range(i + 1, plan.num_shards):
            end_i, end_j = ctx.Pipe(duplex=True)
            conns[i][j] = end_i
            conns[j][i] = end_j
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(plan.num_shards)]

    children = []
    try:
        for rank in range(plan.num_shards):
            child = ctx.Process(
                target=_shard_child_main,
                args=(
                    ps,
                    rank,
                    plan,
                    worker_fn,
                    owned[rank],
                    conns[rank],
                    result_pipes[rank][1],
                    timeout,
                ),
                name=f"sim-shard-{rank}",
            )
            child.daemon = True
            child.start()
            children.append(child)
        # The parent's copies of the exchange fds are not used; close them so
        # repeated epochs do not accumulate descriptors.
        for rank in range(plan.num_shards):
            for conn in conns[rank].values():
                conn.close()
            result_pipes[rank][1].close()

        payloads: List[Optional[Dict]] = [None] * plan.num_shards
        for rank in range(plan.num_shards):
            receiver = result_pipes[rank][0]
            if not receiver.poll(timeout):
                raise ParameterServerError(
                    f"parallel engine: shard {rank} produced no result within "
                    f"{timeout}s (deadlocked shard barrier?)"
                )
            payloads[rank] = receiver.recv()
        for child in children:
            child.join()
    finally:
        for child in children:
            if child.is_alive():
                child.terminate()
                child.join()
        for rank in range(plan.num_shards):
            result_pipes[rank][0].close()

    errors = [p["error"] for p in payloads if p is not None and "error" in p]
    if errors:
        raise ParameterServerError(
            "parallel engine: shard process failed:\n" + "\n".join(errors)
        )
    unfinished = [name for p in payloads for name in p["unfinished"]]
    if unfinished:
        raise ParameterServerError(
            f"worker process {unfinished[0]} did not finish "
            "(deadlock or time limit reached)"
        )

    results: List[Any] = [None] * len(clients)
    final_now = sim._now
    final_sequence = sim._sequence
    for payload in payloads:
        _apply_payload(ps, plan, clients, payload)
        for index, value in payload["worker_results"].items():
            results[index] = value
        if payload["now"] > final_now:
            final_now = payload["now"]
        if payload["sequence"] > final_sequence:
            final_sequence = payload["sequence"]
    sim._now = final_now
    sim._sequence = final_sequence
    if ps._elastic_driver is not None:
        ps._elastic_driver.merge_shard_epoch(
            [payload["elastic"] for payload in payloads]
        )
    if ps.durability is not None:
        _merge_durability(ps, payloads)

    # Adaptive shard rebalancing: replan between epochs when the executed
    # event counts skew, so one hot shard stops serializing the run.
    shard_events = [payload["executed_events"] for payload in payloads]
    node_load: Dict[int, int] = {}
    for payload in payloads:
        for node_id, count in payload["node_load"].items():
            node_load[node_id] = node_load.get(node_id, 0) + count
    next_plan, skew = rebalance_shard_plan(plan, shard_events, node_load)
    ps._adaptive_shard_plan = next_plan
    if ps.shard_load_history is None:
        ps.shard_load_history = []
    ps.shard_load_history.append(
        {
            "jobs": plan.num_shards,
            "shard_events": shard_events,
            "skew": skew,
            "node_ranks": dict(next_plan.node_ranks),
            "replanned": next_plan is not plan,
        }
    )
    return results


#: Fallback reasons already warned about in this process (one warning per
#: distinct reason — a repeated-reason sweep stays quiet, a second distinct
#: reason still surfaces).
_warned_fallback_reasons: Set[str] = set()


def warn_parallel_fallback(reason: str) -> None:
    """Emit the fallback warning mandated by the engine contract.

    Deduplicated per *reason* per process: the first occurrence of each
    distinct reason warns, repeats stay silent.
    """
    if reason in _warned_fallback_reasons:
        return
    _warned_fallback_reasons.add(reason)
    warnings.warn(
        f"parallel engine: falling back to jobs=1 ({reason})",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_fallback_warnings() -> None:
    """Forget previously warned fallback reasons (test isolation)."""
    _warned_fallback_reasons.clear()
