"""Conservative parallel discrete-event engine: shard nodes across cores.

The sequential kernel executes every simulated node's events on one Python
core.  This module forks the fully constructed simulation into ``P`` shard
processes at each driver epoch (``ParameterServer.run_workers``), gives each
shard a contiguous block of nodes, and synchronizes the shards with
**conservative time windows**:

* **Lookahead.**  Every cross-node message is charged at least
  ``CostModel.network_latency`` of delay (``message_time(size) = latency +
  size / bandwidth``), and the per-channel FIFO clocks only push deliveries
  *later*.  Therefore a message sent at simulated time ``t`` is delivered no
  earlier than ``t + L`` with ``L = network_latency`` — the classic
  lookahead bound of a conservative parallel DES.
* **Windows.**  Each round, every shard announces ``lo_i = min(`` earliest
  pending local event, earliest delivery of the records it just shipped
  ``)`` and all shards agree on the global horizon ``G = min_i lo_i``.
  Events in ``[G, G + L)`` cannot be influenced by any not-yet-exchanged
  message (those arrive at ``>= G + L``), so each shard processes its own
  events below ``G + L`` without coordination, then exchanges the newly
  generated cross-shard records and repeats.  ``G == inf`` on every shard
  means global quiescence: the epoch is done.
* **Determinism.**  Every shard-mode event is keyed by a recursive
  *lineage* tuple ``(sched_time,) + parent_lineage + (shard, seq)`` (see
  the :mod:`repro.simnet.kernel` module docstring), and cross-shard records
  merge into the receiver's heap under the sender's lineage, which
  reproduces the sequential engine's global sequence order.
  The identity sweep in ``tests/experiments/test_parallel_identity.py``
  holds the result to the same bit-identity bar as every prior engine
  change.

Shards are forked with :mod:`multiprocessing`'s ``fork`` start method, so
each child inherits the whole object graph (parameter server, trainers,
numpy state) copy-on-write.  At the end of the epoch each child ships the
mutated state of *its* nodes back through a pipe — node storage and policy
tables, worker RNGs and clocks, channel clocks of the channels it owns, and
traffic-counter deltas — and the parent merges them so the next epoch forks
from an up-to-date image.

Workloads the window protocol cannot shard (elastic mid-run membership
changes, durability recovery, single-node clusters, zero network latency,
the reference engine) are detected by :func:`parallel_fallback_reason` and
fall back to the sequential engine with a warning.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

#: Op-id namespace stride: shard ``r`` draws operation ids above
#: ``(r + 1) << 48``, so concurrently issued ops never collide.  Op ids are
#: transient (handles complete within the epoch) and never enter message
#: sizes, so the namespacing is unobservable in simulation results.
_OP_ID_STRIDE = 1 << 48

#: Seconds a shard waits for a peer's exchange message (or the parent for a
#: shard's result) before declaring the window barrier deadlocked.
DEFAULT_BARRIER_TIMEOUT = 120.0

#: NodeState attributes that must not be shipped between processes: object
#: graph backlinks (`ps`, `node`, the bound cleanup method) stay the
#: parent's, and the in-flight tables (`outstanding`, `barrier_waiters`)
#: hold kernel events — they are asserted empty at epoch quiescence instead.
_STATE_SKIP = frozenset({"ps", "node", "_outstanding_cleanup", "outstanding", "barrier_waiters"})

#: WorkerClient attributes that must not be shipped (backlinks).
_CLIENT_SKIP = frozenset({"ps", "state"})


@dataclass(frozen=True)
class ShardPlan:
    """The node partition and synchronization constants of one parallel run."""

    num_shards: int
    #: node id -> shard rank (contiguous blocks).
    node_ranks: Dict[int, int]
    #: shard rank -> list of owned node ids.
    shard_nodes: List[List[int]]
    #: Conservative lookahead: minimum cross-node delivery latency.
    lookahead: float


def make_shard_plan(num_nodes: int, jobs: int, lookahead: float) -> ShardPlan:
    """Partition ``num_nodes`` nodes into ``min(jobs, num_nodes)`` contiguous shards."""
    num_shards = min(jobs, num_nodes)
    node_ranks: Dict[int, int] = {}
    shard_nodes: List[List[int]] = [[] for _ in range(num_shards)]
    for node in range(num_nodes):
        # Even contiguous blocks: shard r owns nodes [r*N/P, (r+1)*N/P).
        rank = node * num_shards // num_nodes
        node_ranks[node] = rank
        shard_nodes[rank].append(node)
    return ShardPlan(
        num_shards=num_shards,
        node_ranks=node_ranks,
        shard_nodes=shard_nodes,
        lookahead=lookahead,
    )


def parallel_fallback_reason(ps: Any, until: Optional[float] = None) -> Optional[str]:
    """Why this run cannot use the parallel engine (None when it can).

    The gate is conservative: anything that mutates cross-node state outside
    the message plane (elastic membership changes, durability recovery) or
    breaks the lookahead bound falls back to the sequential engine.
    """
    if until is not None:
        return "a simulated-time cutoff was requested"
    if not ps.sim.fastpath:
        return "the reference engine is active (REPRO_DISABLE_FASTPATH)"
    if ps._elastic_driver is not None or ps.membership is not None:
        return "elastic cluster runtime is attached"
    if getattr(ps, "durability", None) is not None:
        return "durability subsystem is active"
    if ps.cluster.num_nodes < 2:
        return "cluster has a single node"
    if ps.network.failed_nodes:
        return "cluster has failed nodes"
    if ps.cluster.cost_model.network_latency <= 0.0:
        return "cost model has no cross-node latency (zero lookahead)"
    if "fork" not in multiprocessing.get_all_start_methods():
        return "the platform does not support the fork start method"
    if multiprocessing.current_process().daemon:
        return "already inside a daemonic worker process"
    return None


# --------------------------------------------------------------------- child
def _snapshot_stats(stats: Any) -> Dict[str, Any]:
    return {
        "messages_sent": stats.messages_sent,
        "remote_messages": stats.remote_messages,
        "local_messages": stats.local_messages,
        "bytes_sent": stats.bytes_sent,
        "dropped_messages": stats.dropped_messages,
        "delivery_events": stats.delivery_events,
        "coalesced_messages": stats.coalesced_messages,
        "per_channel_messages": dict(stats.per_channel_messages),
    }


def _stats_delta(stats: Any, snapshot: Dict[str, Any]) -> Dict[str, Any]:
    delta = {
        name: getattr(stats, name) - snapshot[name]
        for name in (
            "messages_sent",
            "remote_messages",
            "local_messages",
            "bytes_sent",
            "dropped_messages",
            "delivery_events",
            "coalesced_messages",
        )
    }
    base = snapshot["per_channel_messages"]
    per_channel = {}
    for channel, count in stats.per_channel_messages.items():
        diff = count - base.get(channel, 0)
        if diff:
            per_channel[channel] = diff
    delta["per_channel_messages"] = per_channel
    return delta


def _run_shard(
    ps: Any,
    rank: int,
    plan: ShardPlan,
    worker_fn: Callable[[Any, int], Generator],
    owned_clients: Sequence[Tuple[int, Any]],
    conns: Dict[int, Any],
    timeout: float,
) -> Dict[str, Any]:
    """Shard body: window loop plus the end-of-epoch state payload."""
    sim = ps.sim
    network = ps.network
    stats_snapshot = _snapshot_stats(network.stats)
    sim.enter_shard_mode(rank)
    network.enable_shard_mode(plan.node_ranks, rank)
    ps._op_counter = (rank + 1) * _OP_ID_STRIDE

    processes = []
    for index, client in owned_clients:
        generator = worker_fn(client, client.worker_id)
        processes.append(
            (index, sim.process(generator, name=f"worker-{client.worker_id}"))
        )

    peers = [j for j in range(plan.num_shards) if j != rank]
    node_ranks = plan.node_ranks
    lookahead = plan.lookahead
    infinity = float("inf")
    while True:
        records = network.take_shard_outbox()
        per_peer: Dict[int, list] = {j: [] for j in peers}
        lo = infinity
        for record in records:
            # record = (deliver_at, lineage, dst_node, dst_address, payload)
            if record[0] < lo:
                lo = record[0]
            per_peer[node_ranks[record[2]]].append(record)
        next_local = sim.peek_time()
        if next_local is not None and next_local < lo:
            lo = next_local
        for j in peers:
            conns[j].send((per_peer[j], lo))
        horizon = lo
        for j in peers:
            if not conns[j].poll(timeout):
                raise SimulationError(
                    f"shard {rank}: no window-exchange message from shard {j} "
                    f"within {timeout}s (deadlocked shard barrier?)"
                )
            records_j, lo_j = conns[j].recv()
            if lo_j < horizon:
                horizon = lo_j
            for deliver_at, lineage, _dst_node, dst_address, payload in records_j:
                sim.schedule_foreign(
                    deliver_at, lineage, network.shard_put(dst_address), payload
                )
        if horizon == infinity:
            break
        sim.run_window(horizon + lookahead)

    unfinished = [process.name for _, process in processes if not process.processed]
    states: Dict[int, Dict[str, Any]] = {}
    for node_id in plan.shard_nodes[rank]:
        state = ps.states[node_id]
        if state.outstanding or state.barrier_waiters:
            raise SimulationError(
                f"shard {rank}: node {node_id} still has in-flight operations "
                "at epoch quiescence"
            )
        states[node_id] = {
            name: value for name, value in vars(state).items() if name not in _STATE_SKIP
        }
    return {
        "rank": rank,
        "now": sim._now,
        "sequence": sim._sequence,
        "states": states,
        "node_rngs": {node_id: ps.nodes[node_id].rng for node_id in plan.shard_nodes[rank]},
        "clients": {
            index: {
                name: value
                for name, value in vars(client).items()
                if name not in _CLIENT_SKIP
            }
            for index, client in owned_clients
        },
        "channel_clocks": {
            channel: clock.last
            for channel, clock in network._channel_clock.items()
            if node_ranks[channel[0]] == rank
        },
        "stats_delta": _stats_delta(network.stats, stats_snapshot),
        "worker_results": {index: process.value for index, process in processes},
        "unfinished": unfinished,
    }


def _shard_child_main(
    ps: Any,
    rank: int,
    plan: ShardPlan,
    worker_fn: Callable[[Any, int], Generator],
    owned_clients: Sequence[Tuple[int, Any]],
    conns: Dict[int, Any],
    result_conn: Any,
    timeout: float,
) -> None:
    try:
        payload = _run_shard(ps, rank, plan, worker_fn, owned_clients, conns, timeout)
    except BaseException:
        payload = {"rank": rank, "error": traceback.format_exc()}
    result_conn.send(payload)
    result_conn.close()
    # Skip atexit/teardown inherited from the parent: the forked image must
    # not flush the parent's buffers or tear down shared resources twice.
    os._exit(0)


# -------------------------------------------------------------------- parent
def _apply_payload(ps: Any, plan: ShardPlan, clients: Sequence[Any], payload: Dict) -> None:
    """Merge one shard's end-of-epoch state into the parent image."""
    network = ps.network
    for node_id, data in payload["states"].items():
        # In-place update: sinks, clients, and lanes hold references to the
        # original NodeState object, which must stay identical.
        vars(ps.states[node_id]).update(data)
    for node_id, rng in payload["node_rngs"].items():
        ps.nodes[node_id].rng = rng
    for index, data in payload["clients"].items():
        vars(clients[index]).update(data)
    for channel, last in payload["channel_clocks"].items():
        clock = network._channel_clock.get(channel)
        if clock is None:
            from repro.simnet.network import _ChannelClock

            clock = network._channel_clock[channel] = _ChannelClock()
        clock.last = last
    stats = network.stats
    delta = payload["stats_delta"]
    stats.messages_sent += delta["messages_sent"]
    stats.remote_messages += delta["remote_messages"]
    stats.local_messages += delta["local_messages"]
    stats.bytes_sent += delta["bytes_sent"]
    stats.dropped_messages += delta["dropped_messages"]
    stats.delivery_events += delta["delivery_events"]
    stats.coalesced_messages += delta["coalesced_messages"]
    per_channel = stats.per_channel_messages
    for channel, count in delta["per_channel_messages"].items():
        per_channel[channel] = per_channel.get(channel, 0) + count


def run_workers_parallel(
    ps: Any,
    worker_fn: Callable[[Any, int], Generator],
    clients: Sequence[Any],
    jobs: int,
    timeout: float = DEFAULT_BARRIER_TIMEOUT,
) -> List[Any]:
    """Run one driver epoch on the parallel engine (caller checked eligibility).

    Forks ``min(jobs, num_nodes)`` shard processes, runs the conservative
    window protocol to quiescence, merges the shards' state back into the
    parent, and returns the worker return values in ``clients`` order —
    exactly the contract of the sequential ``run_workers``.
    """
    from repro.ps.base import ParameterServerError

    sim = ps.sim
    # Drain everything scheduled at or below the current time (coordinator
    # bootstrap, stray zero-delay events) so the children fork a quiescent
    # image whose heap holds only future events.
    while sim._ring or (sim._queue and sim._queue[0][0] <= sim._now):
        sim.step()

    plan = make_shard_plan(
        ps.cluster.num_nodes, jobs, ps.cluster.cost_model.network_latency
    )
    owned: List[List[Tuple[int, Any]]] = [[] for _ in range(plan.num_shards)]
    for index, client in enumerate(clients):
        owned[plan.node_ranks[client.node_id]].append((index, client))

    ctx = multiprocessing.get_context("fork")
    # Pairwise duplex pipes for the window exchange: conns[i][j] is shard
    # i's connection to shard j.  Per-peer channels keep rounds framed (one
    # recv per peer per round) without any cross-round buffering.
    conns: List[Dict[int, Any]] = [{} for _ in range(plan.num_shards)]
    for i in range(plan.num_shards):
        for j in range(i + 1, plan.num_shards):
            end_i, end_j = ctx.Pipe(duplex=True)
            conns[i][j] = end_i
            conns[j][i] = end_j
    result_pipes = [ctx.Pipe(duplex=False) for _ in range(plan.num_shards)]

    children = []
    try:
        for rank in range(plan.num_shards):
            child = ctx.Process(
                target=_shard_child_main,
                args=(
                    ps,
                    rank,
                    plan,
                    worker_fn,
                    owned[rank],
                    conns[rank],
                    result_pipes[rank][1],
                    timeout,
                ),
                name=f"sim-shard-{rank}",
            )
            child.daemon = True
            child.start()
            children.append(child)
        # The parent's copies of the exchange fds are not used; close them so
        # repeated epochs do not accumulate descriptors.
        for rank in range(plan.num_shards):
            for conn in conns[rank].values():
                conn.close()
            result_pipes[rank][1].close()

        payloads: List[Optional[Dict]] = [None] * plan.num_shards
        for rank in range(plan.num_shards):
            receiver = result_pipes[rank][0]
            if not receiver.poll(timeout):
                raise ParameterServerError(
                    f"parallel engine: shard {rank} produced no result within "
                    f"{timeout}s (deadlocked shard barrier?)"
                )
            payloads[rank] = receiver.recv()
        for child in children:
            child.join()
    finally:
        for child in children:
            if child.is_alive():
                child.terminate()
                child.join()
        for rank in range(plan.num_shards):
            result_pipes[rank][0].close()

    errors = [p["error"] for p in payloads if p is not None and "error" in p]
    if errors:
        raise ParameterServerError(
            "parallel engine: shard process failed:\n" + "\n".join(errors)
        )
    unfinished = [name for p in payloads for name in p["unfinished"]]
    if unfinished:
        raise ParameterServerError(
            f"worker process {unfinished[0]} did not finish "
            "(deadlock or time limit reached)"
        )

    results: List[Any] = [None] * len(clients)
    final_now = sim._now
    final_sequence = sim._sequence
    for payload in payloads:
        _apply_payload(ps, plan, clients, payload)
        for index, value in payload["worker_results"].items():
            results[index] = value
        if payload["now"] > final_now:
            final_now = payload["now"]
        if payload["sequence"] > final_sequence:
            final_sequence = payload["sequence"]
    sim._now = final_now
    sim._sequence = final_sequence
    return results


def warn_parallel_fallback(reason: str) -> None:
    """Emit the (single-line) fallback warning mandated by the engine contract."""
    warnings.warn(
        f"parallel engine: falling back to jobs=1 ({reason})",
        RuntimeWarning,
        stacklevel=3,
    )
