"""Node abstraction: a simulated machine hosting server and worker threads.

A :class:`Node` owns the addresses of its server thread and worker threads on
the shared :class:`~repro.simnet.network.Network`, plus a per-node random
number generator derived deterministically from the cluster seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Tuple

import numpy as np

from repro.config import ClusterConfig, derive_seed
from repro.errors import NetworkError
from repro.simnet.network import Network
from repro.simnet.queues import MessageQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.kernel import Simulator


def server_address(node: int) -> Tuple[str, int]:
    """Return the network address of the server thread on ``node``."""
    return ("server", node)


def worker_address(node: int, local_worker: int) -> Tuple[str, int, int]:
    """Return the network address of worker ``local_worker`` on ``node``."""
    return ("worker", node, local_worker)


class Node:
    """A simulated machine: one server thread plus several worker threads."""

    def __init__(
        self,
        sim: "Simulator",
        network: Network,
        node_id: int,
        config: ClusterConfig,
    ) -> None:
        if not 0 <= node_id < config.num_nodes:
            raise NetworkError(
                f"node id {node_id} out of range [0, {config.num_nodes})"
            )
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.config = config
        self.rng = np.random.default_rng(derive_seed(config.seed, node_id))
        #: Inbox of the server thread.
        self.server_inbox: MessageQueue = network.register(server_address(node_id), node_id)
        #: Inboxes of the worker threads, indexed by local worker id.
        self.worker_inboxes = [
            network.register(worker_address(node_id, w), node_id)
            for w in range(config.workers_per_node)
        ]

    @property
    def num_workers(self) -> int:
        """Number of worker threads on this node."""
        return self.config.workers_per_node

    # ------------------------------------------------------------ lifecycle
    @property
    def alive(self) -> bool:
        """Whether this node is still connected to the network."""
        return self.node_id not in self.network.failed_nodes

    def fail(self) -> None:
        """Crash this node: all its subsequent traffic is dropped."""
        self.network.fail_node(self.node_id)

    def worker_rng(self, local_worker: int) -> np.random.Generator:
        """Return a deterministic RNG for worker ``local_worker`` on this node."""
        if not 0 <= local_worker < self.num_workers:
            raise NetworkError(
                f"worker {local_worker} out of range [0, {self.num_workers})"
            )
        return np.random.default_rng(derive_seed(self.config.seed, self.node_id, local_worker + 1))

    def send_to_server(self, dst_node: int, payload, size_bytes: int) -> None:
        """Send a message from this node to the server thread of ``dst_node``."""
        self.network.send(self.node_id, server_address(dst_node), payload, size_bytes)

    def send_to_worker(
        self, dst_node: int, local_worker: int, payload, size_bytes: int
    ) -> None:
        """Send a message from this node to a worker thread on ``dst_node``."""
        self.network.send(
            self.node_id, worker_address(dst_node, local_worker), payload, size_bytes
        )

    def send(self, dst_address: Hashable, payload, size_bytes: int) -> None:
        """Send a message from this node to an arbitrary registered address."""
        self.network.send(self.node_id, dst_address, payload, size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Node {self.node_id} ({self.num_workers} workers)>"
