"""FIFO message queues for communication between simulation processes.

:class:`MessageQueue` is the simulated analogue of an in-memory channel or a
thread-safe queue: producers :meth:`put` items (instantaneously), consumers
:meth:`get` an event that triggers as soon as an item is available.  Items are
delivered in FIFO order; if several consumers are waiting, they are served in
the order they asked.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque

from repro.simnet.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.kernel import Simulator


class MessageQueue:
    """An unbounded FIFO queue connecting simulation processes."""

    __slots__ = ("sim", "_items", "_getters", "_total_put")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._total_put = 0

    def __len__(self) -> int:
        """Number of items currently buffered (not yet handed to a getter)."""
        return len(self._items)

    @property
    def total_put(self) -> int:
        """Total number of items ever put into the queue."""
        return self._total_put

    @property
    def waiting_getters(self) -> int:
        """Number of get() events currently waiting for an item."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Add ``item`` to the queue, waking the oldest waiting getter if any."""
        self._total_put += 1
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next item.

        The event is pooled: ``get`` is called once per server/van loop
        iteration, making getter events one of the most allocated objects on
        the hot path.  Callers (the waiting process) do not retain the event
        past its processing, which is the pool-safety requirement.
        """
        event = self.sim.acquire_event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_all(self) -> list:
        """Return a snapshot of the currently buffered items (for inspection)."""
        return list(self._items)
