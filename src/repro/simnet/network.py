"""Point-to-point network model with ordered delivery and a cost model.

The network connects *addresses* (arbitrary hashable identifiers, e.g.
``("server", 2)`` or ``("worker", 2, 1)``).  Each address is backed by a
:class:`~repro.simnet.queues.MessageQueue`.  Sending a message charges the
:class:`~repro.config.CostModel`:

* remote messages (different nodes): ``network_latency + size / bandwidth``,
* local messages (same node, e.g. a worker talking to its co-located server
  thread through inter-process communication): ``ipc_access_latency``.

Delivery on each directed node pair is FIFO — a message sent earlier is never
delivered after one sent later on the same channel.  This mirrors the paper's
assumption that the network layer (TCP in PS-Lite and Lapse) preserves message
order, which both consistency theorems rely on.

Hot-path design (docs/architecture.md, "Simulation engine performance"):

* **Per-lane state** — each (source node, destination address) pair resolves
  once to a :class:`_Lane` carrying the destination node, mailbox, channel
  key, and delivery clock, so a send performs a single dict lookup instead of
  separate address/node/clock lookups.
* **Message coalescing** — wire messages that would be *delivered* to the same
  address at the same simulated instant share one kernel delivery event; their
  payloads are handed to the mailbox in global send order, which is exactly
  the order the per-message delivery events would have produced (all same-time
  deliveries to one single-consumer mailbox are order-equivalent to their
  batched form).  Coalescing changes only the number of *kernel events*, never
  the number of simulated messages: :class:`NetworkStats` keeps counting one
  logical message per ``send`` call, and additionally reports
  ``delivery_events`` / ``coalesced_messages`` so the physical batching is
  observable.  Disabled when the simulator was built under
  ``REPRO_DISABLE_FASTPATH=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Tuple

from repro.config import CostModel
from repro.errors import NetworkError
from repro.simnet.queues import MessageQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.kernel import Simulator


@dataclass(slots=True)
class NetworkStats:
    """Aggregate traffic counters maintained by :class:`Network`.

    Attributes:
        messages_sent: Total number of messages (local + remote).
        remote_messages: Messages that crossed node boundaries.
        local_messages: Messages delivered within a node (IPC loopback).
        bytes_sent: Total payload bytes of remote messages.
        per_channel_messages: Remote message counts keyed by (src_node, dst_node).
        dropped_messages: Messages blackholed because their source or
            destination node had failed (elastic cluster runtime).
        delivery_events: Kernel delivery events scheduled (coalesced batches
            count once).  Equals ``messages_sent - coalesced_messages``
            (dropped messages are never counted in ``messages_sent``).
        coalesced_messages: Messages that shared a previously scheduled
            delivery event (same destination address and delivery instant).
    """

    messages_sent: int = 0
    remote_messages: int = 0
    local_messages: int = 0
    bytes_sent: int = 0
    per_channel_messages: Dict[Tuple[int, int], int] = field(default_factory=dict)
    dropped_messages: int = 0
    delivery_events: int = 0
    coalesced_messages: int = 0

    # Counters are updated inline by :meth:`Network.send` (the hot path); this
    # class is pure data.


@dataclass(slots=True)
class Envelope:
    """A message in flight: payload plus routing metadata."""

    src_node: int
    dst_node: int
    dst_address: Hashable
    payload: Any
    size_bytes: int
    sent_at: float


class _Lane:
    """Resolved per-(source node, destination address) sending state."""

    __slots__ = ("dst_node", "put", "channel", "local")

    def __init__(self, dst_node: int, put, src_node: int) -> None:
        self.dst_node = dst_node
        #: Delivery target: the mailbox's ``put`` or an attached sink callable.
        self.put = put
        self.channel = (src_node, dst_node)
        self.local = src_node == dst_node


class _ChannelClock:
    """Mutable FIFO clock shared by all lanes of one directed node pair."""

    __slots__ = ("last",)

    def __init__(self) -> None:
        self.last = 0.0


class Network:
    """The simulated cluster interconnect.

    Addresses must be registered before they can receive messages.  The same
    network object is shared by all nodes of a cluster.
    """

    #: Observer (:class:`repro.obs.Tracer`) notified of every scheduled
    #: delivery, installed when tracing is on.  A class attribute so the
    #: untraced hot path pays one attribute check and no instance state.
    _tracer: Optional[Any] = None

    def __init__(self, sim: "Simulator", cost_model: Optional[CostModel] = None) -> None:
        self.sim = sim
        self.cost_model = cost_model or CostModel()
        self.stats = NetworkStats()
        self._mailboxes: Dict[Hashable, MessageQueue] = {}
        self._address_node: Dict[Hashable, int] = {}
        self._channel_clock: Dict[Tuple[int, int], _ChannelClock] = {}
        self._failed_nodes: set = set()
        #: Resolved lanes: (src_node, dst_address) -> (_Lane, _ChannelClock).
        self._lanes: Dict[Tuple[int, Hashable], Tuple[_Lane, _ChannelClock]] = {}
        #: Delivery sinks replacing a mailbox (reactive consumers, e.g. vans).
        self._sinks: Dict[Hashable, Any] = {}
        #: In-flight coalesced batches: (dst_address, deliver_at) -> payloads.
        self._pending_batches: Dict[Tuple[Hashable, float], List[Any]] = {}
        self._coalesce = sim.fastpath
        #: Parallel-engine shard state (``enable_shard_mode``): node -> shard
        #: rank, this process's rank, and outgoing cross-shard records.
        self._shard_ranks: Optional[Dict[int, int]] = None
        self._shard_rank: Optional[int] = None
        self._shard_outbox: List[Tuple[float, Tuple, int, Hashable, Any]] = []
        #: Per-destination-node delivery counts (shard mode only): the load
        #: signal adaptive shard rebalancing uses to weight the node->shard
        #: assignment.  Deliveries track where event processing happens, so
        #: they proxy per-node kernel load.
        self.node_load: Optional[Dict[int, int]] = None

    # ---------------------------------------------------------------- sharding
    def enable_shard_mode(self, node_ranks: Dict[int, int], rank: int) -> None:
        """Route cross-shard sends into the outbox (forked shard processes).

        After this call, :meth:`send` handles a message whose destination
        node belongs to another shard by recording
        ``(deliver_at, lineage, dst_node, dst_address, payload)`` in
        :attr:`_shard_outbox` instead of scheduling a local delivery —
        ``lineage`` is the scheduling key the delivery event would have
        carried locally (:meth:`Simulator.shard_lineage`), so the receiving
        shard merges the record into its heap at exactly the sequential
        engine's position.  All
        sender-side accounting (traffic counters, the FIFO channel clock of
        the directed node pair, which is owned by the sending shard) still
        happens here, so the counters aggregate across shards exactly as the
        sequential engine would have counted them.
        """
        self._shard_ranks = node_ranks
        self._shard_rank = rank
        self.node_load = {}

    def take_shard_outbox(self) -> List[Tuple[float, Tuple, int, Hashable, Any]]:
        """Return and reset the cross-shard records accumulated this window."""
        outbox = self._shard_outbox
        self._shard_outbox = []
        return outbox

    def shard_put(self, dst_address: Hashable):
        """Resolve the delivery callable for a cross-shard record (receiver)."""
        put = self._sinks.get(dst_address)
        if put is None:
            put = self._mailboxes[dst_address].put
        return put

    # ---------------------------------------------------------- node lifecycle
    @property
    def failed_nodes(self) -> frozenset:
        """Nodes whose links are down (messages to/from them are dropped)."""
        return frozenset(self._failed_nodes)

    def fail_node(self, node: int) -> None:
        """Take ``node`` off the network: its traffic is silently dropped.

        Models a crashed machine: messages already delivered stay delivered,
        but anything sent to or from the node afterwards is blackholed and
        counted in :attr:`NetworkStats.dropped_messages`.  Messages still *in
        flight* to the node vanish with it — a wire payload nobody received
        is gone, which is exactly the window the durability subsystem's
        fault-injection tests crash into.
        """
        self._failed_nodes.add(node)
        if self._pending_batches:
            address_node = self._address_node
            for (address, _deliver_at), batch in self._pending_batches.items():
                if batch and address_node.get(address) == node:
                    self.stats.dropped_messages += len(batch)
                    # Clear in place: the scheduled delivery callback shares
                    # this list and becomes a no-op.
                    batch.clear()

    def restore_node(self, node: int) -> None:
        """Reconnect a previously failed ``node`` (tests and re-join flows)."""
        self._failed_nodes.discard(node)

    # --------------------------------------------------------------- addresses
    def register(self, address: Hashable, node: int) -> MessageQueue:
        """Register ``address`` on ``node`` and return its inbox queue."""
        if address in self._mailboxes:
            raise NetworkError(f"address {address!r} is already registered")
        mailbox = MessageQueue(self.sim)
        self._mailboxes[address] = mailbox
        self._address_node[address] = node
        return mailbox

    def mailbox(self, address: Hashable) -> MessageQueue:
        """Return the inbox of ``address``."""
        try:
            return self._mailboxes[address]
        except KeyError:
            raise NetworkError(f"unknown address {address!r}") from None

    def node_of(self, address: Hashable) -> int:
        """Return the node hosting ``address``."""
        try:
            return self._address_node[address]
        except KeyError:
            raise NetworkError(f"unknown address {address!r}") from None

    def attach_sink(self, address: Hashable, consume) -> None:
        """Deliver ``address``'s messages to ``consume(payload)`` directly.

        For purely *reactive* consumers — handlers that charge no processing
        cost and run immediately on arrival (the client van, which only
        demultiplexes responses).  Bypassing the mailbox/process pair removes
        two kernel events per delivered message.  The handler runs at the
        exact delivery instant, which is when the consuming process would
        have been resumed.  Must be attached before the first send resolves a
        lane to ``address``.
        """
        if address not in self._mailboxes:
            raise NetworkError(f"unknown address {address!r}")
        if any(key[1] == address for key in self._lanes):
            raise NetworkError(
                f"cannot attach a sink to {address!r}: a sender already "
                "resolved a lane to its mailbox"
            )
        self._sinks[address] = consume

    # ----------------------------------------------------------------- sending
    def _lane(self, src_node: int, dst_address: Hashable) -> Tuple[_Lane, _ChannelClock]:
        key = (src_node, dst_address)
        entry = self._lanes.get(key)
        if entry is None:
            dst_node = self.node_of(dst_address)
            put = self._sinks.get(dst_address)
            if put is None:
                put = self._mailboxes[dst_address].put
            lane = _Lane(dst_node, put, src_node)
            clock = self._channel_clock.get(lane.channel)
            if clock is None:
                clock = self._channel_clock[lane.channel] = _ChannelClock()
            entry = self._lanes[key] = (lane, clock)
        return entry

    def send(
        self,
        src_node: int,
        dst_address: Hashable,
        payload: Any,
        size_bytes: int,
    ) -> Optional[Envelope]:
        """Send ``payload`` to ``dst_address``, charging the cost model.

        The message is delivered into the destination's mailbox after the
        appropriate simulated delay.  Delivery order per directed node pair is
        FIFO.

        Returns:
            ``None`` for a scheduled delivery.  For a message blackholed by a
            failed node, the :class:`Envelope` describing the dropped message
            (useful for tests and tracing); the routing metadata of delivered
            messages is no longer materialized on the hot path.
        """
        if size_bytes < 0:
            raise NetworkError(f"message size must be non-negative, got {size_bytes}")
        sim = self.sim
        if sim._apply_mode:
            return self.send_apply(src_node, dst_address, payload, size_bytes)
        lane, channel_clock = self._lane(src_node, dst_address)
        dst_node = lane.dst_node
        now = sim._now
        stats = self.stats
        if self._failed_nodes and (
            src_node in self._failed_nodes or dst_node in self._failed_nodes
        ):
            # A failed node neither sends nor receives; the message vanishes
            # without charging the cost model or the traffic counters.
            stats.dropped_messages += 1
            return Envelope(
                src_node=src_node,
                dst_node=dst_node,
                dst_address=dst_address,
                payload=payload,
                size_bytes=size_bytes,
                sent_at=now,
            )
        stats.messages_sent += 1
        cost = self.cost_model
        if lane.local:
            stats.local_messages += 1
            delay = cost.ipc_access_latency
        else:
            stats.remote_messages += 1
            stats.bytes_sent += size_bytes
            per_channel = stats.per_channel_messages
            channel = lane.channel
            per_channel[channel] = per_channel.get(channel, 0) + 1
            delay = cost.message_time(size_bytes)
        earliest = now + delay
        last = channel_clock.last
        deliver_at = earliest if earliest > last else last
        channel_clock.last = deliver_at
        tracer = self._tracer
        if tracer is not None:
            # Observation only: the delivery instant is already fixed; the
            # tracer appends a span to the sending node's buffer and nothing
            # about scheduling, coalescing, or sharding changes.
            tracer.net_span(src_node, dst_node, payload, now, deliver_at, size_bytes)
        if self._shard_ranks is not None:
            if self._shard_ranks[dst_node] != self._shard_rank:
                # Cross-shard delivery: hand the record to the window-exchange
                # protocol instead of the local kernel.  Always remote (shards
                # partition whole nodes), so deliver_at >= sent_at + lookahead —
                # the receiving shard merges it at a future window boundary.
                stats.delivery_events += 1
                self._shard_outbox.append(
                    (deliver_at, sim.shard_lineage(), dst_node, dst_address, payload)
                )
                return None
            load = self.node_load
            load[dst_node] = load.get(dst_node, 0) + 1
        if self._coalesce:
            batches = self._pending_batches
            batch_key = (dst_address, deliver_at)
            batch = batches.get(batch_key)
            if batch is not None:
                # A delivery event for this address and instant is already
                # scheduled: ride along.  Append order equals global send
                # order, which is the order the separate delivery events
                # would have delivered in.
                batch.append(payload)
                stats.coalesced_messages += 1
                return None
            batch = [payload]
            batches[batch_key] = batch
            stats.delivery_events += 1
            sim.call_later(
                deliver_at - now, self._deliver_batch, (batch_key, batch, lane.put)
            )
        else:
            stats.delivery_events += 1
            sim.call_later(deliver_at - now, lane.put, payload)
        return None

    def send_apply(
        self,
        src_node: int,
        dst_address: Hashable,
        payload: Any,
        size_bytes: int,
    ) -> Optional[Envelope]:
        """Shard-mode send while a membership event is being *applied*.

        At a window barrier every shard replays the same cluster event
        against identical merged control-plane state
        (:meth:`ClusterDriver.apply_in_shard`), so this method runs — with
        identical arguments, in identical order — on **all** shards.  Two
        rules keep the replicated execution convergent:

        * The scheduling key is drawn *unconditionally* on every shard
          (:meth:`Simulator.apply_lineage`), even for sends the owner
          subsequently drops on the failed-node check — the replicated
          ``_apply_seq`` counters must advance in lockstep.
        * All side effects beyond the key draw (traffic counters, FIFO
          channel clock, tracer span, scheduling or outbox append) happen
          only on the shard owning the *source* node, because network stats
          are shipped to the coordinator as per-shard deltas and summed —
          replicated increments would double-count.

        Apply-mode deliveries are never coalesced: they are always remote
        (rebalancing instructions target other nodes), land at least one
        lookahead after the barrier, and per-message heap entries ordered by
        the apply sequence reproduce the sequential delivery order exactly.
        """
        sim = self.sim
        lineage = sim.apply_lineage()
        lane, channel_clock = self._lane(src_node, dst_address)
        dst_node = lane.dst_node
        if self._shard_ranks[src_node] != self._shard_rank:
            return None
        now = sim._now
        stats = self.stats
        if self._failed_nodes and (
            src_node in self._failed_nodes or dst_node in self._failed_nodes
        ):
            stats.dropped_messages += 1
            return Envelope(
                src_node=src_node,
                dst_node=dst_node,
                dst_address=dst_address,
                payload=payload,
                size_bytes=size_bytes,
                sent_at=now,
            )
        stats.messages_sent += 1
        cost = self.cost_model
        if lane.local:
            stats.local_messages += 1
            delay = cost.ipc_access_latency
        else:
            stats.remote_messages += 1
            stats.bytes_sent += size_bytes
            per_channel = stats.per_channel_messages
            channel = lane.channel
            per_channel[channel] = per_channel.get(channel, 0) + 1
            delay = cost.message_time(size_bytes)
        earliest = now + delay
        last = channel_clock.last
        deliver_at = earliest if earliest > last else last
        channel_clock.last = deliver_at
        tracer = self._tracer
        if tracer is not None:
            tracer.net_span(src_node, dst_node, payload, now, deliver_at, size_bytes)
        stats.delivery_events += 1
        if self._shard_ranks[dst_node] != self._shard_rank:
            self._shard_outbox.append(
                (deliver_at, lineage, dst_node, dst_address, payload)
            )
            return None
        load = self.node_load
        load[dst_node] = load.get(dst_node, 0) + 1
        sim.schedule_foreign(deliver_at, lineage, lane.put, payload)
        return None

    def _deliver_batch(self, arg: Tuple[Tuple[Hashable, float], List[Any], Any]) -> None:
        batch_key, batch, put = arg
        del self._pending_batches[batch_key]
        for payload in batch:
            put(payload)

    def _delivery_delay(self, src_node: int, dst_node: int, size_bytes: int) -> float:
        """One-way delay for a message on this channel (kept for tests)."""
        if src_node == dst_node:
            return self.cost_model.ipc_access_latency
        return self.cost_model.message_time(size_bytes)
