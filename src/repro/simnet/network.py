"""Point-to-point network model with ordered delivery and a cost model.

The network connects *addresses* (arbitrary hashable identifiers, e.g.
``("server", 2)`` or ``("worker", 2, 1)``).  Each address is backed by a
:class:`~repro.simnet.queues.MessageQueue`.  Sending a message charges the
:class:`~repro.config.CostModel`:

* remote messages (different nodes): ``network_latency + size / bandwidth``,
* local messages (same node, e.g. a worker talking to its co-located server
  thread through inter-process communication): ``ipc_access_latency``.

Delivery on each directed node pair is FIFO — a message sent earlier is never
delivered after one sent later on the same channel.  This mirrors the paper's
assumption that the network layer (TCP in PS-Lite and Lapse) preserves message
order, which both consistency theorems rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Hashable, Optional, Tuple

from repro.config import CostModel
from repro.errors import NetworkError
from repro.simnet.queues import MessageQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simnet.kernel import Simulator


@dataclass
class NetworkStats:
    """Aggregate traffic counters maintained by :class:`Network`.

    Attributes:
        messages_sent: Total number of messages (local + remote).
        remote_messages: Messages that crossed node boundaries.
        local_messages: Messages delivered within a node (IPC loopback).
        bytes_sent: Total payload bytes of remote messages.
        per_channel_messages: Remote message counts keyed by (src_node, dst_node).
        dropped_messages: Messages blackholed because their source or
            destination node had failed (elastic cluster runtime).
    """

    messages_sent: int = 0
    remote_messages: int = 0
    local_messages: int = 0
    bytes_sent: int = 0
    per_channel_messages: Dict[Tuple[int, int], int] = field(default_factory=dict)
    dropped_messages: int = 0

    def record(self, src_node: int, dst_node: int, size_bytes: int) -> None:
        """Record one message from ``src_node`` to ``dst_node``."""
        self.messages_sent += 1
        if src_node == dst_node:
            self.local_messages += 1
            return
        self.remote_messages += 1
        self.bytes_sent += size_bytes
        channel = (src_node, dst_node)
        self.per_channel_messages[channel] = self.per_channel_messages.get(channel, 0) + 1


@dataclass(frozen=True, slots=True)
class Envelope:
    """A message in flight: payload plus routing metadata."""

    src_node: int
    dst_node: int
    dst_address: Hashable
    payload: Any
    size_bytes: int
    sent_at: float


class Network:
    """The simulated cluster interconnect.

    Addresses must be registered before they can receive messages.  The same
    network object is shared by all nodes of a cluster.
    """

    def __init__(self, sim: "Simulator", cost_model: Optional[CostModel] = None) -> None:
        self.sim = sim
        self.cost_model = cost_model or CostModel()
        self.stats = NetworkStats()
        self._mailboxes: Dict[Hashable, MessageQueue] = {}
        self._address_node: Dict[Hashable, int] = {}
        self._channel_clock: Dict[Tuple[int, int], float] = {}
        self._failed_nodes: set = set()

    # ---------------------------------------------------------- node lifecycle
    @property
    def failed_nodes(self) -> frozenset:
        """Nodes whose links are down (messages to/from them are dropped)."""
        return frozenset(self._failed_nodes)

    def fail_node(self, node: int) -> None:
        """Take ``node`` off the network: its traffic is silently dropped.

        Models a crashed machine: messages already delivered stay delivered,
        but anything sent to or from the node afterwards is blackholed and
        counted in :attr:`NetworkStats.dropped_messages`.
        """
        self._failed_nodes.add(node)

    def restore_node(self, node: int) -> None:
        """Reconnect a previously failed ``node`` (tests and re-join flows)."""
        self._failed_nodes.discard(node)

    # --------------------------------------------------------------- addresses
    def register(self, address: Hashable, node: int) -> MessageQueue:
        """Register ``address`` on ``node`` and return its inbox queue."""
        if address in self._mailboxes:
            raise NetworkError(f"address {address!r} is already registered")
        mailbox = MessageQueue(self.sim)
        self._mailboxes[address] = mailbox
        self._address_node[address] = node
        return mailbox

    def mailbox(self, address: Hashable) -> MessageQueue:
        """Return the inbox of ``address``."""
        try:
            return self._mailboxes[address]
        except KeyError:
            raise NetworkError(f"unknown address {address!r}") from None

    def node_of(self, address: Hashable) -> int:
        """Return the node hosting ``address``."""
        try:
            return self._address_node[address]
        except KeyError:
            raise NetworkError(f"unknown address {address!r}") from None

    # ----------------------------------------------------------------- sending
    def send(
        self,
        src_node: int,
        dst_address: Hashable,
        payload: Any,
        size_bytes: int,
    ) -> Envelope:
        """Send ``payload`` to ``dst_address``, charging the cost model.

        The message is delivered into the destination's mailbox after the
        appropriate simulated delay.  Delivery order per directed node pair is
        FIFO.

        Returns:
            The :class:`Envelope` describing the in-flight message (useful for
            tests and tracing).
        """
        if size_bytes < 0:
            raise NetworkError(f"message size must be non-negative, got {size_bytes}")
        dst_node = self.node_of(dst_address)
        envelope = Envelope(
            src_node=src_node,
            dst_node=dst_node,
            dst_address=dst_address,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.sim.now,
        )
        if self._failed_nodes and (
            src_node in self._failed_nodes or dst_node in self._failed_nodes
        ):
            # A failed node neither sends nor receives; the message vanishes
            # without charging the cost model or the traffic counters.
            self.stats.dropped_messages += 1
            return envelope
        self.stats.record(src_node, dst_node, size_bytes)
        delay = self._delivery_delay(src_node, dst_node, size_bytes)
        deliver_at = self._fifo_delivery_time(src_node, dst_node, delay)
        event = self.sim.event()
        event.callbacks.append(lambda _evt, env=envelope: self._deliver(env))
        event.succeed(delay=deliver_at - self.sim.now)
        return envelope

    def _delivery_delay(self, src_node: int, dst_node: int, size_bytes: int) -> float:
        if src_node == dst_node:
            return self.cost_model.ipc_access_latency
        return self.cost_model.message_time(size_bytes)

    def _fifo_delivery_time(self, src_node: int, dst_node: int, delay: float) -> float:
        channel = (src_node, dst_node)
        earliest = self.sim.now + delay
        last = self._channel_clock.get(channel, 0.0)
        deliver_at = max(earliest, last)
        self._channel_clock[channel] = deliver_at
        return deliver_at

    def _deliver(self, envelope: Envelope) -> None:
        self._mailboxes[envelope.dst_address].put(envelope.payload)
