"""Discrete-event simulation substrate for the Lapse reproduction.

This package provides the "cluster" on which all parameter-server variants
run: a deterministic discrete-event simulator (:mod:`repro.simnet.kernel`),
generator-based processes (:mod:`repro.simnet.process`), FIFO message queues
(:mod:`repro.simnet.queues`), and a point-to-point network with per-channel
ordered delivery and a configurable latency/bandwidth cost model
(:mod:`repro.simnet.network`).

The substrate replaces the physical 8-node cluster used in the paper: worker
and server threads become simulation processes, network messages are charged
latency and transfer time from :class:`repro.config.CostModel`, and "run time"
is simulated time.
"""

from repro.simnet.clock import Clock, SimulatedClock, WallClock
from repro.simnet.events import AllOf, AnyOf, Event, Timeout
from repro.simnet.kernel import Simulator
from repro.simnet.network import Network, NetworkStats
from repro.simnet.node import Node
from repro.simnet.process import Process
from repro.simnet.queues import MessageQueue

__all__ = [
    "AllOf",
    "AnyOf",
    "Clock",
    "Event",
    "MessageQueue",
    "Network",
    "NetworkStats",
    "Node",
    "Process",
    "SimulatedClock",
    "Simulator",
    "Timeout",
    "WallClock",
]
