"""The discrete-event simulation kernel.

:class:`Simulator` keeps a priority queue of triggered events and advances the
simulated clock from event to event.  Events scheduled for the same simulated
time are processed in the order they were triggered, which makes simulations
fully deterministic.

Hot-path design (see docs/architecture.md, "Simulation engine performance"):

* **Immediate-dispatch ring** — events scheduled for the *current* simulated
  time (zero-delay triggers, queue hand-offs, completion notifications) are
  appended to a FIFO ring and never touch the heap.  Any event created while
  the clock sits at ``now`` carries a larger sequence number than everything
  already pending, so draining the heap's ``now``-entries first and the ring
  second reproduces exactly the global (time, sequence) order of the plain
  heap — the ring is a proof-preserving fast path, not an approximation.
* **Event pool** — short-lived internal events (queue getters, resume relays)
  are recycled through a free list via :meth:`Simulator.acquire_event`; pooled
  events are reset on *acquisition*, so callbacks appended after processing
  (which the :class:`~repro.simnet.events.Event` contract drops) can never
  leak into the next incarnation.
* **Bare callback tokens** — internal one-shot actions (message deliveries,
  timeout resumes) are scheduled with :meth:`Simulator.call_later` as
  ``(fn, arg)`` tokens, skipping the Event object, its callback list, and its
  state flags entirely.
* **Tight run loop** — :meth:`run` inlines event processing with hoisted
  lookups instead of calling :meth:`step` per event.

Setting the environment variable ``REPRO_DISABLE_FASTPATH=1`` at simulator
construction time disables the ring and the pool (and, downstream, message
coalescing and fused worker steps), restoring the reference engine that the
bit-identity test sweep compares against.

**Shard mode** (``repro.simnet.parallel``): a simulator forked into a shard
process calls :meth:`Simulator.enter_shard_mode`, which widens heap entries
from ``(time, seq, item)`` to ``(time, lineage, item)``.  ``lineage`` is a
*nested* tuple ``(sched_time, parent_lineage, shard_rank, seq, depth)``
where ``parent_lineage`` is the lineage of the event that was being
processed when this one was scheduled (``()`` at the root).  Tuple
comparison therefore implements exactly the recursion that reproduces the
sequential engine's global sequence order: the single-process engine
assigns sequence numbers in scheduling order, scheduling order is
simulated-time order (``sched_time`` first), and same-instant scheduling
actions are ordered by the processing order of their scheduling events —
which is, recursively, the *key* order of the parents (the nested
``parent_lineage`` element), with ``(shard_rank, seq)`` ordering siblings
of one parent.  ``(shard_rank, seq)`` also makes every lineage unique, so
heap items are never compared; the trailing ``depth`` is bookkeeping for
the amortized ancestry trim (``_LINEAGE_KEEP``/``_LINEAGE_REBUILD``) and is
never reached by a comparison.  Shard processes advance through
:meth:`Simulator.run_window` (a conservative time window with an exclusive
upper bound) and receive cross-shard deliveries via
:meth:`Simulator.schedule_foreign`, which merges them under the *sender's*
lineage — exactly the key the delivery event would have carried had it been
scheduled locally.
"""

from __future__ import annotations

import heapq
import math
import os
from collections import deque
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simnet.events import Event, Timeout

#: Upper bound on the event free list; beyond this, processed pooled events
#: are simply dropped for the garbage collector.
_POOL_MAX = 512

#: Ancestry depth kept when a lineage chain is rebuilt.  Comparisons only
#: walk the chain while the two events' scheduling instants stay equal, so
#: the kept window has to cover the longest *identical-instant* ancestry two
#: distinct events can share; beyond it the deterministic ``()`` sentinel
#: decides.
_LINEAGE_KEEP = 24

#: Depth at which a lineage chain is trimmed back to ``_LINEAGE_KEEP``
#: levels.  Trimming rebuilds ``_LINEAGE_KEEP`` tuples, so letting chains
#: grow to twice the kept depth makes the rebuild cost O(1) amortized per
#: scheduled event.
_LINEAGE_REBUILD = 48

#: Parent context of lineages allocated during a replicated barrier apply
#: (``begin_apply``).  Real parent lineages start with a finite scheduling
#: time, so ``(inf,)`` sorts *after* every same-instant window lineage —
#: barrier-apply actions come after everything the shards processed up to
#: the barrier, exactly as the sequential engine's (newer) sequence numbers
#: would order them.
_APPLY_CTX: Tuple = (float("inf"),)


def _trim_lineage(lineage: Tuple) -> Tuple:
    """Bound a lineage chain's depth before it becomes a child's context.

    Returns the lineage unchanged below ``_LINEAGE_REBUILD``; otherwise
    rebuilds the top ``_LINEAGE_KEEP`` levels over a ``()`` root.  Only the
    ancestry that future comparisons can still reach is kept — a comparison
    walks parents only while both events' scheduling instants are equal, so
    dropping the deep tail is observable only for identical-instant
    ancestries longer than the kept window.
    """
    if lineage[4] < _LINEAGE_REBUILD:
        return lineage
    chain = []
    node = lineage
    for _ in range(_LINEAGE_KEEP):
        chain.append(node)
        node = node[1]
    ctx: Tuple = ()
    depth = 0
    for node in reversed(chain):
        ctx = (node[0], ctx, node[2], node[3], depth)
        depth += 1
    return ctx


def fastpath_disabled() -> bool:
    """Whether ``REPRO_DISABLE_FASTPATH`` requests the reference engine.

    Read at :class:`Simulator` construction time, so tests can toggle the
    environment variable per simulation run.
    """
    return os.environ.get("REPRO_DISABLE_FASTPATH", "").strip() not in ("", "0")


class _Call:
    """A bare scheduled callback: one-shot work without an Event object."""

    __slots__ = ("fn", "arg")

    def __init__(self, fn: Callable[[Any], None], arg: Any) -> None:
        self.fn = fn
        self.arg = arg


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()

        def worker():
            yield 1.0              # wait one simulated second
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert sim.now == 1.0 and proc.value == "done"
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise SimulationError(f"jobs must be >= 1, got {jobs}")
        self._now = 0.0
        self._queue: List[Tuple[float, int, Any]] = []
        #: FIFO of events/calls scheduled for the current simulated time.
        self._ring: deque = deque()
        self._sequence = 0
        self._running = False
        self._event_pool: List[Event] = []
        #: Whether the engine fast paths (ring, pool, coalescing, fused worker
        #: steps) are active for this simulator instance.
        self.fastpath = not fastpath_disabled()
        #: Requested shard count for the parallel engine.  The kernel itself
        #: stays single-threaded; ``repro.simnet.parallel`` forks one shard
        #: process per job at each driver epoch when the workload is eligible.
        self.jobs = jobs
        #: Shard rank once this simulator runs inside a shard process
        #: (``enter_shard_mode``); None in the ordinary sequential engine.
        self._shard_rank: Optional[int] = None
        #: Lineage of the event currently being processed (shard mode).
        self._shard_ctx: Tuple = ()
        #: Whether a replicated barrier apply is executing (shard mode): all
        #: shards run the same control-plane code against identical merged
        #: state, so scheduling draws must come from the replicated
        #: ``_apply_seq`` counter instead of the shard-local ``_sequence``.
        self._apply_mode = False
        #: Replicated scheduling counter for barrier applies (identical on
        #: every shard by construction).
        self._apply_seq = 0
        #: Shard-local WAL ordering counter (see :meth:`wal_order_key`).
        self._wal_seq = 0
        #: Events dispatched by :meth:`run_window` since the fork — the
        #: shard-load signal for adaptive shard rebalancing.
        self.executed_events = 0

    # ------------------------------------------------------------------ sharding
    def enter_shard_mode(self, rank: int) -> None:
        """Switch this (forked) simulator instance into shard mode.

        Heap entries become ``(time, lineage, item)`` (see the module
        docstring for the lineage key).  Entries inherited from the parent
        at fork time (normally none beyond future timers — the parent
        drains everything at or below the current time before forking) get
        the lineage ``(-1.0, (), -1, seq, 0)``: they sort ahead of anything
        scheduled after the fork at the same simulated time, matching their
        older global sequence numbers, and among themselves by the parent's
        global sequence.
        """
        if self._shard_rank is not None:
            raise SimulationError("simulator is already in shard mode")
        if self._ring:
            raise SimulationError(
                "cannot enter shard mode with immediate events pending "
                "(the parent must drain the ring before forking)"
            )
        self._shard_rank = rank
        if self._queue:
            self._queue = [
                (time, (-1.0, (), -1, seq, 0), item)
                for (time, seq, item) in self._queue
            ]
            heapq.heapify(self._queue)

    def shard_lineage(self) -> Tuple:
        """Allocate the lineage key for an action scheduled *now* (shard mode).

        Increments the local sequence exactly as scheduling an event would,
        so shard-local sequence streams mirror the sequential engine's.
        """
        self._sequence += 1
        ctx = self._shard_ctx
        depth = ctx[4] + 1 if ctx else 0
        return (self._now, ctx, self._shard_rank, self._sequence, depth)

    def begin_apply(self) -> None:
        """Enter replicated-apply mode (barrier control-plane execution).

        Between :meth:`begin_apply` and :meth:`end_apply` every scheduling
        action (event triggers, bare callbacks, wake-ups, lineage draws)
        allocates its key from the replicated ``_apply_seq`` counter under
        the ``(inf,)`` parent context and leaves the shard-local sequence
        untouched: all shards execute the identical apply code against
        identical merged state, so the streams stay in lockstep and the
        resulting keys are bit-identical across shards.
        """
        if self._shard_rank is None:
            raise SimulationError("begin_apply requires shard mode")
        self._apply_mode = True

    def end_apply(self) -> None:
        """Leave replicated-apply mode."""
        self._apply_mode = False

    def apply_lineage(self) -> Tuple:
        """Allocate a lineage key from the replicated apply stream."""
        self._apply_seq += 1
        return (self._now, _APPLY_CTX, -2, self._apply_seq, 0)

    def wal_order_key(self) -> Tuple:
        """Total-order key for a WAL append issued on this shard.

        The two-level LSN order of the parallel engine: shard-local WAL
        appends are keyed ``(time, processing lineage, local seq)`` —
        comparable across shards because lineages are (that is the window
        protocol's core invariant) — and barrier-apply appends are keyed
        under the replicated apply stream.  Sorting all shards' post-fork
        appends by this key reproduces the sequential engine's global LSN
        assignment order, which is what lets the parent stitch shard-relative
        LSNs back into one cluster total order at epoch merge.
        """
        if self._apply_mode:
            self._apply_seq += 1
            return (self._now, _APPLY_CTX, self._apply_seq)
        self._wal_seq += 1
        return (self._now, self._shard_ctx, self._wal_seq)

    def schedule_foreign(
        self,
        time: float,
        lineage: Tuple,
        fn: Callable[[Any], None],
        arg: Any,
    ) -> None:
        """Merge a cross-shard delivery into this shard's heap (shard mode).

        The entry carries the *sender's* lineage — the key the delivery
        event would have had if it had been scheduled on this shard — so
        same-time deliveries interleave with local events exactly as the
        sequential engine's global sequence numbers would order them.
        """
        heapq.heappush(self._queue, (time, lineage, _Call(fn, arg)))

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of triggered-but-unprocessed events."""
        return len(self._queue) + len(self._ring)

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next queued event (None if the queue is empty).

        Used by external drivers (e.g. the elastic cluster runtime) to
        interleave control-plane actions with event processing without
        perturbing the queue.
        """
        if self._ring:
            return self._now
        if not self._queue:
            return None
        return self._queue[0][0]

    # ------------------------------------------------------------------ events
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def acquire_event(self) -> Event:
        """Return a pooled internal :class:`Event` (reset on acquisition).

        Only for short-lived events fully owned by the runtime (queue getters,
        resume relays): after processing, the kernel recycles them into the
        free list, so callers must not retain references past processing.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._callbacks = None
            event._value = None
            event._exception = None
            event._triggered = False
            event._processed = False
            return event
        event = Event(self)
        if self.fastpath:
            event._pooled = True
        return event

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> "Process":
        """Start a new simulation process from a generator."""
        from repro.simnet.process import Process

        return Process(self, generator, name=name)

    def _enqueue(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        now = self._now
        time = now + delay
        if self._shard_rank is not None:
            if self._apply_mode:
                self._apply_seq += 1
                lineage = (now, _APPLY_CTX, -2, self._apply_seq, 0)
            else:
                self._sequence += 1
                ctx = self._shard_ctx
                lineage = (
                    now, ctx, self._shard_rank, self._sequence,
                    ctx[4] + 1 if ctx else 0,
                )
            if time == now and self.fastpath:
                self._ring.append((event, lineage))
            else:
                heapq.heappush(self._queue, (time, lineage, event))
            return
        self._sequence += 1
        if time == now and self.fastpath:
            self._ring.append(event)
        else:
            heapq.heappush(self._queue, (time, self._sequence, event))

    def call_later(self, delay: float, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` after ``delay`` simulated seconds.

        The cheap form of a triggered event: no :class:`Event` object is
        allocated, no callbacks list, no state flags — the kernel simply
        invokes ``fn(arg)`` at the scheduled (time, sequence) slot.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        now = self._now
        time = now + delay
        if self._shard_rank is not None:
            if self._apply_mode:
                self._apply_seq += 1
                lineage = (now, _APPLY_CTX, -2, self._apply_seq, 0)
            else:
                self._sequence += 1
                ctx = self._shard_ctx
                lineage = (
                    now, ctx, self._shard_rank, self._sequence,
                    ctx[4] + 1 if ctx else 0,
                )
            if time == now and self.fastpath:
                self._ring.append((_Call(fn, arg), lineage))
            else:
                heapq.heappush(self._queue, (time, lineage, _Call(fn, arg)))
            return
        self._sequence += 1
        if time == now and self.fastpath:
            self._ring.append(_Call(fn, arg))
        else:
            heapq.heappush(self._queue, (time, self._sequence, _Call(fn, arg)))

    def wake_at(self, time: float) -> Event:
        """Return a triggered event processed at the *absolute* time ``time``.

        Used by the fused worker-step path: replaying the step-by-step
        clock additions and resuming at the replayed absolute time is the
        only way to land on bit-identical simulated timestamps (summing the
        deltas and yielding one relative timeout differs in the last float
        bits).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule a wake-up at {time}, before current time {self._now}"
            )
        event = self.acquire_event()
        event._triggered = True
        if self._shard_rank is not None:
            if self._apply_mode:
                self._apply_seq += 1
                lineage = (self._now, _APPLY_CTX, -2, self._apply_seq, 0)
            else:
                self._sequence += 1
                ctx = self._shard_ctx
                lineage = (
                    self._now, ctx, self._shard_rank, self._sequence,
                    ctx[4] + 1 if ctx else 0,
                )
            if time == self._now and self.fastpath:
                self._ring.append((event, lineage))
            else:
                heapq.heappush(self._queue, (time, lineage, event))
            return event
        self._sequence += 1
        if time == self._now and self.fastpath:
            self._ring.append(event)
        else:
            heapq.heappush(self._queue, (time, self._sequence, event))
        return event

    # ------------------------------------------------------------------ running
    def _process_item(self, item: Any) -> None:
        """Process one popped event or callback token."""
        if item.__class__ is _Call:
            item.fn(item.arg)
            return
        # Detach the (lazily allocated) callback list without allocating a
        # replacement; callbacks registered during processing are dropped,
        # exactly as with the previous swap-with-fresh-list behaviour.
        callbacks = item._callbacks
        item._callbacks = None
        item._processed = True
        if callbacks:
            for callback in callbacks:
                callback(item)
        if item._pooled and len(self._event_pool) < _POOL_MAX:
            self._event_pool.append(item)

    def step(self) -> None:
        """Process the next event, advancing simulated time.

        Heap entries scheduled for the current time precede ring entries
        (their sequence numbers are older); the ring is FIFO.
        """
        queue = self._queue
        if queue:
            time = queue[0][0]
            if time <= self._now:
                if time < self._now:
                    raise SimulationError("event queue produced a time in the past")
                self._process_item(heapq.heappop(queue)[2])
                return
        ring = self._ring
        if ring:
            self._process_item(ring.popleft())
            return
        if not queue:
            raise SimulationError("no more events to process")
        time, _, item = heapq.heappop(queue)
        self._now = time
        self._process_item(item)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue is empty or ``until`` is reached.

        Args:
            until: Optional simulated time at which to stop.  If the queue
                empties earlier, the simulation stops there.

        Returns:
            The simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}, which is before current time {self._now}"
            )
        self._running = True
        # Hoisted locals: this loop is the single hottest code path of the
        # whole simulator.
        queue = self._queue
        ring = self._ring
        heappop = heapq.heappop
        call_cls = _Call
        pool = self._event_pool
        try:
            if until is None:
                # Leanest variant of the loop: no cutoff checks (the
                # dominant call shape — full epoch runs).
                while True:
                    if queue:
                        time = queue[0][0]
                        if ring and time > self._now:
                            # Ring entries live at the current time and
                            # their sequence numbers are newer than any heap
                            # entry at the current time, older than later
                            # heap times.
                            item = ring.popleft()
                        else:
                            item = heappop(queue)[2]
                            self._now = time
                    elif ring:
                        item = ring.popleft()
                    else:
                        break
                    # Inlined _process_item.
                    if item.__class__ is call_cls:
                        item.fn(item.arg)
                    else:
                        callbacks = item._callbacks
                        item._callbacks = None
                        item._processed = True
                        if callbacks:
                            for callback in callbacks:
                                callback(item)
                        if item._pooled and len(pool) < _POOL_MAX:
                            pool.append(item)
            else:
                while True:
                    if queue:
                        time = queue[0][0]
                        if ring and time > self._now:
                            item = ring.popleft()
                        elif time > until:
                            # The ring is necessarily empty here: its entries
                            # live at the current time, which never exceeds
                            # ``until``.
                            self._now = until
                            break
                        else:
                            item = heappop(queue)[2]
                            self._now = time
                    elif ring:
                        item = ring.popleft()
                    else:
                        self._now = until
                        break
                    if item.__class__ is call_cls:
                        item.fn(item.arg)
                    else:
                        callbacks = item._callbacks
                        item._callbacks = None
                        item._processed = True
                        if callbacks:
                            for callback in callbacks:
                                callback(item)
                        if item._pooled and len(pool) < _POOL_MAX:
                            pool.append(item)
        finally:
            self._running = False
        return self._now

    def run_window(self, end: float, inclusive: bool = False) -> float:
        """Process every event with time strictly below ``end`` (shard mode).

        The conservative window loop of the parallel engine: the shard owns
        all events below ``end`` (cross-shard deliveries generated anywhere
        in the current window land at or after ``end``, by the lookahead
        bound), so processing them needs no coordination.  Events exactly at
        ``end`` stay queued for the next window — unless ``inclusive`` is
        set, the drain mode of the membership-barrier protocol: once every
        in-flight delivery at or below the barrier time is accounted for,
        events *at* the barrier instant must be processed before the
        control-plane apply (the sequential engine fires a membership event
        only after exhausting all same-instant work).  Unlike :meth:`run`,
        the clock is *not* advanced to ``end`` when the queue drains early —
        the next window's bound is derived from the earliest pending event
        across all shards, not from this shard's idle clock.
        """
        if self._shard_rank is None:
            raise SimulationError("run_window requires shard mode")
        if self._running:
            raise SimulationError("Simulator.run_window is not reentrant")
        self._running = True
        queue = self._queue
        ring = self._ring
        heappop = heapq.heappop
        call_cls = _Call
        pool = self._event_pool
        trim = _trim_lineage
        executed = 0
        if inclusive:
            # Keep the hot loop's single `time >= end` comparison: an
            # inclusive bound is an exclusive bound just past ``end``.
            end = math.nextafter(end, math.inf)
        try:
            while True:
                if queue:
                    time = queue[0][0]
                    if ring and time > self._now:
                        item, lineage = ring.popleft()
                    elif time >= end:
                        break
                    else:
                        _, lineage, item = heappop(queue)
                        self._now = time
                elif ring:
                    item, lineage = ring.popleft()
                else:
                    break
                executed += 1
                # Children scheduled while processing this item inherit its
                # (depth-trimmed) lineage as their parent context.
                self._shard_ctx = trim(lineage)
                if item.__class__ is call_cls:
                    item.fn(item.arg)
                else:
                    callbacks = item._callbacks
                    item._callbacks = None
                    item._processed = True
                    if callbacks:
                        for callback in callbacks:
                            callback(item)
                    if item._pooled and len(pool) < _POOL_MAX:
                        pool.append(item)
        finally:
            self._running = False
            self.executed_events += executed
        return self._now

    def run_process(self, generator: Generator, name: Optional[str] = None) -> Any:
        """Start a process, run the simulation to completion, return its value.

        Convenience wrapper used heavily by tests and examples.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.processed:
            raise SimulationError(
                f"process {proc!r} did not finish; it is likely deadlocked"
            )
        return proc.value
