"""The discrete-event simulation kernel.

:class:`Simulator` keeps a priority queue of triggered events and advances the
simulated clock from event to event.  Events scheduled for the same simulated
time are processed in the order they were triggered, which makes simulations
fully deterministic.

Hot-path design (see docs/architecture.md, "Simulation engine performance"):

* **Immediate-dispatch ring** — events scheduled for the *current* simulated
  time (zero-delay triggers, queue hand-offs, completion notifications) are
  appended to a FIFO ring and never touch the heap.  Any event created while
  the clock sits at ``now`` carries a larger sequence number than everything
  already pending, so draining the heap's ``now``-entries first and the ring
  second reproduces exactly the global (time, sequence) order of the plain
  heap — the ring is a proof-preserving fast path, not an approximation.
* **Event pool** — short-lived internal events (queue getters, resume relays)
  are recycled through a free list via :meth:`Simulator.acquire_event`; pooled
  events are reset on *acquisition*, so callbacks appended after processing
  (which the :class:`~repro.simnet.events.Event` contract drops) can never
  leak into the next incarnation.
* **Bare callback tokens** — internal one-shot actions (message deliveries,
  timeout resumes) are scheduled with :meth:`Simulator.call_later` as
  ``(fn, arg)`` tokens, skipping the Event object, its callback list, and its
  state flags entirely.
* **Tight run loop** — :meth:`run` inlines event processing with hoisted
  lookups instead of calling :meth:`step` per event.

Setting the environment variable ``REPRO_DISABLE_FASTPATH=1`` at simulator
construction time disables the ring and the pool (and, downstream, message
coalescing and fused worker steps), restoring the reference engine that the
bit-identity test sweep compares against.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simnet.events import Event, Timeout

#: Upper bound on the event free list; beyond this, processed pooled events
#: are simply dropped for the garbage collector.
_POOL_MAX = 512


def fastpath_disabled() -> bool:
    """Whether ``REPRO_DISABLE_FASTPATH`` requests the reference engine.

    Read at :class:`Simulator` construction time, so tests can toggle the
    environment variable per simulation run.
    """
    return os.environ.get("REPRO_DISABLE_FASTPATH", "").strip() not in ("", "0")


class _Call:
    """A bare scheduled callback: one-shot work without an Event object."""

    __slots__ = ("fn", "arg")

    def __init__(self, fn: Callable[[Any], None], arg: Any) -> None:
        self.fn = fn
        self.arg = arg


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()

        def worker():
            yield 1.0              # wait one simulated second
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert sim.now == 1.0 and proc.value == "done"
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Any]] = []
        #: FIFO of events/calls scheduled for the current simulated time.
        self._ring: deque = deque()
        self._sequence = 0
        self._running = False
        self._event_pool: List[Event] = []
        #: Whether the engine fast paths (ring, pool, coalescing, fused worker
        #: steps) are active for this simulator instance.
        self.fastpath = not fastpath_disabled()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of triggered-but-unprocessed events."""
        return len(self._queue) + len(self._ring)

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next queued event (None if the queue is empty).

        Used by external drivers (e.g. the elastic cluster runtime) to
        interleave control-plane actions with event processing without
        perturbing the queue.
        """
        if self._ring:
            return self._now
        if not self._queue:
            return None
        return self._queue[0][0]

    # ------------------------------------------------------------------ events
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def acquire_event(self) -> Event:
        """Return a pooled internal :class:`Event` (reset on acquisition).

        Only for short-lived events fully owned by the runtime (queue getters,
        resume relays): after processing, the kernel recycles them into the
        free list, so callers must not retain references past processing.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._callbacks = None
            event._value = None
            event._exception = None
            event._triggered = False
            event._processed = False
            return event
        event = Event(self)
        if self.fastpath:
            event._pooled = True
        return event

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> "Process":
        """Start a new simulation process from a generator."""
        from repro.simnet.process import Process

        return Process(self, generator, name=name)

    def _enqueue(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        now = self._now
        time = now + delay
        self._sequence += 1
        if time == now and self.fastpath:
            self._ring.append(event)
        else:
            heapq.heappush(self._queue, (time, self._sequence, event))

    def call_later(self, delay: float, fn: Callable[[Any], None], arg: Any = None) -> None:
        """Schedule ``fn(arg)`` after ``delay`` simulated seconds.

        The cheap form of a triggered event: no :class:`Event` object is
        allocated, no callbacks list, no state flags — the kernel simply
        invokes ``fn(arg)`` at the scheduled (time, sequence) slot.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        now = self._now
        time = now + delay
        self._sequence += 1
        if time == now and self.fastpath:
            self._ring.append(_Call(fn, arg))
        else:
            heapq.heappush(self._queue, (time, self._sequence, _Call(fn, arg)))

    def wake_at(self, time: float) -> Event:
        """Return a triggered event processed at the *absolute* time ``time``.

        Used by the fused worker-step path: replaying the step-by-step
        clock additions and resuming at the replayed absolute time is the
        only way to land on bit-identical simulated timestamps (summing the
        deltas and yielding one relative timeout differs in the last float
        bits).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule a wake-up at {time}, before current time {self._now}"
            )
        event = self.acquire_event()
        event._triggered = True
        self._sequence += 1
        if time == self._now and self.fastpath:
            self._ring.append(event)
        else:
            heapq.heappush(self._queue, (time, self._sequence, event))
        return event

    # ------------------------------------------------------------------ running
    def _process_item(self, item: Any) -> None:
        """Process one popped event or callback token."""
        if item.__class__ is _Call:
            item.fn(item.arg)
            return
        # Detach the (lazily allocated) callback list without allocating a
        # replacement; callbacks registered during processing are dropped,
        # exactly as with the previous swap-with-fresh-list behaviour.
        callbacks = item._callbacks
        item._callbacks = None
        item._processed = True
        if callbacks:
            for callback in callbacks:
                callback(item)
        if item._pooled and len(self._event_pool) < _POOL_MAX:
            self._event_pool.append(item)

    def step(self) -> None:
        """Process the next event, advancing simulated time.

        Heap entries scheduled for the current time precede ring entries
        (their sequence numbers are older); the ring is FIFO.
        """
        queue = self._queue
        if queue:
            time = queue[0][0]
            if time <= self._now:
                if time < self._now:
                    raise SimulationError("event queue produced a time in the past")
                self._process_item(heapq.heappop(queue)[2])
                return
        ring = self._ring
        if ring:
            self._process_item(ring.popleft())
            return
        if not queue:
            raise SimulationError("no more events to process")
        time, _, item = heapq.heappop(queue)
        self._now = time
        self._process_item(item)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue is empty or ``until`` is reached.

        Args:
            until: Optional simulated time at which to stop.  If the queue
                empties earlier, the simulation stops there.

        Returns:
            The simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}, which is before current time {self._now}"
            )
        self._running = True
        # Hoisted locals: this loop is the single hottest code path of the
        # whole simulator.
        queue = self._queue
        ring = self._ring
        heappop = heapq.heappop
        call_cls = _Call
        pool = self._event_pool
        try:
            if until is None:
                # Leanest variant of the loop: no cutoff checks (the
                # dominant call shape — full epoch runs).
                while True:
                    if queue:
                        time = queue[0][0]
                        if ring and time > self._now:
                            # Ring entries live at the current time and
                            # their sequence numbers are newer than any heap
                            # entry at the current time, older than later
                            # heap times.
                            item = ring.popleft()
                        else:
                            item = heappop(queue)[2]
                            self._now = time
                    elif ring:
                        item = ring.popleft()
                    else:
                        break
                    # Inlined _process_item.
                    if item.__class__ is call_cls:
                        item.fn(item.arg)
                    else:
                        callbacks = item._callbacks
                        item._callbacks = None
                        item._processed = True
                        if callbacks:
                            for callback in callbacks:
                                callback(item)
                        if item._pooled and len(pool) < _POOL_MAX:
                            pool.append(item)
            else:
                while True:
                    if queue:
                        time = queue[0][0]
                        if ring and time > self._now:
                            item = ring.popleft()
                        elif time > until:
                            # The ring is necessarily empty here: its entries
                            # live at the current time, which never exceeds
                            # ``until``.
                            self._now = until
                            break
                        else:
                            item = heappop(queue)[2]
                            self._now = time
                    elif ring:
                        item = ring.popleft()
                    else:
                        self._now = until
                        break
                    if item.__class__ is call_cls:
                        item.fn(item.arg)
                    else:
                        callbacks = item._callbacks
                        item._callbacks = None
                        item._processed = True
                        if callbacks:
                            for callback in callbacks:
                                callback(item)
                        if item._pooled and len(pool) < _POOL_MAX:
                            pool.append(item)
        finally:
            self._running = False
        return self._now

    def run_process(self, generator: Generator, name: Optional[str] = None) -> Any:
        """Start a process, run the simulation to completion, return its value.

        Convenience wrapper used heavily by tests and examples.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.processed:
            raise SimulationError(
                f"process {proc!r} did not finish; it is likely deadlocked"
            )
        return proc.value
