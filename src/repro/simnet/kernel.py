"""The discrete-event simulation kernel.

:class:`Simulator` keeps a priority queue of triggered events and advances the
simulated clock from event to event.  Events scheduled for the same simulated
time are processed in the order they were triggered, which makes simulations
fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.simnet.events import Event, Timeout


class Simulator:
    """A deterministic discrete-event simulator.

    Typical usage::

        sim = Simulator()

        def worker():
            yield 1.0              # wait one simulated second
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert sim.now == 1.0 and proc.value == "done"
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._sequence = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of triggered-but-unprocessed events."""
        return len(self._queue)

    def peek_time(self) -> Optional[float]:
        """Simulated time of the next queued event (None if the queue is empty).

        Used by external drivers (e.g. the elastic cluster runtime) to
        interleave control-plane actions with event processing without
        perturbing the queue.
        """
        if not self._queue:
            return None
        return self._queue[0][0]

    # ------------------------------------------------------------------ events
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> "Process":
        """Start a new simulation process from a generator."""
        from repro.simnet.process import Process

        return Process(self, generator, name=name)

    def _enqueue(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))
        self._sequence += 1

    # ------------------------------------------------------------------ running
    def step(self) -> None:
        """Process the next event, advancing simulated time."""
        if not self._queue:
            raise SimulationError("no more events to process")
        time, _, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("event queue produced a time in the past")
        self._now = time
        # Detach the (lazily allocated) callback list without allocating a
        # replacement; callbacks registered during processing are dropped,
        # exactly as with the previous swap-with-fresh-list behaviour.
        callbacks = event._callbacks
        event._callbacks = None
        event._mark_processed()
        if callbacks:
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue is empty or ``until`` is reached.

        Args:
            until: Optional simulated time at which to stop.  If the queue
                empties earlier, the simulation stops there.

        Returns:
            The simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until}, which is before current time {self._now}"
            )
        self._running = True
        try:
            while self._queue:
                next_time = self._queue[0][0]
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
            else:
                if until is not None:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_process(self, generator: Generator, name: Optional[str] = None) -> Any:
        """Start a process, run the simulation to completion, return its value.

        Convenience wrapper used heavily by tests and examples.
        """
        proc = self.process(generator, name=name)
        self.run()
        if not proc.processed:
            raise SimulationError(
                f"process {proc!r} did not finish; it is likely deadlocked"
            )
        return proc.value
