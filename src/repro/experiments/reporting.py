"""Plain-text reporting helpers for benchmark output.

Besides table formatting, this module is the one place that turns
:class:`~repro.ps.metrics.PSMetrics` into report rows: benchmarks pass their
:class:`~repro.experiments.runner.TaskRunResult` lists to
:func:`metrics_rows` (built on ``PSMetrics.as_dict``) instead of hand-picking
counters, and :func:`merge_metrics` is the cross-node / cross-run merge.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ExperimentError
from repro.ps.metrics import PSMetrics, RunningStat

#: Default counters of the management-technique comparisons: relocation
#: activity (Table 5), location-cache outcomes (Table 3), and the
#: replication-maintenance counters (the replication analogue of Table 3).
MANAGEMENT_COUNTERS = (
    "relocations",
    "replica_creates",
    "cache_hits",
    "cache_stale",
    "replica_flush_messages",
    "replica_broadcast_messages",
    "replica_sync_bytes",
)

#: Latency-distribution projections of the :class:`RunningStat` fields: the
#: streaming-histogram percentiles next to the means the paper's Table 5
#: reports.  Usable as (or merged into) the ``counters`` argument of
#: :func:`metrics_rows`.
LATENCY_COUNTERS = (
    "mean_relocation_time",
    "p50_relocation_time",
    "p99_relocation_time",
    "mean_blocking_time",
    "p99_blocking_time",
)

#: Durability-subsystem counters (WAL, checkpoints, crash recovery).
DURABILITY_COUNTERS = (
    "wal_appends",
    "wal_bytes",
    "checkpoints",
    "checkpoint_bytes",
    "replayed_deltas",
    "wal_recovered_keys",
    "recovered_keys",
    "lost_keys",
)


def all_counters() -> "tuple[str, ...]":
    """Every counter :meth:`PSMetrics.as_dict` emits, in field order.

    Derived from the dataclass itself, so a new :class:`PSMetrics` field
    surfaces in reports without touching this module — the fix for counters
    silently missing from hand-maintained tuples like
    :data:`MANAGEMENT_COUNTERS`.  Usable directly as the ``counters``
    argument of :func:`metrics_rows` (or pass ``counters="all"``).
    """
    return tuple(PSMetrics().as_dict().keys())


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        raise ExperimentError("cannot format an empty table")
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def speedup(baseline: float, measured: float) -> float:
    """Return ``baseline / measured`` (how many times faster than the baseline)."""
    if measured <= 0:
        raise ExperimentError("measured time must be positive")
    return baseline / measured


def merge_metrics(parts: Iterable[Optional[PSMetrics]]) -> PSMetrics:
    """Merge per-node (or per-run) metrics into one aggregate.

    Tolerates the asymmetric inputs an elastic cluster produces: ``None``
    entries (nodes that joined too late or left too early to report) are
    skipped, and partial counter mappings (e.g. a subset of
    :meth:`PSMetrics.as_dict`, as serialized by a node that ran only part of
    an experiment) are merged against zero defaults for the counters they
    omit.  Unknown counter names raise :class:`ExperimentError`.
    """
    total = PSMetrics()
    for part in parts:
        if part is None:
            continue
        if isinstance(part, Mapping):
            part = _metrics_from_partial(part)
        elif not isinstance(part, PSMetrics):
            raise ExperimentError(
                f"cannot merge metrics from {type(part).__name__!r} "
                "(expected PSMetrics, a counter mapping, or None)"
            )
        total = total.merge(part)
    return total


def _metrics_from_partial(counters: Mapping[str, object]) -> PSMetrics:
    """Build a :class:`PSMetrics` from a (possibly partial) counter mapping.

    Derived ``mean_*`` / ``p50_*`` / ``p99_*`` entries (the
    :class:`RunningStat` projections of ``as_dict``) are ignored — a point
    estimate cannot be merged without its sample counts.
    """
    metrics = PSMetrics()
    stat_fields = {
        spec.name
        for spec in fields(PSMetrics)
        if isinstance(getattr(metrics, spec.name), RunningStat)
    }
    scalar_fields = {spec.name for spec in fields(PSMetrics)} - stat_fields
    derived = {
        f"{prefix}_{name}"
        for name in stat_fields
        for prefix in ("mean", "p50", "p99")
    }
    for name, value in counters.items():
        if name in derived:
            continue
        if name not in scalar_fields:
            raise ExperimentError(f"unknown PSMetrics counter {name!r}")
        setattr(metrics, name, value)
    return metrics


def metrics_rows(
    results: Sequence[object],
    counters: Sequence[str] = MANAGEMENT_COUNTERS,
) -> List[Dict[str, object]]:
    """One report row per :class:`TaskRunResult`, counters via ``as_dict``.

    Each row identifies the run (task, system, parallelism), reports epoch
    time, locality, and traffic, and appends the requested ``counters``
    looked up in :meth:`PSMetrics.as_dict` — replacing the per-benchmark
    metric plumbing.  ``counters="all"`` expands to :func:`all_counters`,
    i.e. every ``PSMetrics`` field, so no counter can be silently dropped.
    Results without PS metrics (e.g. the low-level baseline) leave the
    counter cells empty.
    """
    if counters == "all":
        counters = all_counters()
    rows: List[Dict[str, object]] = []
    for result in results:
        metrics = result.metrics
        data = metrics.as_dict() if metrics is not None else {}
        row: Dict[str, object] = {
            "task": result.task,
            "system": result.system,
            "parallelism": result.parallelism,
            "epoch_time_s": round(result.epoch_duration, 6),
            "local_read_frac": (
                round(metrics.local_read_fraction, 3) if metrics is not None else ""
            ),
            "remote_messages": result.remote_messages,
            "bytes_sent": result.bytes_sent,
        }
        for name in counters:
            if name not in data and metrics is not None:
                raise ExperimentError(f"unknown PSMetrics counter {name!r}")
            row[name] = data.get(name, "")
        rows.append(row)
    return rows
