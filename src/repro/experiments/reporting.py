"""Plain-text reporting helpers for benchmark output."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ExperimentError


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        raise ExperimentError("cannot format an empty table")
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in rendered:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def speedup(baseline: float, measured: float) -> float:
    """Return ``baseline / measured`` (how many times faster than the baseline)."""
    if measured <= 0:
        raise ExperimentError("measured time must be positive")
    return baseline / measured
