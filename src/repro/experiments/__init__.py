"""Experiment harness: build clusters, run the paper's experiments, report results.

* :mod:`repro.experiments.runner` — construct a PS variant by name, run one of
  the three ML tasks on it at a given parallelism, and collect run time,
  loss, PS metrics and network traffic,
* :mod:`repro.experiments.scenarios` — the scaled-down workload presets used to
  regenerate every figure and table of the paper,
* :mod:`repro.experiments.reporting` — plain-text tables for benchmark output.
"""

from repro.experiments.reporting import (
    LATENCY_COUNTERS,
    MANAGEMENT_COUNTERS,
    format_table,
    merge_metrics,
    metrics_rows,
    speedup,
)
from repro.experiments.runner import (
    SYSTEMS,
    KGEScale,
    MFScale,
    TaskRunResult,
    W2VScale,
    make_elastic_mf,
    make_parameter_server,
    run_elastic_mf_experiment,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)
from repro.experiments.scenarios import (
    DEFAULT_PARALLELISM,
    ELASTIC_SCALING_SYSTEMS,
    REPLICATION_COMPARISON_SYSTEMS,
    elastic_scaling_scenario,
    kge_scenario,
    matrix_factorization_scenario,
    replication_comparison_scenario,
    word2vec_scenario,
)

__all__ = [
    "DEFAULT_PARALLELISM",
    "ELASTIC_SCALING_SYSTEMS",
    "KGEScale",
    "LATENCY_COUNTERS",
    "MANAGEMENT_COUNTERS",
    "MFScale",
    "REPLICATION_COMPARISON_SYSTEMS",
    "SYSTEMS",
    "TaskRunResult",
    "W2VScale",
    "elastic_scaling_scenario",
    "format_table",
    "kge_scenario",
    "make_elastic_mf",
    "make_parameter_server",
    "matrix_factorization_scenario",
    "merge_metrics",
    "metrics_rows",
    "replication_comparison_scenario",
    "run_elastic_mf_experiment",
    "run_kge_experiment",
    "run_mf_experiment",
    "run_w2v_experiment",
    "speedup",
    "word2vec_scenario",
]
