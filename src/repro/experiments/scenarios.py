"""Scenario presets mapping the paper's figures to scaled-down sweeps.

Every figure of the evaluation is a sweep of *systems* over *parallelism
levels* for one workload.  The helpers here run such a sweep and return rows
(dicts) ready for :func:`repro.experiments.reporting.format_table` and for the
shape assertions in the benchmark suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.runner import (
    KGEScale,
    MFScale,
    TaskRunResult,
    W2VScale,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)

#: Parallelism levels of the paper's evaluation (1x4 ... 8x4), scaled to the
#: number of simulated nodes.
DEFAULT_PARALLELISM = (1, 2, 4, 8)

#: The four parameter-management strategies compared by the replication
#: scenario: static allocation (classic), relocation (Lapse), replication,
#: and the per-key hybrid of relocation and replication.
REPLICATION_COMPARISON_SYSTEMS = ("classic_fast_local", "lapse", "replica", "hybrid")


def _result_rows(results: Iterable[TaskRunResult]) -> List[Dict[str, object]]:
    rows = []
    for result in results:
        rows.append(
            {
                "task": result.task,
                "system": result.system,
                "parallelism": result.parallelism,
                "epoch_time_s": result.epoch_duration,
                "loss": result.final_loss if result.final_loss is not None else "",
                "remote_messages": result.remote_messages,
                "local_read_fraction": (
                    result.metrics.local_read_fraction if result.metrics else ""
                ),
            }
        )
    return rows


def matrix_factorization_scenario(
    systems: Sequence[str],
    parallelism: Sequence[int] = DEFAULT_PARALLELISM,
    scale: Optional[MFScale] = None,
    epochs: int = 1,
    compute_loss: bool = False,
    seed: int = 0,
    workers_per_node: int = 4,
) -> List[Dict[str, object]]:
    """Sweep for the matrix-factorization figures (Figures 6 and 9)."""
    if not systems:
        raise ExperimentError("at least one system is required")
    results = []
    for system in systems:
        for num_nodes in parallelism:
            results.append(
                run_mf_experiment(
                    system,
                    num_nodes=num_nodes,
                    workers_per_node=workers_per_node,
                    scale=scale,
                    epochs=epochs,
                    compute_loss=compute_loss,
                    seed=seed,
                )
            )
    return _result_rows(results)


def kge_scenario(
    systems: Sequence[str],
    model: str = "complex",
    parallelism: Sequence[int] = DEFAULT_PARALLELISM,
    scale: Optional[KGEScale] = None,
    epochs: int = 1,
    compute_loss: bool = False,
    seed: int = 0,
    workers_per_node: int = 4,
) -> List[Dict[str, object]]:
    """Sweep for the knowledge-graph-embedding figures (Figures 1 and 7)."""
    if not systems:
        raise ExperimentError("at least one system is required")
    results = []
    for system in systems:
        for num_nodes in parallelism:
            results.append(
                run_kge_experiment(
                    system,
                    num_nodes=num_nodes,
                    workers_per_node=workers_per_node,
                    model=model,
                    scale=scale,
                    epochs=epochs,
                    compute_loss=compute_loss,
                    seed=seed,
                )
            )
    return _result_rows(results)


def word2vec_scenario(
    systems: Sequence[str],
    parallelism: Sequence[int] = DEFAULT_PARALLELISM,
    scale: Optional[W2VScale] = None,
    epochs: int = 1,
    compute_error: bool = False,
    seed: int = 0,
    workers_per_node: int = 4,
) -> List[Dict[str, object]]:
    """Sweep for the word-vector figure (Figure 8)."""
    if not systems:
        raise ExperimentError("at least one system is required")
    results = []
    for system in systems:
        for num_nodes in parallelism:
            results.append(
                run_w2v_experiment(
                    system,
                    num_nodes=num_nodes,
                    workers_per_node=workers_per_node,
                    scale=scale,
                    epochs=epochs,
                    compute_error=compute_error,
                    seed=seed,
                )
            )
    return _result_rows(results)


def replication_comparison_scenario(
    task: str,
    systems: Sequence[str] = REPLICATION_COMPARISON_SYSTEMS,
    parallelism: Sequence[int] = DEFAULT_PARALLELISM,
    epochs: int = 1,
    seed: int = 0,
    workers_per_node: int = 4,
) -> List[Dict[str, object]]:
    """Relocation vs. replication vs. static allocation on one workload.

    ``task`` is one of ``"mf"``, ``"kge"``, or ``"w2v"``.  The default system
    set opposes the three parameter-management strategies on equal footing
    (all with shared-memory local access); pass e.g. ``("classic", "lapse",
    "replica")`` to include the PS-Lite-style baseline instead.
    """
    if task == "mf":
        return matrix_factorization_scenario(
            systems, parallelism=parallelism, epochs=epochs, seed=seed,
            workers_per_node=workers_per_node,
        )
    if task == "kge":
        return kge_scenario(
            systems, parallelism=parallelism, epochs=epochs, seed=seed,
            workers_per_node=workers_per_node,
        )
    if task == "w2v":
        return word2vec_scenario(
            systems, parallelism=parallelism, epochs=epochs, seed=seed,
            workers_per_node=workers_per_node,
        )
    raise ExperimentError(f"unknown task {task!r} (expected 'mf', 'kge', or 'w2v')")


def epoch_time(rows: List[Dict[str, object]], system: str, parallelism: str) -> float:
    """Look up the epoch run time of ``system`` at ``parallelism`` in scenario rows."""
    for row in rows:
        if row["system"] == system and row["parallelism"] == parallelism:
            return float(row["epoch_time_s"])
    raise ExperimentError(f"no row for system={system!r} parallelism={parallelism!r}")
