"""Scenario presets mapping the paper's figures to scaled-down sweeps.

Every figure of the evaluation is a sweep of *systems* over *parallelism
levels* for one workload.  The helpers here run such a sweep and return rows
(dicts) ready for :func:`repro.experiments.reporting.format_table` and for the
shape assertions in the benchmark suite.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.durability import DurabilityConfig
from repro.errors import ExperimentError
from repro.experiments.runner import (
    KGEScale,
    MFScale,
    TaskRunResult,
    W2VScale,
    make_elastic_mf,
    run_kge_experiment,
    run_mf_experiment,
    run_w2v_experiment,
)

#: Parallelism levels of the paper's evaluation (1x4 ... 8x4), scaled to the
#: number of simulated nodes.
DEFAULT_PARALLELISM = (1, 2, 4, 8)

#: The four parameter-management strategies compared by the replication
#: scenario: static allocation (classic), relocation (Lapse), replication,
#: and the per-key hybrid of relocation and replication.
REPLICATION_COMPARISON_SYSTEMS = ("classic_fast_local", "lapse", "replica", "hybrid")


def _result_rows(results: Iterable[TaskRunResult]) -> List[Dict[str, object]]:
    rows = []
    for result in results:
        rows.append(
            {
                "task": result.task,
                "system": result.system,
                "backend": result.backend,
                "parallelism": result.parallelism,
                "epoch_time_s": result.epoch_duration,
                "loss": result.final_loss if result.final_loss is not None else "",
                "remote_messages": result.remote_messages,
                "local_read_fraction": (
                    result.metrics.local_read_fraction if result.metrics else ""
                ),
            }
        )
    return rows


def matrix_factorization_scenario(
    systems: Sequence[str],
    parallelism: Sequence[int] = DEFAULT_PARALLELISM,
    scale: Optional[MFScale] = None,
    epochs: int = 1,
    compute_loss: bool = False,
    seed: int = 0,
    workers_per_node: int = 4,
    backend: str = "sim",
) -> List[Dict[str, object]]:
    """Sweep for the matrix-factorization figures (Figures 6 and 9).

    ``backend="real"`` runs the sweep on actual worker processes (classic,
    classic_fast_local, lapse); epoch times are then wall-clock seconds.
    """
    if not systems:
        raise ExperimentError("at least one system is required")
    results = []
    for system in systems:
        for num_nodes in parallelism:
            results.append(
                run_mf_experiment(
                    system,
                    num_nodes=num_nodes,
                    workers_per_node=workers_per_node,
                    scale=scale,
                    epochs=epochs,
                    compute_loss=compute_loss,
                    seed=seed,
                    backend=backend,
                )
            )
    return _result_rows(results)


def kge_scenario(
    systems: Sequence[str],
    model: str = "complex",
    parallelism: Sequence[int] = DEFAULT_PARALLELISM,
    scale: Optional[KGEScale] = None,
    epochs: int = 1,
    compute_loss: bool = False,
    seed: int = 0,
    workers_per_node: int = 4,
) -> List[Dict[str, object]]:
    """Sweep for the knowledge-graph-embedding figures (Figures 1 and 7)."""
    if not systems:
        raise ExperimentError("at least one system is required")
    results = []
    for system in systems:
        for num_nodes in parallelism:
            results.append(
                run_kge_experiment(
                    system,
                    num_nodes=num_nodes,
                    workers_per_node=workers_per_node,
                    model=model,
                    scale=scale,
                    epochs=epochs,
                    compute_loss=compute_loss,
                    seed=seed,
                )
            )
    return _result_rows(results)


def word2vec_scenario(
    systems: Sequence[str],
    parallelism: Sequence[int] = DEFAULT_PARALLELISM,
    scale: Optional[W2VScale] = None,
    epochs: int = 1,
    compute_error: bool = False,
    seed: int = 0,
    workers_per_node: int = 4,
) -> List[Dict[str, object]]:
    """Sweep for the word-vector figure (Figure 8)."""
    if not systems:
        raise ExperimentError("at least one system is required")
    results = []
    for system in systems:
        for num_nodes in parallelism:
            results.append(
                run_w2v_experiment(
                    system,
                    num_nodes=num_nodes,
                    workers_per_node=workers_per_node,
                    scale=scale,
                    epochs=epochs,
                    compute_error=compute_error,
                    seed=seed,
                )
            )
    return _result_rows(results)


def replication_comparison_scenario(
    task: str,
    systems: Sequence[str] = REPLICATION_COMPARISON_SYSTEMS,
    parallelism: Sequence[int] = DEFAULT_PARALLELISM,
    epochs: int = 1,
    seed: int = 0,
    workers_per_node: int = 4,
) -> List[Dict[str, object]]:
    """Relocation vs. replication vs. static allocation on one workload.

    ``task`` is one of ``"mf"``, ``"kge"``, or ``"w2v"``.  The default system
    set opposes the three parameter-management strategies on equal footing
    (all with shared-memory local access); pass e.g. ``("classic", "lapse",
    "replica")`` to include the PS-Lite-style baseline instead.
    """
    if task == "mf":
        return matrix_factorization_scenario(
            systems, parallelism=parallelism, epochs=epochs, seed=seed,
            workers_per_node=workers_per_node,
        )
    if task == "kge":
        return kge_scenario(
            systems, parallelism=parallelism, epochs=epochs, seed=seed,
            workers_per_node=workers_per_node,
        )
    if task == "w2v":
        return word2vec_scenario(
            systems, parallelism=parallelism, epochs=epochs, seed=seed,
            workers_per_node=workers_per_node,
        )
    raise ExperimentError(f"unknown task {task!r} (expected 'mf', 'kge', or 'w2v')")


#: Systems compared by the elastic scaling scenario: the inelastic static
#: baseline vs. relocation (Lapse) vs. the hybrid (which adds replicas the
#: failure path can recover from).
ELASTIC_SCALING_SYSTEMS = ("classic", "lapse", "hybrid")


def elastic_scaling_scenario(
    systems: Sequence[str] = ELASTIC_SCALING_SYSTEMS,
    scale: Optional[MFScale] = None,
    seed: int = 0,
    workers_per_node: int = 2,
    capacity: int = 3,
    initial_nodes: Sequence[int] = (0, 1),
    join_node: int = 2,
    drain_node: int = 1,
    inject_failure: bool = True,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """One full elastic lifecycle per system on the MF workload.

    Phases (one epoch each): **baseline** on the initial nodes; **join** —
    ``join_node`` joins mid-epoch (the rebalancer migrates its key share via
    the relocation protocol while training runs); **post-join** with the
    grown cluster; **drain** — ``drain_node`` starts a graceful drain
    mid-epoch; **post-drain** without it; and, when ``inject_failure`` is set
    and the policy can recover, a **failure** phase: standby replicas are
    provisioned (:meth:`~repro.cluster.ElasticCluster.ensure_backups`),
    ``join_node`` crashes, and a final epoch runs on what is left.

    Under the hybrid policy the failure loses nothing (all keys are recovered
    from replicas); under pure relocation every key the failed node owned is
    lost; the static classic PS cannot rebalance at all — its join adds only
    workers, and its drained node keeps serving keys forever.
    """
    if not systems:
        raise ExperimentError("at least one system is required")
    rows = []
    for system in systems:
        rows.append(
            _elastic_lifecycle_row(
                system,
                scale=scale,
                seed=seed,
                workers_per_node=workers_per_node,
                capacity=capacity,
                initial_nodes=initial_nodes,
                join_node=join_node,
                drain_node=drain_node,
                inject_failure=inject_failure,
                jobs=jobs,
            )
        )
    return rows


def _elastic_lifecycle_row(
    system: str,
    scale: Optional[MFScale],
    seed: int,
    workers_per_node: int,
    capacity: int,
    initial_nodes: Sequence[int],
    join_node: int,
    drain_node: int,
    inject_failure: bool,
    jobs: int,
) -> Dict[str, object]:
    elastic, trainer = make_elastic_mf(
        system,
        num_nodes=capacity,
        initial_nodes=initial_nodes,
        scale=scale,
        workers_per_node=workers_per_node,
        seed=seed,
        jobs=jobs,
    )
    ps = elastic.ps

    def epoch() -> float:
        return elastic.run_epoch(trainer, compute_loss=False).duration

    baseline = epoch()
    elastic.join_at(ps.simulated_time + 0.5 * baseline, join_node)
    join_epoch = epoch()
    post_join = epoch()
    elastic.drain_at(ps.simulated_time + 0.5 * post_join, drain_node)
    drain_epoch = epoch()
    post_drain = epoch()
    post_failure: object = ""
    recovered: object = ""
    lost: object = ""
    can_fail = inject_failure and elastic.rebalancer.supports_rebalance
    if can_fail:
        elastic.ensure_backups()
        elastic.fail_at(ps.simulated_time, join_node)
        post_failure = epoch()
        recovered = elastic.recovered_keys
        lost = elastic.lost_keys
    metrics = ps.metrics()
    return {
        "system": system,
        "baseline_epoch_s": baseline,
        "join_epoch_s": join_epoch,
        "post_join_epoch_s": post_join,
        "drain_epoch_s": drain_epoch,
        "post_drain_epoch_s": post_drain,
        "post_failure_epoch_s": post_failure,
        "rebalanced_keys": metrics.rebalanced_keys,
        "mean_rebalance_time_s": metrics.rebalance_time.mean,
        "relocations": metrics.relocations,
        "recovered_keys": recovered,
        "lost_keys": lost,
        "remote_messages": ps.network.stats.remote_messages,
        "bytes_sent": ps.network.stats.bytes_sent,
        "dropped_messages": ps.network.stats.dropped_messages,
        "drain_node_state": elastic.membership.state_of(drain_node),
        "sim_time_s": ps.simulated_time,
        # Parallel-engine bookkeeping for the *last* epoch of the lifecycle:
        # the injected failure (if any) forces that epoch sequential, so with
        # jobs>1 and inject_failure these report the documented fallback.
        "parallel_fallback_reason": ps._last_fallback_reason,
        "effective_jobs": ps._last_effective_jobs,
        "shard_skew": [h["skew"] for h in (ps.shard_load_history or [])],
        "shard_replans": sum(
            1 for h in (ps.shard_load_history or []) if h["replanned"]
        ),
    }


#: Systems compared by the durability scenario: the static classic PS (the
#: WAL is inert — recovery needs re-homing), pure relocation (the paper's
#: headline system, which durability makes crash-survivable), and the hybrid
#: (replicas and the durable log feed one recovery path).
DURABILITY_RECOVERY_SYSTEMS = ("classic", "lapse", "hybrid")


def durability_recovery_scenario(
    systems: Sequence[str] = DURABILITY_RECOVERY_SYSTEMS,
    scale: Optional[MFScale] = None,
    seed: int = 0,
    workers_per_node: int = 2,
    capacity: int = 3,
    fail_node: int = 2,
    durability: Optional[Any] = None,
    jobs: int = 1,
) -> List[Dict[str, object]]:
    """Crash-and-restart under durability, per system, on the MF workload.

    Each system runs twice with the same seed: a failure-free *reference*
    without durability, and a *durable* run (WAL + checkpoints installed)
    that crashes ``fail_node`` at the first epoch boundary and restarts it
    immediately (``fail`` + ``rejoin`` at one boundary).  For
    WAL-recovery-capable systems the row asserts the headline property of
    the subsystem: no key is lost and the recovered run's final model
    parameters are **bit-identical** to the failure-free reference — the
    checkpoint + WAL-suffix replay reproduced every parameter exactly.  For
    the static classic PS no failure is injected (recovery requires
    re-homing); its row instead demonstrates that the installed WAL is
    behavior-inert.
    """
    if not systems:
        raise ExperimentError("at least one system is required")
    return [
        _durability_recovery_row(
            system,
            scale=scale,
            seed=seed,
            workers_per_node=workers_per_node,
            capacity=capacity,
            fail_node=fail_node,
            durability=durability,
            jobs=jobs,
        )
        for system in systems
    ]


def _durability_recovery_row(
    system: str,
    scale: Optional[MFScale],
    seed: int,
    workers_per_node: int,
    capacity: int,
    fail_node: int,
    durability: Optional[Any],
    jobs: int,
) -> Dict[str, object]:
    config = durability if durability is not None else DurabilityConfig()

    # Failure-free reference, durability off: the comparison target for both
    # the recovery-exactness and the durability-is-inert claims.
    reference, reference_trainer = make_elastic_mf(
        system,
        num_nodes=capacity,
        scale=scale,
        workers_per_node=workers_per_node,
        seed=seed,
    )
    for _ in range(3):
        reference.run_epoch(reference_trainer, compute_loss=False)
    reference_params = reference.ps.all_parameters()

    elastic, trainer = make_elastic_mf(
        system,
        num_nodes=capacity,
        scale=scale,
        workers_per_node=workers_per_node,
        seed=seed,
        durability=config,
        jobs=jobs,
    )
    ps = elastic.ps

    def epoch() -> float:
        return elastic.run_epoch(trainer, compute_loss=False).duration

    baseline = epoch()
    fail_injected = elastic.rebalancer.supports_wal_recovery
    if fail_injected:
        now = ps.simulated_time
        elastic.fail_at(now, fail_node)
        elastic.rejoin_at(now, fail_node)
    recovery_epoch = epoch()
    final_epoch = epoch()
    metrics = ps.metrics()
    return {
        "system": system,
        "fail_injected": fail_injected,
        "baseline_epoch_s": baseline,
        "recovery_epoch_s": recovery_epoch,
        "final_epoch_s": final_epoch,
        "lost_keys": elastic.lost_keys,
        "recovered_keys": elastic.recovered_keys,
        "wal_recovered_keys": metrics.wal_recovered_keys,
        "replayed_deltas": metrics.replayed_deltas,
        "wal_appends": metrics.wal_appends,
        "wal_bytes": metrics.wal_bytes,
        "checkpoints": metrics.checkpoints,
        "params_match_reference": bool(
            np.array_equal(ps.all_parameters(), reference_params)
        ),
        "fail_node_state": elastic.membership.state_of(fail_node),
        "dropped_messages": ps.network.stats.dropped_messages,
        "sim_time_s": ps.simulated_time,
        "parallel_fallback_reason": ps._last_fallback_reason,
        "effective_jobs": ps._last_effective_jobs,
    }


def epoch_time(rows: List[Dict[str, object]], system: str, parallelism: str) -> float:
    """Look up the epoch run time of ``system`` at ``parallelism`` in scenario rows."""
    for row in rows:
        if row["system"] == system and row["parallelism"] == parallelism:
            return float(row["epoch_time_s"])
    raise ExperimentError(f"no row for system={system!r} parallelism={parallelism!r}")
